"""Experiment E1 -- Table I: the motivational example.

Regenerates the comparison of the three implementations of the three-chained-
additions example (Fig. 1 a): the conventional schedule, the fully chained
(BLC) schedule and the schedule of the transformed specification.  Columns
follow Table I: latency, cycle length, execution time, functional-unit cost,
register cost, routing area, controller area and total area.

Paper reference values (Synopsys DC, for shape comparison only):

===================  ==========  ========  =========
column               original    Fig. 1 d  optimized
===================  ==========  ========  =========
latency              3           1         3
cycle length (ns)    9.4         9.57      3.55
execution time (ns)  28.22       9.57      10.66
FU cost (gates)      162         486       176
registers (gates)    81          --        55
routing (gates)      176         --        159
controller (gates)   60          32        62
total (gates)        479         518       452
===================  ==========  ========  =========
"""

import pytest

from conftest import record_rows
from repro.core import TransformOptions, transform
from repro.hls import FlowMode, synthesize
from repro.workloads import motivational_example


def _run_table1(library):
    spec = motivational_example()
    result = transform(spec, latency=3, options=TransformOptions(check_equivalence=False))
    original = synthesize(spec, 3, library, FlowMode.CONVENTIONAL)
    chained = synthesize(spec, 1, library, FlowMode.BLC)
    optimized = synthesize(
        result.transformed,
        3,
        library,
        FlowMode.FRAGMENTED,
        chained_bits_per_cycle=result.chained_bits_per_cycle,
    )
    return original, chained, optimized


def _row(label, synthesis):
    return {
        "implementation": label,
        "latency": synthesis.latency,
        "cycle_ns": round(synthesis.cycle_length_ns, 2),
        "execution_ns": round(synthesis.execution_time_ns, 2),
        "fu_gates": round(synthesis.fu_area),
        "register_gates": round(synthesis.register_area),
        "routing_gates": round(synthesis.routing_area),
        "controller_gates": round(synthesis.controller_area),
        "total_gates": round(synthesis.total_area),
    }


@pytest.mark.benchmark(group="table1")
def test_table1_motivational_example(benchmark, paper_library):
    original, chained, optimized = benchmark.pedantic(
        _run_table1, args=(paper_library,), rounds=3, iterations=1
    )
    rows = [
        _row("original (Fig 1b)", original),
        _row("bit-level chaining (Fig 1d)", chained),
        _row("optimized (Fig 2a)", optimized),
    ]
    record_rows(benchmark, "Table I -- motivational example", rows)

    # Shape assertions against the paper's Table I.
    assert original.cycle_length_ns == pytest.approx(9.4, abs=0.2)
    assert optimized.cycle_length_ns == pytest.approx(3.55, abs=0.2)
    assert optimized.cycle_length_ns < 0.45 * original.cycle_length_ns
    # Execution time: optimized within ~15% of the fully chained single cycle.
    assert optimized.execution_time_ns == pytest.approx(
        chained.execution_time_ns, rel=0.15
    )
    # Area: BLC needs three full-width adders; the optimized datapath needs
    # three narrow ones and stays close to (here: below) the original total.
    assert chained.fu_area == pytest.approx(3 * original.fu_area, rel=0.05)
    assert optimized.fu_area < 0.5 * chained.fu_area
    # Paper Table I totals: 479 / 518 / 452 gates.  Our conventional flow's
    # binder shares the C/E register, which makes the original total smaller
    # than the paper's, so the optimized/original ratio is asserted loosely
    # while the optimized absolute total is checked against the paper's value.
    assert optimized.total_area == pytest.approx(452, rel=0.10)
    assert optimized.total_area < 1.2 * original.total_area
    assert optimized.total_area < chained.total_area
