"""Experiment E6 (ablation) -- adder architectures.

Section 2 of the paper closes with the remark that "big reductions in both
the cycle length and the datapath area can also be achieved by using faster
and more expensive adders (carry-lookahead, fast lookahead, and carry-save)".
This ablation quantifies that remark with the library's adder models: the
motivational example is synthesized (original and optimized flows) with each
adder architecture, and the cycle-length saving of the transformation is
reported per style.
"""

import pytest

from conftest import record_rows
from repro.analysis import compare_flows
from repro.techlib import AdderStyle, default_library
from repro.workloads import motivational_example


def _run_style(style: AdderStyle):
    library = default_library().with_adder_style(style)
    return compare_flows(motivational_example(), latency=3, library=library)


@pytest.mark.benchmark(group="ablation-adders")
@pytest.mark.parametrize("style", list(AdderStyle), ids=lambda s: s.value)
def test_adder_style_ablation(benchmark, style):
    comparison = benchmark.pedantic(_run_style, args=(style,), rounds=2, iterations=1)
    row = {
        "adder_style": style.value,
        "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
        "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
        "saved_pct": round(100 * comparison.cycle_saving, 2),
        "original_fu_gates": round(comparison.original.fu_area),
        "optimized_fu_gates": round(comparison.optimized.fu_area),
    }
    record_rows(benchmark, f"Ablation -- adder style {style.value}", [row])

    # The transformation helps for every adder family.
    assert comparison.optimized.execution_time_ns <= comparison.original.execution_time_ns + 1e-6


@pytest.mark.benchmark(group="ablation-adders-summary")
def test_adder_style_summary(benchmark):
    def run():
        return {style: _run_style(style) for style in AdderStyle}

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "adder_style": style.value,
            "original_cycle_ns": round(c.original.cycle_length_ns, 2),
            "optimized_cycle_ns": round(c.optimized.cycle_length_ns, 2),
            "saved_pct": round(100 * c.cycle_saving, 2),
            "original_fu_gates": round(c.original.fu_area),
            "optimized_fu_gates": round(c.optimized.fu_area),
        }
        for style, c in comparisons.items()
    ]
    record_rows(benchmark, "Ablation -- adder architectures", rows)

    ripple = comparisons[AdderStyle.RIPPLE_CARRY]
    lookahead = comparisons[AdderStyle.CARRY_LOOKAHEAD]
    # Faster adder families shorten the *original* cycle (as the paper notes),
    # so the relative gain of the transformation is largest on ripple-carry.
    assert lookahead.original.cycle_length_ns < ripple.original.cycle_length_ns
    assert lookahead.original.fu_area > ripple.original.fu_area
    assert ripple.cycle_saving >= lookahead.cycle_saving - 0.05
