"""Experiment E6 -- persistent studies: workspace-backed Fig. 4 regeneration.

Runs the built-in ``fig4-chain`` study (the Fig. 4 experiment as a
declarative matrix) into an on-disk workspace, then regenerates it from the
store and checks the resumable-experiment contract:

* the study rows are identical to what :func:`repro.analysis.latency_sweep`
  (the hand-driven Fig. 4 path) computes for the same axis;
* the second run loads every point from the content-addressed store --
  zero recomputation -- and is dramatically faster than the cold run;
* an interrupted run (cooperative cancellation after a few points) resumes
  with exactly the already-completed points loaded, not recomputed.
"""

import pytest

from conftest import record_rows
from repro.analysis import latency_sweep
from repro.api import Workspace, builtin_study


@pytest.mark.benchmark(group="study")
def test_fig4_study_matches_latency_sweep_and_resumes(benchmark, tmp_path):
    study = builtin_study("fig4-chain")
    workspace = Workspace(tmp_path / "ws")

    cold = benchmark.pedantic(
        lambda: workspace.run_study(study), rounds=1, iterations=1
    )
    assert cold.complete and cold.ran == len(study) and cold.loaded == 0

    resumed = workspace.run_study(study)
    assert resumed.complete and resumed.loaded == len(study) and resumed.ran == 0

    rows = workspace.rows(study)
    record_rows(benchmark, "Fig. 4 via persistent study", rows)

    latencies = sorted({point.config.latency for point in study.points()})
    workload = study.points()[0].config.workload
    sweep = latency_sweep(workload, latencies)
    assert rows == sweep.as_rows()


@pytest.mark.benchmark(group="study")
def test_interrupted_study_resumes_without_recompute(tmp_path):
    study = builtin_study("fig4-chain")
    workspace = Workspace(tmp_path / "ws")

    first = workspace.run_study(study, max_points=3)
    assert first.ran == 3
    assert first.cancelled == len(study) - 3

    second = workspace.run_study(study)
    assert second.complete
    assert second.loaded == 3
    assert second.ran == len(study) - 3
