"""Experiment E2 -- Fig. 3: the eight-addition worked example.

Regenerates the Fig. 3 h comparison (cycle duration and area breakdown of the
original versus the optimized implementation at latency 3) and checks the
intermediate quantities the figure is built on: the 9-chained-bit critical
path, the 3-bit cycle budget, and the fragmentations of operations F and B.

Paper reference values (Fig. 3 h): cycle duration 4.64 ns -> 1.77 ns (62%
saved); area 712 -> 510 gates (28% saved) with the controller growing from 60
to 78 gates.
"""

import pytest

from conftest import record_rows
from repro.analysis import compare_flows
from repro.core import TransformOptions, transform
from repro.workloads import fig3_example
from repro.workloads.fig3 import FIG3_CRITICAL_PATH_BITS, FIG3_CYCLE_BUDGET, FIG3_LATENCY


def _run_fig3():
    return compare_flows(fig3_example(), FIG3_LATENCY, include_blc=False)


@pytest.mark.benchmark(group="fig3")
def test_fig3_area_and_cycle_comparison(benchmark):
    comparison = benchmark.pedantic(_run_fig3, rounds=3, iterations=1)
    original, optimized = comparison.original, comparison.optimized
    rows = []
    for label, synthesis in (("original", original), ("optimized", optimized)):
        rows.append(
            {
                "implementation": label,
                "cycle_ns": round(synthesis.cycle_length_ns, 2),
                "fu_gates": round(synthesis.fu_area),
                "register_gates": round(synthesis.register_area),
                "routing_gates": round(synthesis.routing_area),
                "controller_gates": round(synthesis.controller_area),
                "total_gates": round(synthesis.total_area),
            }
        )
    record_rows(benchmark, "Fig. 3 h -- original vs optimized (latency 3)", rows)

    # Phase 2 quantities stated in the text of Section 3.2.
    assert comparison.transform_result.critical_path_bits == FIG3_CRITICAL_PATH_BITS
    assert comparison.transform_result.chained_bits_per_cycle == FIG3_CYCLE_BUDGET
    # Fig. 3 h: 62% cycle reduction; we accept the 50-75% band.
    assert 0.50 <= comparison.cycle_saving <= 0.75
    # Total area stays in the same ballpark (the paper even saves 28%).
    assert comparison.optimized.total_area < 1.3 * comparison.original.total_area


@pytest.mark.benchmark(group="fig3")
def test_fig3_fragmentation_detail(benchmark):
    """The fragment structure of Fig. 3 c-f."""

    def run():
        return transform(
            fig3_example(), FIG3_LATENCY, TransformOptions(check_equivalence=False)
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    fragments_by_origin = {}
    for operation, fragments in result.fragmentation.fragments.items():
        fragments_by_origin[operation.origin] = [
            (fragment.width, fragment.asap, fragment.alap) for fragment in fragments
        ]
    rows = [
        {"operation": origin, "fragments": str(fragments)}
        for origin, fragments in sorted(fragments_by_origin.items())
    ]
    record_rows(benchmark, "Fig. 3 -- fragments (width, asap, alap)", rows)

    # Operations F, G and H are already scheduled (ASAP = ALAP on every bit).
    for origin in ("F", "G", "H"):
        assert all(asap == alap for _w, asap, alap in fragments_by_origin[origin])
    # F fragments into 3 + 3 + 2 bits across the three cycles (Fig. 3 c).
    assert [w for w, _a, _l in fragments_by_origin["F"]] == [3, 3, 2]
    # B fragments into 2 + 1 + 2 + 1 bits with growing mobility (Fig. 3 d-f).
    assert [w for w, _a, _l in fragments_by_origin["B"]] == [2, 1, 2, 1]
    assert [(a, l) for _w, a, l in fragments_by_origin["B"]] == [
        (1, 1),
        (1, 2),
        (2, 2),
        (2, 3),
    ]
