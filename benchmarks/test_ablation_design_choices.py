"""Experiment E7 (ablation) -- design choices of the transformation.

Two ablations of choices DESIGN.md calls out:

* **mobility preservation** -- the bit-accurate fragmentation (one fragment
  per distinct (ASAP, ALAP) pair, preserving all mobility) versus the paper's
  simplified fill-from-both-ends rule, measured as the number of fragments
  whose mobility window is larger than one cycle (more mobile fragments give
  the downstream scheduler more freedom to balance functional-unit usage);
* **fragment balancing and binding affinity** -- the load-balancing fragment
  scheduler and parent-affinity binder versus pure ASAP placement and
  affinity-free binding, measured on datapath area at identical cycle length.
"""

import pytest

from conftest import record_rows
from repro.core import TransformOptions, transform
from repro.core.fragmentation import fragment_specification, fragment_widths_simple
from repro.core.kernel import extract_kernel
from repro.core.timing import estimate_cycle_budget
from repro.hls import FlowMode, synthesize
from repro.hls.allocation.functional_units import allocate_functional_units
from repro.hls.scheduling import FragmentSchedulerOptions, schedule_fragments
from repro.hls.timing import bit_level_cycle_depths
from repro.techlib import default_library
from repro.workloads import fig3_example, motivational_example


@pytest.mark.benchmark(group="ablation-mobility")
def test_mobility_preservation_ablation(benchmark):
    """Bit-accurate fragmentation preserves mobility the simple rule loses."""

    def run():
        kernel = extract_kernel(fig3_example()).specification
        estimate = estimate_cycle_budget(kernel, 3)
        bit_accurate = fragment_specification(kernel, 3, estimate.chained_bits_per_cycle)
        simple_mobile = 0
        simple_total = 0
        accurate_mobile = 0
        accurate_total = 0
        for operation, fragments in bit_accurate.fragments.items():
            accurate_total += len(fragments)
            accurate_mobile += sum(1 for f in fragments if f.mobility > 1)
            op_asap = min(f.asap for f in fragments)
            op_alap = max(f.alap for f in fragments)
            simple = fragment_widths_simple(
                operation.width, op_asap, op_alap, estimate.chained_bits_per_cycle
            )
            simple_total += len(simple)
            simple_mobile += sum(1 for f in simple if f.alap > f.asap)
        return {
            "bit_accurate_fragments": accurate_total,
            "bit_accurate_mobile": accurate_mobile,
            "simple_fragments": simple_total,
            "simple_mobile": simple_mobile,
        }

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    record_rows(benchmark, "Ablation -- mobility preservation (Fig. 3 DFG)", [stats])
    # Finding: the simplified fill-from-both-ends rule *overestimates*
    # mobility -- it hands the scheduler windows that the bit-level carry
    # chains cannot actually honour -- while the bit-accurate fragmentation
    # only reports realisable mobility (every window comes from a feasible
    # bit-level ASAP/ALAP pair).  Fragment counts stay comparable.
    assert stats["simple_mobile"] >= stats["bit_accurate_mobile"]
    assert stats["bit_accurate_mobile"] > 0
    assert abs(stats["bit_accurate_fragments"] - stats["simple_fragments"]) <= 3


@pytest.mark.benchmark(group="ablation-binding")
def test_balancing_and_affinity_ablation(benchmark):
    """Parent-affinity binding buys routing area at equal performance."""

    def run():
        library = default_library()
        result = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        spec = result.transformed
        budget = result.chained_bits_per_cycle
        balanced = schedule_fragments(spec, 3, budget, FragmentSchedulerOptions(balance=True))
        asap_only = schedule_fragments(spec, 3, budget, FragmentSchedulerOptions(balance=False))
        affinity = synthesize(
            spec, 3, library, FlowMode.FRAGMENTED, chained_bits_per_cycle=budget
        )
        no_affinity_fus = allocate_functional_units(balanced, library, affinity=False)
        return {
            "balanced_cycle_bits": max(bit_level_cycle_depths(balanced).values()),
            "asap_cycle_bits": max(bit_level_cycle_depths(asap_only).values()),
            "affinity_fu_gates": round(affinity.fu_area),
            "affinity_instances": len(affinity.datapath.functional_units.instances),
            "no_affinity_instances": len(no_affinity_fus.instances),
            "no_affinity_fu_gates": round(no_affinity_fus.total_area),
        }

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    record_rows(benchmark, "Ablation -- scheduling balance and binding affinity", [stats])
    # Both placements respect the 6-bit budget on the motivational example.
    assert stats["balanced_cycle_bits"] <= 6
    assert stats["asap_cycle_bits"] <= 6
    # Affinity binding never needs more unit instances than affinity-free binding.
    assert stats["affinity_instances"] <= stats["no_affinity_instances"]
