"""Experiment E5 -- Fig. 4: cycle length versus latency.

Regenerates the two curves of Fig. 4: the cycle length of the schedules
obtained from the original and from the optimized specification as the
circuit latency sweeps from 3 to 15 cycles.  The paper's qualitative claim is
that the curves diverge as the latency grows: the conventional schedule's
cycle length saturates at the delay of the slowest operation, while the
transformed specification keeps converting extra latency into a shorter
clock, so "the cycle length saved has grown with the circuit latency".

The sweep fans out through :class:`repro.api.SweepEngine` with 4 parallel
workers; a serial reference run checks that parallel execution changes
nothing but the wall-clock time (recorded in ``extra_info``).
"""

import time

import pytest

from conftest import record_rows
from repro.analysis import latency_sweep
from repro.api import builtin_study

#: The built-in Fig. 4 study declaration: three chained 16-bit additions
#: (the paper's running example, whose conventional schedule saturates
#: early) over the 3..15 latency axis.  The benchmark derives its workload
#: and axis from it so sweeps, the CLI and workspaces share one matrix.
_FIG4_STUDY = builtin_study("fig4-chain")

#: The latency axis of Fig. 4.
FIG4_LATENCIES = sorted({point.config.latency for point in _FIG4_STUDY.points()})

#: The sweep subject as a serializable parametric workload, so sweep points
#: can run in any worker pool.
FIG4_WORKLOAD = _FIG4_STUDY.points()[0].config.workload


def _run_sweep(max_workers=4, executor="thread"):
    return latency_sweep(
        FIG4_WORKLOAD, FIG4_LATENCIES, max_workers=max_workers, executor=executor
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_latency_sweep(benchmark, sweep_engine):
    # The shared engine fixture: 4 thread workers over a cached pipeline.
    sweep = benchmark.pedantic(
        lambda: latency_sweep(FIG4_WORKLOAD, FIG4_LATENCIES, engine=sweep_engine),
        rounds=1,
        iterations=1,
    )
    rows = sweep.as_rows()
    record_rows(benchmark, "Fig. 4 -- cycle length vs latency", rows)
    print(sweep.render_ascii(width=40))

    originals = sweep.original_series()
    optimized = sweep.optimized_series()

    # The conventional curve saturates: beyond one operation per cycle the
    # original specification cannot exploit additional latency.
    assert max(originals) == pytest.approx(min(originals), rel=0.05)

    # The optimized curve keeps decreasing (monotonically non-increasing) and
    # ends well below where it started.
    assert all(
        later <= earlier + 1e-9 for earlier, later in zip(optimized, optimized[1:])
    )
    assert optimized[-1] < 0.5 * optimized[0]

    # Fig. 4's headline: the gap between the curves grows with the latency.
    assert sweep.divergence() > 0
    first, last = sweep.points[0], sweep.points[-1]
    assert last.cycle_saving > first.cycle_saving

    # At every point the optimized cycle is no longer than the original one.
    for point in sweep.points:
        assert point.optimized_cycle_ns <= point.original_cycle_ns + 1e-9


@pytest.mark.benchmark(group="fig4")
def test_fig4_sweep_parallel_matches_serial(benchmark):
    """Worker count must not change the sweep, only the wall-clock time."""
    started = time.perf_counter()
    serial = _run_sweep(max_workers=1, executor="serial")
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - started

    assert parallel.points == serial.points
    benchmark.extra_info["serial_s"] = round(serial_s, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 4)
    benchmark.extra_info["speedup"] = round(serial_s / max(parallel_s, 1e-9), 2)
    print(
        f"\nFig. 4 sweep: serial {serial_s:.3f}s, "
        f"4 workers {parallel_s:.3f}s "
        f"(speedup x{serial_s / max(parallel_s, 1e-9):.2f})"
    )
