"""Experiment E5 -- Fig. 4: cycle length versus latency.

Regenerates the two curves of Fig. 4: the cycle length of the schedules
obtained from the original and from the optimized specification as the
circuit latency sweeps from 3 to 15 cycles.  The paper's qualitative claim is
that the curves diverge as the latency grows: the conventional schedule's
cycle length saturates at the delay of the slowest operation, while the
transformed specification keeps converting extra latency into a shorter
clock, so "the cycle length saved has grown with the circuit latency".
"""

import pytest

from conftest import record_rows
from repro.analysis import latency_sweep
from repro.workloads import addition_chain

#: The latency axis of Fig. 4.
FIG4_LATENCIES = list(range(3, 16))


def _run_sweep():
    # A fixed behavioural description whose conventional schedule saturates
    # early (three chained 16-bit additions, the paper's running example).
    return latency_sweep(lambda: addition_chain(3, 16), FIG4_LATENCIES)


@pytest.mark.benchmark(group="fig4")
def test_fig4_latency_sweep(benchmark):
    sweep = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    rows = sweep.as_rows()
    record_rows(benchmark, "Fig. 4 -- cycle length vs latency", rows)
    print(sweep.render_ascii(width=40))

    originals = sweep.original_series()
    optimized = sweep.optimized_series()

    # The conventional curve saturates: beyond one operation per cycle the
    # original specification cannot exploit additional latency.
    assert max(originals) == pytest.approx(min(originals), rel=0.05)

    # The optimized curve keeps decreasing (monotonically non-increasing) and
    # ends well below where it started.
    assert all(
        later <= earlier + 1e-9 for earlier, later in zip(optimized, optimized[1:])
    )
    assert optimized[-1] < 0.5 * optimized[0]

    # Fig. 4's headline: the gap between the curves grows with the latency.
    assert sweep.divergence() > 0
    first, last = sweep.points[0], sweep.points[-1]
    assert last.cycle_saving > first.cycle_saving

    # At every point the optimized cycle is no longer than the original one.
    for point in sweep.points:
        assert point.optimized_cycle_ns <= point.original_cycle_ns + 1e-9
