"""Experiment E7 -- synthesis as a service: the HTTP job layer end to end.

Boots an in-process :mod:`repro.server` instance over a fresh workspace and
drives the public client through the service contract:

* a cold submission computes every point of the study and its report rows
  are identical to a direct :meth:`Workspace.run_study` of the same study;
* a warm resubmission is pure dedup -- every point loads from the shared
  content-addressed store (``ran == 0``) and the request loop is far
  cheaper than the cold one;
* the server's own metrics agree with the observed behaviour (cache
  hits/misses count loaded vs executed points exactly).
"""

import threading

import pytest

from repro.api import Workspace, builtin_study
from repro.server import SynthesisClient, create_server


@pytest.fixture
def service(tmp_path):
    server = create_server(tmp_path / "ws", port=0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield SynthesisClient(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.manager.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.mark.benchmark(group="server")
def test_cold_submission_matches_direct_run(benchmark, service, tmp_path):
    study = builtin_study("table1")

    def cold():
        submitted = service.submit(study)
        final = service.wait(submitted["job_id"], timeout_s=120.0)
        assert final["status"] == "done"
        return service.report(submitted["job_id"])

    report = benchmark.pedantic(cold, rounds=1, iterations=1)
    direct = Workspace(tmp_path / "direct").run_study(study)
    assert report["reports"] == direct.reports()
    assert report["rows"] == direct.rows()


@pytest.mark.benchmark(group="server")
def test_warm_resubmission_is_pure_dedup(benchmark, service):
    study = builtin_study("table1")
    first = service.wait(service.submit(study)["job_id"], timeout_s=120.0)
    assert first["summary"]["ran"] == len(study)

    def warm():
        final = service.wait(service.submit(study)["job_id"], timeout_s=120.0)
        assert final["summary"]["ran"] == 0
        assert final["summary"]["loaded"] == len(study)
        return final

    benchmark.pedantic(warm, rounds=3, iterations=1)
    metrics = service.metrics()
    assert metrics["counters"]["cache_misses"] == len(study)
    assert metrics["counters"]["cache_hits"] == 3 * len(study)
