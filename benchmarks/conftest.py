"""Shared helpers for the experiment benchmarks.

Every benchmark module regenerates one table or figure of the paper: it runs
the original and optimized flows through the :mod:`repro.api` pipeline,
prints the rows in the paper's layout (visible with ``pytest benchmarks/
-s`` and stored in the pytest-benchmark ``extra_info``), and asserts the
qualitative claims (who wins, by roughly what factor) rather than the
absolute Synopsys numbers.
"""

from __future__ import annotations

from typing import Dict, List

import pytest


def record_rows(benchmark, title: str, rows: List[Dict]) -> None:
    """Attach the regenerated table to the benchmark record and print it."""
    from repro.analysis import format_records

    text = format_records(rows, title=title)
    benchmark.extra_info["table"] = rows
    print("\n" + text)


@pytest.fixture
def paper_library():
    """The Table I calibrated technology library used by every experiment."""
    from repro.techlib import default_library

    return default_library()


@pytest.fixture
def pipeline():
    """A stock :class:`repro.api.Pipeline` with an in-memory result cache."""
    from repro.api import Pipeline, ResultCache

    return Pipeline(cache=ResultCache())


@pytest.fixture
def sweep_engine(pipeline):
    """A parallel :class:`repro.api.SweepEngine` (4 thread workers)."""
    from repro.api import SweepEngine

    return SweepEngine(pipeline, max_workers=4, executor="thread")
