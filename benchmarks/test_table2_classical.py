"""Experiment E3 -- Table II: classical HLS benchmarks.

Regenerates the cycle-duration and area comparison for the four classical
benchmarks at the latencies of Table II (elliptic at 11/6/4 cycles, diffeq at
6/5/4, iir4 at 6/5, fir2 at 5/3).

Paper reference values (cycle duration original -> optimized, % saved, area
increment): performance improved 67% on average with a 6% average datapath
area increase; savings of up to 84% (fir2, latency 5) and as low as 41.75%
(diffeq, latency 4); within one benchmark the saving shrinks as the latency
shrinks.  The reproduction asserts those shapes, not the Synopsys numbers.
"""

import pytest

from conftest import record_rows
from repro.analysis import compare_flows
from repro.api import builtin_study
from repro.hls import FlowMode
from repro.workloads import CLASSICAL_BENCHMARKS, TABLE2_LATENCIES

#: (benchmark, latency) pairs exactly as in Table II, derived from the
#: built-in ``table2`` study declaration (one pair per fragmented point) so
#: the benchmark, the CLI and persistent workspaces share one point list.
TABLE2_POINTS = [
    (point.config.workload, point.config.latency)
    for point in builtin_study("table2").points()
    if point.config.mode is FlowMode.FRAGMENTED
]


def _run_point(name, latency):
    return compare_flows(CLASSICAL_BENCHMARKS[name](), latency)


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("name,latency", TABLE2_POINTS)
def test_table2_benchmark_point(benchmark, name, latency):
    comparison = benchmark.pedantic(_run_point, args=(name, latency), rounds=1, iterations=1)
    row = {
        "benchmark": name,
        "latency": latency,
        "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
        "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
        "saved_pct": round(100 * comparison.cycle_saving, 2),
        "area_increment_pct": round(100 * comparison.area_increment, 2),
        "operation_growth_pct": round(100 * comparison.operation_growth, 1),
    }
    record_rows(benchmark, f"Table II -- {name} (latency {latency})", [row])

    # The optimized specification always wins on cycle length, substantially.
    assert comparison.cycle_saving > 0.35
    # The schedules actually fit the requested latency.
    assert comparison.original.schedule.used_cycles() <= latency
    assert comparison.optimized.schedule.used_cycles() <= latency


@pytest.mark.benchmark(group="table2-summary")
def test_table2_full_sweep_summary(benchmark):
    """The whole Table II in one run, with the paper's average-level claims."""

    def run():
        return {
            (name, latency): _run_point(name, latency)
            for name, latency in TABLE2_POINTS
        }

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (name, latency), comparison in comparisons.items():
        rows.append(
            {
                "benchmark": name,
                "latency": latency,
                "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
                "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
                "saved_pct": round(100 * comparison.cycle_saving, 2),
                "area_increment_pct": round(100 * comparison.area_increment, 2),
            }
        )
    record_rows(benchmark, "Table II -- classical HLS benchmarks", rows)

    savings = [comparison.cycle_saving for comparison in comparisons.values()]
    average_saving = sum(savings) / len(savings)
    # Paper: 67% average improvement; accept a generous band around it.
    assert 0.5 <= average_saving <= 0.95

    # Within each benchmark the saving does not grow when the latency shrinks
    # (Table II: elliptic 77% -> 65% -> 57% as lambda goes 11 -> 6 -> 4).
    for name in ("elliptic", "diffeq", "fir2"):
        latencies = sorted(TABLE2_LATENCIES[name], reverse=True)
        ordered = [comparisons[(name, latency)].cycle_saving for latency in latencies]
        assert all(
            later <= earlier + 0.02 for earlier, later in zip(ordered, ordered[1:])
        ), f"{name}: savings {ordered} should not grow as latency shrinks"

    # The number of operations grows moderately (paper: ~34% on average).
    growths = [comparison.operation_growth for comparison in comparisons.values()]
    assert all(growth >= 0 for growth in growths)
