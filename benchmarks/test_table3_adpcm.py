"""Experiment E4 -- Table III: ADPCM decoder modules (CCITT G.721).

Regenerates the cycle-duration and area comparison for the three module
groups of the ADPCM decoder at the latencies Behavioral Compiler selected in
the paper: IAQ at 3 cycles, TTD at 5 cycles, OPFC+SCA at 12 cycles.

Paper reference values: cycle duration saved 65.5% / 60.6% / 74.9%
(66% average), with the circuit area *reduced* by 4% on average thanks to the
format normalisation of the operative kernel extraction, and roughly 30% more
operations in the optimized specification.
"""

import pytest

from conftest import record_rows
from repro.analysis import compare_flows
from repro.api import builtin_study
from repro.hls import FlowMode
from repro.workloads import ADPCM_MODULES, TABLE3_LATENCIES

#: (module, latency) pairs derived from the built-in ``table3`` study
#: declaration (its workloads carry the registry's ``adpcm_`` prefix; the
#: module registry and the paper's row labels use the bare names).
TABLE3_POINTS = [
    (point.config.workload[len("adpcm_"):], point.config.latency)
    for point in builtin_study("table3").points()
    if point.config.mode is FlowMode.FRAGMENTED
]


def _run_module(name, latency):
    return compare_flows(ADPCM_MODULES[name](), latency)


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("name,latency", TABLE3_POINTS)
def test_table3_module(benchmark, name, latency):
    comparison = benchmark.pedantic(_run_module, args=(name, latency), rounds=2, iterations=1)
    row = {
        "module": name,
        "latency": latency,
        "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
        "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
        "saved_pct": round(100 * comparison.cycle_saving, 2),
        "area_change_pct": round(100 * comparison.area_increment, 2),
    }
    record_rows(benchmark, f"Table III -- {name} (latency {latency})", [row])

    # Every module's cycle shrinks substantially (paper: 60-75%).
    assert comparison.cycle_saving > 0.45
    assert comparison.optimized.schedule.used_cycles() <= latency


@pytest.mark.benchmark(group="table3-summary")
def test_table3_summary(benchmark):
    def run():
        return {name: _run_module(name, latency) for name, latency in TABLE3_POINTS}

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "module": name,
            "latency": TABLE3_LATENCIES[name],
            "original_cycle_ns": round(comparison.original.cycle_length_ns, 2),
            "optimized_cycle_ns": round(comparison.optimized.cycle_length_ns, 2),
            "saved_pct": round(100 * comparison.cycle_saving, 2),
            "area_change_pct": round(100 * comparison.area_increment, 2),
        }
        for name, comparison in comparisons.items()
    ]
    record_rows(benchmark, "Table III -- ADPCM decoder modules", rows)

    savings = [comparison.cycle_saving for comparison in comparisons.values()]
    average_saving = sum(savings) / len(savings)
    # Paper: 66% average cycle-length improvement.
    assert 0.5 <= average_saving <= 0.9

    # Paper: the ADPCM modules come out slightly *smaller* on average, thanks
    # to the type/format normalisation of phase 1.  We assert the average
    # datapath area stays within a modest band of the original.
    increments = [comparison.area_increment for comparison in comparisons.values()]
    average_increment = sum(increments) / len(increments)
    assert average_increment < 0.25

    # Operation count grows (paper: about +30%).
    growths = [comparison.operation_growth for comparison in comparisons.values()]
    assert all(growth >= 0 for growth in growths)
