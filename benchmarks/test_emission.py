"""Experiment E8 -- RTL emission: the allocated architectures as real designs.

Every paper table reports an *estimated* architecture; this experiment lowers
the allocated datapaths of the motivational example and the ADPCM IAQ module
to structural RTL (shared functional units, the allocated register file,
FSM-sequenced mux trees), co-simulates each emitted design cycle-accurately
against the batch-interpreter oracle, and tabulates the structural gate
counts next to the allocation's area estimates.
"""

import pytest

from conftest import record_rows
from repro.api import FlowConfig, Pipeline
from repro.rtl.emit import emit_design, verify_emission

POINTS = [
    ("motivational", 3, "conventional"),
    ("motivational", 3, "fragmented"),
    ("adpcm_iaq", 3, "conventional"),
    ("adpcm_iaq", 3, "fragmented"),
]


def _emit_point(workload, latency, mode):
    artifact = Pipeline().run(
        FlowConfig(latency=latency, mode=mode, workload=workload), use_cache=False
    )
    emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
    check = verify_emission(
        emission.design, artifact.working_specification, random_count=25
    )
    return artifact, emission, check


@pytest.mark.benchmark(group="rtl-emission")
@pytest.mark.parametrize("workload,latency,mode", POINTS)
def test_emitted_design_matches_oracle(benchmark, workload, latency, mode):
    artifact, emission, check = benchmark.pedantic(
        _emit_point, args=(workload, latency, mode), rounds=2, iterations=1
    )
    assert check.equivalent, check.summary()
    stats = emission.stats
    row = {
        "workload": workload,
        "mode": mode,
        "latency": latency,
        "gates": stats.gate_count,
        "fsm_states": stats.fsm_states,
        "muxes": stats.mux_count,
        "register_bits": stats.register_bits,
        "estimated_total_area": round(artifact.datapath.total_area),
        "oracle_vectors": check.vectors_checked,
    }
    record_rows(benchmark, f"RTL emission -- {workload} ({mode})", [row])
    # The optimized motivational design keeps the paper's register story:
    # five stored bits against the conventional schedule's full register.
    if (workload, mode) == ("motivational", "fragmented"):
        assert stats.register_bits == 5
