"""Cross-engine bit-identity: plan backends vs the legacy evaluation loops.

The compiled bit-plane core (``bigint`` and ``numpy`` backends) must produce
exactly the results of the legacy engines it replaced -- the SWAR batch
oracle, the per-operation scalar interpreter and the levelised netlist
walker -- for every registered workload (original and transformed), for the
seed-263 generated falsifier family, and through the emitted-RTL
verification path, in both flow modes.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.api.config import ConfigError, FlowConfig
from repro.api.pipeline import Pipeline
from repro.core import TransformOptions, transform
from repro.engine import clear_plan_memo, has_numpy
from repro.rtl.elaborate import elaborate
from repro.rtl.emit import emit_design, verify_emission
from repro.rtl.simulator import NetlistSimulator
from repro.simulation import BatchInterpreter, Interpreter, stimulus
from repro.workloads import ALL_WORKLOADS, GeneratorConfig, random_specification

#: Every engine value the batch-capable simulators accept, legacy first.
BATCH_ENGINES = ["legacy", "bigint"] + (["numpy"] if has_numpy() else [])

#: The latency each workload's paper table uses.
WORKLOAD_LATENCIES = {
    "motivational": 3,
    "fig3": 3,
    "elliptic": 11,
    "diffeq": 6,
    "iir4": 6,
    "fir2": 5,
    "adpcm_iaq": 3,
    "adpcm_ttd": 5,
    "adpcm_opfc_sca": 12,
}


def assert_batch_engines_agree(specification, vectors):
    """Every batch engine produces identical planes and decoded outputs."""
    reference = None
    for engine in BATCH_ENGINES:
        result = BatchInterpreter(specification, engine=engine).run_batch(vectors)
        snapshot = (
            result.lanes,
            result.final_planes,
            {name: result.output_lanes(name) for name in result.output_names},
        )
        if reference is None:
            reference = (engine, snapshot)
        else:
            assert snapshot == reference[1], (
                f"{specification.name}: engine {engine} disagrees with "
                f"{reference[0]}"
            )


def assert_scalar_engines_agree(specification, vectors):
    """The plan-backed scalar interpreter matches the legacy loop, trace included."""
    plan = Interpreter(specification, engine="plane")
    legacy = Interpreter(specification, engine="legacy")
    for vector in vectors:
        a = plan.run(vector)
        b = legacy.run(vector)
        assert a.outputs == b.outputs, specification.name
        assert a.final_state == b.final_state, specification.name
        assert a.operation_results == b.operation_results, specification.name


class TestBatchOracle:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_workload(self, name):
        spec = ALL_WORKLOADS[name]()
        vectors = stimulus(spec, random_count=15, seed=29)
        assert_batch_engines_agree(spec, vectors)

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_transformed_workload(self, name):
        spec = ALL_WORKLOADS[name]()
        latency = WORKLOAD_LATENCIES[name]
        result = transform(spec, latency, TransformOptions(check_equivalence=False))
        vectors = stimulus(spec, random_count=15, seed=29)
        assert_batch_engines_agree(result.transformed, vectors)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5000))
    @example(seed=263)  # the pinned falsifier family of the e2e suite
    def test_generated_specifications(self, seed):
        config = GeneratorConfig(
            operation_count=8, input_count=3, maximum_width=10, mul_weight=0.15
        )
        spec = random_specification(seed, config)
        vectors = stimulus(spec, random_count=10, seed=seed)
        assert_batch_engines_agree(spec, vectors)

    def test_plan_memo_survives_clearing(self):
        spec = ALL_WORKLOADS["motivational"]()
        vectors = stimulus(spec, random_count=5, seed=1)
        before = BatchInterpreter(spec, engine="bigint").run_batch(vectors)
        clear_plan_memo()
        after = BatchInterpreter(spec, engine="bigint").run_batch(vectors)
        assert before.final_planes == after.final_planes

    def test_unknown_engine_rejected(self):
        spec = ALL_WORKLOADS["motivational"]()
        with pytest.raises(ValueError, match="unknown engine"):
            BatchInterpreter(spec, engine="simd")

    def test_forced_numpy_without_numpy_raises(self, monkeypatch):
        from repro.engine import numpy_backend

        monkeypatch.setattr(numpy_backend, "available", lambda: False)
        spec = ALL_WORKLOADS["motivational"]()
        with pytest.raises(RuntimeError, match="numpy"):
            BatchInterpreter(spec, engine="numpy")

    def test_auto_degrades_without_numpy(self, monkeypatch):
        """auto falls back to big-int planes when numpy is absent."""
        from repro.engine import numpy_backend

        monkeypatch.setattr(numpy_backend, "available", lambda: False)
        monkeypatch.setenv("REPRO_ENGINE_NUMPY_LANES", "1")
        spec = ALL_WORKLOADS["motivational"]()
        vectors = stimulus(spec, random_count=6, seed=5)
        auto = BatchInterpreter(spec, engine="auto").run_batch(vectors)
        bigint = BatchInterpreter(spec, engine="bigint").run_batch(vectors)
        assert auto.final_planes == bigint.final_planes


class TestScalarInterpreter:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_workload(self, name):
        spec = ALL_WORKLOADS[name]()
        vectors = stimulus(spec, random_count=6, seed=17)
        assert_scalar_engines_agree(spec, vectors)

    @pytest.mark.parametrize("name", ["motivational", "fig3", "adpcm_iaq"])
    def test_transformed_workload(self, name):
        spec = ALL_WORKLOADS[name]()
        result = transform(spec, 3, TransformOptions(check_equivalence=False))
        vectors = stimulus(spec, random_count=6, seed=17)
        assert_scalar_engines_agree(result.transformed, vectors)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5000))
    @example(seed=263)
    def test_generated_specifications(self, seed):
        config = GeneratorConfig(operation_count=8, input_count=3, maximum_width=10)
        spec = random_specification(seed, config)
        vectors = stimulus(spec, random_count=4, seed=seed)
        assert_scalar_engines_agree(spec, vectors)

    def test_legacy_env_override_selects_legacy_loop(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        spec = ALL_WORKLOADS["motivational"]()
        assert Interpreter(spec).engine == "legacy"
        monkeypatch.setenv("REPRO_ENGINE", "bigint")
        assert Interpreter(spec).engine == "plane"

    def test_unknown_engine_rejected(self):
        from repro.simulation import SimulationError

        spec = ALL_WORKLOADS["motivational"]()
        with pytest.raises(SimulationError, match="engine"):
            Interpreter(spec, engine="simd")


class TestNetlistSimulator:
    @pytest.mark.parametrize("name", ["motivational", "adpcm_iaq"])
    def test_bus_batch_identical_across_engines(self, name):
        spec = ALL_WORKLOADS[name]()
        transformed = transform(
            spec, 3, TransformOptions(check_equivalence=False)
        ).transformed
        design = elaborate(transformed)
        vectors = stimulus(transformed, random_count=12, seed=41)
        bus_values = {
            port.name: [vector[port.name] for vector in vectors]
            for port in transformed.inputs()
        }
        reference = None
        for engine in BATCH_ENGINES:
            simulator = NetlistSimulator(design.netlist, engine=engine)
            result = simulator.run_bus_batch(bus_values)
            snapshot = (result.lanes, result.values, result.arrivals)
            if reference is None:
                reference = (engine, snapshot)
            else:
                assert snapshot == reference[1], (name, engine, reference[0])


class TestEmittedDesigns:
    @pytest.mark.parametrize("mode", ["conventional", "fragmented"])
    def test_verify_emission_on_every_backend(self, mode):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode=mode, workload="motivational"),
            use_cache=False,
        )
        emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
        for engine in BATCH_ENGINES:
            check = verify_emission(
                emission.design,
                artifact.working_specification,
                random_count=12,
                backend=engine,
            )
            assert check.equivalent, (mode, engine, check.summary())

    def test_simulate_batch_identical_across_engines(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="fragmented", workload="adpcm_iaq"),
            use_cache=False,
        )
        emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
        vectors = stimulus(artifact.working_specification, random_count=10, seed=13)
        results = [
            emission.design.simulate_batch(vectors, engine=engine)
            for engine in BATCH_ENGINES
        ]
        for result in results[1:]:
            assert result == results[0]


class TestFlowConfigEngine:
    def test_engine_validated(self):
        with pytest.raises(ConfigError):
            FlowConfig(latency=3, mode="fragmented", workload="motivational", engine="simd")

    def test_engine_excluded_from_content_hash(self):
        hashes = {
            FlowConfig(
                latency=3, mode="fragmented", workload="motivational", engine=engine
            ).content_hash()
            for engine in (None, "auto", "bigint", "legacy")
        }
        assert len(hashes) == 1

    def test_pipeline_runs_end_to_end_on_legacy_engine(self):
        reports = []
        for engine in ("legacy", None):
            artifact = Pipeline().run(
                FlowConfig(
                    latency=3,
                    mode="fragmented",
                    workload="motivational",
                    engine=engine,
                    emit=True,
                    emit_check=True,
                ),
                use_cache=False,
            )
            reports.append(dict(artifact.report))
        # The metric row is fully deterministic, and the config hash ignores
        # the engine field -- both runs must produce the identical report.
        assert reports[0] == reports[1]
