"""Backend selection policy and plane-storage round trips of repro.engine."""

import random

import pytest

from repro.engine import (
    BACKEND_NAMES,
    BigIntContext,
    available_backends,
    bit_not,
    context_for,
    has_numpy,
    less_than,
    multiply,
    negate,
    resolve_backend,
    ripple_add,
    ripple_increment,
    select,
)
from repro.engine import numpy_backend

requires_numpy = pytest.mark.skipif(not has_numpy(), reason="numpy not importable")


class TestResolveBackend:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_backend(None) == "auto"

    def test_explicit_names_pass_through(self):
        assert resolve_backend("bigint") == "bigint"
        assert resolve_backend("legacy") == "legacy"
        assert resolve_backend("auto") == "auto"

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        assert resolve_backend(None) == "legacy"
        monkeypatch.setenv("REPRO_ENGINE", "bigint")
        assert resolve_backend(None) == "bigint"

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "legacy")
        assert resolve_backend("bigint") == "bigint"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_backend("simd")

    def test_forced_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(numpy_backend, "available", lambda: False)
        with pytest.raises(RuntimeError, match="numpy"):
            resolve_backend("numpy")

    def test_available_backends_always_lists_bigint(self):
        backends = available_backends()
        assert backends[0] == "bigint"
        assert ("numpy" in backends) == has_numpy()
        assert set(backends) <= set(BACKEND_NAMES)


class TestContextFor:
    def test_legacy_is_not_a_backend(self):
        with pytest.raises(ValueError, match="legacy"):
            context_for(8, "legacy")

    def test_auto_uses_bigint_below_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_NUMPY_LANES", raising=False)
        assert context_for(64, "auto").backend == "bigint"

    @requires_numpy
    def test_auto_switches_to_numpy_over_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_NUMPY_LANES", "4")
        assert context_for(8, "auto").backend == "numpy"
        assert context_for(2, "auto").backend == "bigint"

    def test_auto_without_numpy_stays_bigint(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_NUMPY_LANES", "1")
        monkeypatch.setattr(numpy_backend, "available", lambda: False)
        assert context_for(1 << 20, "auto").backend == "bigint"

    @requires_numpy
    def test_forced_backends(self):
        assert context_for(8, "bigint").backend == "bigint"
        assert context_for(8, "numpy").backend == "numpy"

    def test_rejects_nonpositive_lane_counts(self):
        with pytest.raises(ValueError):
            BigIntContext(0)


#: Lane count of the storage tests; crosses the 64-bit word boundary of the
#: numpy backend so multi-word planes are exercised.
LANES = 70


def _contexts():
    contexts = [BigIntContext(LANES)]
    if has_numpy():
        contexts.append(numpy_backend.NumpyContext(LANES))
    return contexts


class TestPlaneRoundTrips:
    def test_mask_round_trip(self):
        lane_mask = (1 << LANES) - 1
        patterns = [0, 1, lane_mask, 0x5A5A5A5A5A5A5A5A5A & lane_mask]
        for ctx in _contexts():
            for bits in patterns:
                plane = ctx.plane_from_mask(bits)
                assert ctx.plane_to_mask(plane) == bits, ctx.backend

    def test_from_mask_truncates_to_lane_count(self):
        for ctx in _contexts():
            plane = ctx.plane_from_mask(1 << LANES)
            assert ctx.plane_to_mask(plane) == 0, ctx.backend
            assert ctx.is_zero(plane), ctx.backend

    def test_zero_and_mask_planes(self):
        for ctx in _contexts():
            assert ctx.plane_to_mask(ctx.zero) == 0, ctx.backend
            assert ctx.plane_to_mask(ctx.mask) == (1 << LANES) - 1, ctx.backend

    def test_planes_from_masks_round_trip(self):
        rng = random.Random(3)
        masks = [rng.getrandbits(LANES) for _ in range(5)]
        for ctx in _contexts():
            planes = ctx.planes_from_masks(masks)
            assert ctx.planes_to_masks(planes) == masks, ctx.backend


class TestKernelCrossBackend:
    """Every kernel computes identical lane masks on every backend."""

    WIDTH = 6

    def _kernel_outcomes(self, ctx, rng):
        rows = []
        for _ in range(5):
            a = [ctx.plane_from_mask(rng.getrandbits(LANES)) for _ in range(self.WIDTH)]
            b = [ctx.plane_from_mask(rng.getrandbits(LANES)) for _ in range(self.WIDTH)]
            carry_bits = rng.getrandbits(LANES)
            carry = ctx.plane_from_mask(carry_bits)
            lt = less_than(ctx, a, b)
            inverse = bit_not(ctx, [lt])[0]
            rows.append(
                (
                    ctx.planes_to_masks(ripple_add(a, b, carry)),
                    ctx.planes_to_masks(ripple_increment(ctx, a, carry)),
                    ctx.planes_to_masks(negate(ctx, a)),
                    ctx.plane_to_mask(lt),
                    ctx.planes_to_masks(bit_not(ctx, a)),
                    ctx.planes_to_masks(select(lt, inverse, a, b)),
                    ctx.planes_to_masks(multiply(ctx, a, b, self.WIDTH)),
                )
            )
        return rows

    @requires_numpy
    def test_kernels_agree_between_backends(self):
        outcomes = [
            self._kernel_outcomes(ctx, random.Random(7)) for ctx in _contexts()
        ]
        assert outcomes[0] == outcomes[1]

    def test_bigint_kernels_match_scalar_arithmetic(self):
        """Single-lane planes reduce kernels to ordinary width-limited math."""
        ctx = BigIntContext(1)
        width = self.WIDTH
        for a_value in (0, 1, 19, 63):
            for b_value in (0, 5, 62):
                a = [(a_value >> i) & 1 for i in range(width)]
                b = [(b_value >> i) & 1 for i in range(width)]
                total = ctx.planes_to_masks(ripple_add(a, b, ctx.zero))
                assert _to_value(total) == (a_value + b_value) % (1 << width)
                product = ctx.planes_to_masks(multiply(ctx, a, b, width))
                assert _to_value(product) == (a_value * b_value) % (1 << width)
                neg = ctx.planes_to_masks(negate(ctx, a))
                assert _to_value(neg) == (-a_value) % (1 << width)
                assert less_than(ctx, a, b) == int(a_value < b_value)


def _to_value(plane_bits):
    value = 0
    for index, bit in enumerate(plane_bits):
        value |= (bit & 1) << index
    return value
