"""Tests for the benchmark specifications and the random generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.operations import OpKind
from repro.ir.validate import validate
from repro.simulation import simulate
from repro.workloads import (
    ALL_WORKLOADS,
    CLASSICAL_BENCHMARKS,
    GeneratorConfig,
    TABLE2_LATENCIES,
    TABLE3_LATENCIES,
    addition_chain,
    addition_tree,
    diffeq,
    elliptic,
    fig3_example,
    fir2,
    iir4,
    motivational_example,
    random_specification,
    random_suite,
)
from repro.workloads.fig3 import FIG3_WIDTHS


class TestRegistries:
    def test_all_workloads_build_and_validate(self):
        for name, factory in ALL_WORKLOADS.items():
            spec = factory()
            report = validate(spec)
            assert report.ok, f"{name}: {report.summary()}"

    def test_table2_latencies_reference_known_benchmarks(self):
        assert set(TABLE2_LATENCIES) == set(CLASSICAL_BENCHMARKS)
        assert TABLE2_LATENCIES["elliptic"] == [11, 6, 4]
        assert TABLE2_LATENCIES["fir2"] == [5, 3]

    def test_table3_latencies(self):
        assert TABLE3_LATENCIES == {"iaq": 3, "ttd": 5, "opfc_sca": 12}


class TestMotivational:
    def test_structure(self):
        spec = motivational_example()
        assert spec.additive_operation_count() == 3
        assert all(op.width == 16 for op in spec.operations)

    def test_simulation(self):
        result = simulate(motivational_example(), {"A": 5, "B": 6, "D": 7, "F": 8})
        assert result.output("G") == 26

    def test_addition_chain_length(self):
        spec = addition_chain(7, 8)
        assert spec.additive_operation_count() == 7
        values = {f"IN{i}": i + 1 for i in range(8)}
        assert simulate(spec, values).output("OUT") == sum(values.values())

    def test_addition_chain_rejects_zero_length(self):
        with pytest.raises(ValueError):
            addition_chain(0)

    def test_addition_tree(self):
        spec = addition_tree(8, 8)
        values = {f"IN{i}": i for i in range(8)}
        assert simulate(spec, values).output("OUT") == sum(values.values()) & 0xFF
        assert spec.additive_operation_count() == 7

    def test_addition_tree_rejects_single_leaf(self):
        with pytest.raises(ValueError):
            addition_tree(1)


class TestFig3:
    def test_operation_widths_match_paper(self):
        spec = fig3_example()
        for name, width in FIG3_WIDTHS.items():
            assert spec.operation_named(name).width == width

    def test_dependency_structure(self):
        from repro.ir.dfg import DataFlowGraph

        spec = fig3_example()
        graph = DataFlowGraph(spec)
        c = spec.operation_named("C")
        assert {op.name for op in graph.predecessors(c)} == {"B"}
        h = spec.operation_named("H")
        assert {op.name for op in graph.predecessors(h)} == {"F", "G"}

    def test_simulation(self):
        spec = fig3_example()
        inputs = {port.name: 1 for port in spec.inputs()}
        result = simulate(spec, inputs)
        assert result.output("OA") == 2
        assert result.output("OH") == 4


class TestClassicalBenchmarks:
    def test_elliptic_operation_mix(self):
        spec = elliptic()
        kinds = [op.kind for op in spec.operations]
        assert kinds.count(OpKind.MUL) == 8
        assert kinds.count(OpKind.ADD) == 26

    def test_elliptic_coefficient_ports_variant(self):
        by_constant = elliptic()
        by_port = elliptic(coefficient_ports=True)
        assert len(by_port.inputs()) == len(by_constant.inputs()) + 8

    def test_diffeq_operation_mix(self):
        spec = diffeq()
        kinds = [op.kind for op in spec.operations]
        assert kinds.count(OpKind.MUL) == 6
        assert kinds.count(OpKind.SUB) == 2
        assert kinds.count(OpKind.ADD) == 2
        assert kinds.count(OpKind.LT) == 1

    def test_diffeq_semantics(self):
        spec = diffeq(width=16)
        inputs = {"x": 10, "y": 20, "u": 3, "dx": 2, "a": 50}
        result = simulate(spec, inputs)
        assert result.output("x1") == 12
        assert result.output("y1") == 20 + 3 * 2
        assert result.output("u1") == (3 - 3 * 10 * 3 * 2 - 3 * 20 * 2) & 0xFFFF
        assert result.output("c") == 1

    def test_iir4_and_fir2_build(self):
        assert iir4().additive_operation_count() >= 15
        assert fir2().additive_operation_count() == 5

    def test_fir2_semantics(self):
        from repro.workloads.classical import FIR2_COEFFICIENTS

        spec = fir2()
        inputs = {"x0": 3, "x1": 5, "x2": 7}
        expected = sum(c * x for c, x in zip(FIR2_COEFFICIENTS, (3, 5, 7))) & 0xFFFF
        assert simulate(spec, inputs).output("y") == expected

    @pytest.mark.parametrize("name", sorted(CLASSICAL_BENCHMARKS))
    def test_width_parameter_respected(self, name):
        spec = CLASSICAL_BENCHMARKS[name](width=12)
        assert any(port.width == 12 for port in spec.inputs())


class TestAdpcmModules:
    def test_iaq_produces_nonzero_output(self):
        from repro.workloads import inverse_adaptive_quantizer

        spec = inverse_adaptive_quantizer()
        result = simulate(spec, {"I": 7, "Y": 512})
        assert result.final_state["DQ"] != 0

    def test_ttd_flags(self):
        from repro.workloads import tone_transition_detector

        spec = tone_transition_detector()
        quiet = simulate(spec, {"A2P": 0, "DQ": 10, "YL": 0})
        assert quiet.output("TDP") == 0
        tone = simulate(spec, {"A2P": -30000, "DQ": 30000, "YL": 0})
        assert tone.output("TDP") == 1
        assert tone.output("TR") == 1

    def test_opfc_sca_segments(self):
        from repro.workloads import output_pcm_and_sync

        spec = output_pcm_and_sync()
        low = simulate(spec, {"SR": 10, "SE": 5, "Y": 100, "I": 4})
        high = simulate(spec, {"SR": 5000, "SE": 5, "Y": 100, "I": 4})
        assert low.output("SP") < high.output("SP")


class TestRandomGenerator:
    def test_reproducible(self):
        first = random_specification(42)
        second = random_specification(42)
        assert first.operation_count() == second.operation_count()
        assert [op.kind for op in first.operations] == [op.kind for op in second.operations]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(operation_count=0).validate()
        with pytest.raises(ValueError):
            GeneratorConfig(minimum_width=8, maximum_width=4).validate()

    def test_suite_size(self):
        suite = random_suite(5, seed=7)
        assert len(suite) == 5

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_generated_specifications_are_valid(self, seed):
        config = GeneratorConfig(operation_count=10, input_count=3, maximum_width=12)
        spec = random_specification(seed, config)
        assert validate(spec).ok
        assert spec.additive_operation_count() > 0
