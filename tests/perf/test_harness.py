"""Unit tests for the performance harness and its bench-file reporting."""

import json

import pytest

from repro.api.cli import main
from repro.perf import (
    PIPELINE_STAGES,
    check_min_speedups,
    check_regressions,
    compute_speedups,
    format_bench_text,
    load_bench,
    run_benchmarks,
    time_stages,
    time_sweep,
    time_verification,
    write_bench,
)


class TestTimeStages:
    def test_reports_every_pipeline_stage(self):
        stages = time_stages("motivational", 3, repeats=1)
        for stage in PIPELINE_STAGES:
            assert stage in stages
            assert stages[stage] >= 0.0
        assert stages["total"] == pytest.approx(
            sum(stages[stage] for stage in PIPELINE_STAGES)
        )

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_stages("motivational", 3, repeats=0)


class TestTimeVerification:
    def test_reports_oracle_metrics(self):
        metrics = time_verification("motivational", 3, repeats=1)
        assert metrics["equivalence_s"] > 0.0
        assert metrics["elaborate_s"] > 0.0
        assert metrics["equivalence_vectors"] > 100  # randoms + corner set
        assert metrics["equivalence_vectors_per_s"] == pytest.approx(
            metrics["equivalence_vectors"] / metrics["equivalence_s"]
        )

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_verification("motivational", 3, repeats=0)


class TestTimeSweep:
    def test_fig4_sweep_returns_positive_seconds(self):
        assert time_sweep("chain:2:4", latencies=[2, 3], repeats=1) > 0.0

    def test_fullpipe_sweep_returns_positive_seconds(self):
        assert time_sweep("chain:2:4", latencies=[2, 3], repeats=1, kind="fullpipe") > 0.0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            time_sweep("chain:2:4", latencies=[2], repeats=1, kind="cached")


class TestReporting:
    BASE = {"stages": {"w": {"transform": 0.10, "total": 0.30}}, "sweeps": {"s": 1.0}}

    def test_compute_speedups(self):
        current = {"stages": {"w": {"transform": 0.05, "total": 0.10}}, "sweeps": {"s": 0.2}}
        speedups = compute_speedups(self.BASE, current)
        assert speedups["w/transform"] == pytest.approx(2.0)
        assert speedups["w/total"] == pytest.approx(3.0)
        assert speedups["sweep/s"] == pytest.approx(5.0)

    def test_speedups_skip_unmatched_keys(self):
        current = {"stages": {}, "sweeps": {"other": 0.1}}
        assert compute_speedups(self.BASE, current) == {}

    def test_check_regressions_flags_slowdowns(self):
        slower = {"stages": {"w": {"transform": 0.25, "total": 0.31}}, "sweeps": {"s": 0.9}}
        complaints = check_regressions(self.BASE, slower, max_regression=2.0)
        assert len(complaints) == 1
        assert "w/transform" in complaints[0]

    def test_check_regressions_accepts_equal_times(self):
        assert check_regressions(self.BASE, self.BASE, max_regression=2.0) == []

    def test_check_regressions_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            check_regressions(self.BASE, self.BASE, max_regression=0.0)

    def test_check_regressions_ignores_sub_floor_noise(self):
        base = {"stages": {"w": {"transform": 0.00001}}, "sweeps": {}}
        noisy = {"stages": {"w": {"transform": 0.00003}}, "sweeps": {}}
        # 3x slower but still microseconds: not a regression.
        assert check_regressions(base, noisy, max_regression=2.0) == []
        # A real slide back over the floor is still caught.
        slow = {"stages": {"w": {"transform": 0.002}}, "sweeps": {}}
        assert len(check_regressions(base, slow, max_regression=2.0)) == 1

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        current = {"stages": {"w": {"total": 0.1}}, "sweeps": {"s": 0.5}}
        payload = write_bench(path, current)
        # First write anchors the baseline to the current measurement.
        assert payload["baseline"] == current
        loaded = load_bench(path)
        assert loaded["current"] == current

        # A later write refreshes `current` but preserves the anchor.
        faster = {"stages": {"w": {"total": 0.05}}, "sweeps": {"s": 0.25}}
        payload = write_bench(path, faster)
        assert payload["baseline"] == current
        assert payload["speedup"]["sweep/s"] == pytest.approx(2.0)

    def test_load_bench_missing_file(self, tmp_path):
        assert load_bench(tmp_path / "nope.json") is None

    def test_flatten_includes_verify_seconds_only(self):
        measurement = {
            "stages": {},
            "sweeps": {},
            "verify": {
                "w": {
                    "equivalence_s": 0.5,
                    "elaborate_s": 0.25,
                    "equivalence_vectors": 107.0,
                    "equivalence_vectors_per_s": 214.0,
                }
            },
        }
        current = {
            "stages": {},
            "sweeps": {},
            "verify": {
                "w": {
                    "equivalence_s": 0.05,
                    "elaborate_s": 0.05,
                    "equivalence_vectors": 107.0,
                    "equivalence_vectors_per_s": 2140.0,
                }
            },
        }
        speedups = compute_speedups(measurement, current)
        assert speedups["verify/w/equivalence_s"] == pytest.approx(10.0)
        assert speedups["verify/w/elaborate_s"] == pytest.approx(5.0)
        # Counts and bigger-is-better throughput stay out of the flat view.
        assert not any("vectors" in key for key in speedups)

    def test_history_accumulates_across_writes(self, tmp_path):
        path = tmp_path / "BENCH_sched.json"
        first = {"stages": {"w": {"total": 0.1}}, "sweeps": {},
                 "meta": {"timestamp": "t1"}}
        second = {"stages": {"w": {"total": 0.05}}, "sweeps": {},
                  "meta": {"timestamp": "t2"}}
        write_bench(path, first)
        payload = write_bench(path, second, label="pr3")
        assert [entry["timestamp"] for entry in payload["history"]] == ["t1", "t2"]
        assert payload["history"][-1]["label"] == "pr3"
        assert payload["history"][-1]["flat"]["w/total"] == pytest.approx(0.05)
        # History survives the round trip through the file.
        assert load_bench(path)["history"] == payload["history"]

    def test_check_min_speedups(self):
        current = {"stages": {"w": {"allocate": 0.05}}, "sweeps": {}}
        baseline = {"stages": {"w": {"allocate": 0.2}}, "sweeps": {}}
        assert check_min_speedups(baseline, current, {"w/allocate": 2.0}) == []
        complaints = check_min_speedups(baseline, current, {"w/allocate": 8.0})
        assert len(complaints) == 1 and "w/allocate" in complaints[0]
        # A missing key is a failed gate, not a silently passing one.
        complaints = check_min_speedups(baseline, current, {"w/nope": 2.0})
        assert len(complaints) == 1
        with pytest.raises(ValueError):
            check_min_speedups(baseline, current, {"w/allocate": 0.0})

    def test_format_bench_text_lists_every_key(self):
        current = {"stages": {"w": {"total": 0.1}}, "sweeps": {"s": 0.5}}
        payload = write_bench_payload = {
            "baseline": self.BASE,
            "current": current,
            "speedup": compute_speedups(self.BASE, current),
        }
        text = format_bench_text(write_bench_payload)
        assert "w/total" in text
        assert "sweep/s" in text


class TestCliPerf:
    def test_perf_cli_writes_bench_file(self, tmp_path, monkeypatch, capsys):
        # Shrink the harness to one tiny workload so the CLI test stays fast.
        import repro.perf.harness as harness

        monkeypatch.setattr(harness, "QUICK_STAGE_POINTS", (("chain:2:4", 2),))
        monkeypatch.setattr(harness, "QUICK_SWEEPS", {"mini": ("chain:2:4", "fig4")})
        monkeypatch.setattr(harness, "FIG4_LATENCIES", (2, 3))
        out = tmp_path / "BENCH_sched.json"
        code = main(["perf", "--quick", "--repeats", "1", "--output", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert "current" in payload and "baseline" in payload
        assert "mini" in payload["current"]["sweeps"]
        assert "BENCH " in capsys.readouterr().out

    def test_perf_cli_external_baseline_does_not_reanchor(
        self, tmp_path, monkeypatch, capsys
    ):
        """--baseline is a comparison, not a re-anchor: the output file's
        committed baseline section must survive the run unchanged."""
        import repro.perf.harness as harness

        monkeypatch.setattr(harness, "QUICK_STAGE_POINTS", (("chain:2:4", 2),))
        monkeypatch.setattr(harness, "QUICK_SWEEPS", {"mini": ("chain:2:4", "fig4")})
        out = tmp_path / "BENCH_sched.json"
        anchor = {"stages": {"chain:2:4": {"total": 123.0}}, "sweeps": {"mini": 456.0}}
        out.write_text(json.dumps({"schema": 1, "baseline": anchor, "current": anchor}))
        external = tmp_path / "other.json"
        external.write_text(
            json.dumps({"schema": 1, "baseline": {"stages": {}, "sweeps": {"mini": 9.0}}})
        )
        code = main(
            ["perf", "--quick", "--repeats", "1", "--output", str(out),
             "--baseline", str(external)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["baseline"] == anchor

    def test_perf_cli_fails_on_regression(self, tmp_path, monkeypatch, capsys):
        import functools

        import repro.perf
        import repro.perf.harness as harness
        import repro.perf.report as report

        monkeypatch.setattr(harness, "QUICK_STAGE_POINTS", (("chain:2:4", 2),))
        monkeypatch.setattr(harness, "QUICK_SWEEPS", {"mini": ("chain:2:4", "fig4")})
        monkeypatch.setattr(harness, "FIG4_LATENCIES", (2,))
        # Warm process memos can push the tiny workload's stage times under
        # the noise floor; disable it so the ratio gate itself is exercised.
        monkeypatch.setattr(
            repro.perf,
            "check_regressions",
            functools.partial(report.check_regressions, min_seconds=0.0),
        )
        out = tmp_path / "BENCH_sched.json"
        # An impossible baseline: everything is a >2x regression against it.
        impossible = {
            "stages": {"chain:2:4": {"total": 1e-9}},
            "sweeps": {"mini": 1e-9},
        }
        out.write_text(
            json.dumps({"schema": 1, "baseline": impossible, "current": impossible})
        )
        code = main(
            ["perf", "--quick", "--repeats", "1", "--output", str(out),
             "--max-regression", "2.0"]
        )
        assert code == 1
        assert "perf regression" in capsys.readouterr().err

    def test_perf_cli_min_speedup_gate(self, tmp_path, monkeypatch, capsys):
        import repro.perf.harness as harness

        monkeypatch.setattr(harness, "QUICK_STAGE_POINTS", (("chain:2:4", 2),))
        monkeypatch.setattr(harness, "QUICK_SWEEPS", {"mini": ("chain:2:4", "fig4")})
        monkeypatch.setattr(harness, "FIG4_LATENCIES", (2,))
        out = tmp_path / "BENCH_sched.json"
        # A slow anchor: the required 1e-6x speedup passes, 1e6x fails.
        slow = {"stages": {"chain:2:4": {"total": 1e6}}, "sweeps": {"mini": 1e6}}
        out.write_text(json.dumps({"schema": 2, "baseline": slow, "current": slow}))
        code = main(
            ["perf", "--quick", "--repeats", "1", "--output", str(out),
             "--min-speedup", "chain:2:4/total=0.000001"]
        )
        assert code == 0
        out.write_text(json.dumps({"schema": 2, "baseline": slow, "current": slow}))
        code = main(
            ["perf", "--quick", "--repeats", "1", "--output", str(out),
             "--min-speedup", "sweep/mini=1e18"]
        )
        assert code == 1
        assert "perf speedup gate" in capsys.readouterr().err

    def test_perf_cli_rejects_malformed_min_speedup(self, tmp_path):
        code = main(["perf", "--quick", "--min-speedup", "nonsense"])
        assert code == 2


class TestRunBenchmarks:
    def test_quick_mode_structure(self, monkeypatch):
        import repro.perf.harness as harness

        monkeypatch.setattr(harness, "QUICK_STAGE_POINTS", (("chain:2:4", 2),))
        monkeypatch.setattr(harness, "QUICK_SWEEPS", {"mini": ("chain:2:4", "fig4")})
        monkeypatch.setattr(harness, "QUICK_STUDY_POINTS", ("table1",))
        monkeypatch.setattr(harness, "QUICK_EMIT_POINTS", (("chain:2:4", 2),))
        monkeypatch.setattr(harness, "QUICK_CHECK_POINTS", (("chain:2:4", 2),))
        monkeypatch.setattr(
            harness, "QUICK_SEARCH_POINTS", (("chain:2:4", 2, "conventional"),)
        )
        monkeypatch.setattr(harness, "FIG4_LATENCIES", (2, 3))
        result = run_benchmarks(quick=True, repeats=1)
        assert set(result) == {
            "stages",
            "sweeps",
            "verify",
            "emit",
            "check",
            "studies",
            "search",
            "faults",
            "engine",
            "server",
            "meta",
        }
        assert result["search"]["chain:2:4"]["paper_s"] > 0.0
        assert result["search"]["chain:2:4"]["search_s"] > 0.0
        assert result["search"]["chain:2:4"]["search_points"] >= 1.0
        assert result["server"]["cold_p50_s"] > 0.0
        assert result["server"]["warm_p99_s"] >= result["server"]["warm_p50_s"]
        assert result["server"]["warm_rows_per_s"] > 0.0
        assert result["engine"]["batch_oracle_s"] > 0.0
        assert result["engine"]["scalar_interp_s"] > 0.0
        assert result["engine"]["rtl_batch_s"] > 0.0
        assert result["engine"]["batch_oracle_vectors_per_s"] > 0.0
        assert result["faults"]["site_noplan_s"] > 0.0
        assert result["faults"]["injected_retry_s"] > 0.0
        assert result["faults"]["salvage_s"] > 0.0
        assert result["emit"]["chain:2:4"]["emit_s"] > 0.0
        assert result["emit"]["chain:2:4"]["rtlsim_s"] > 0.0
        assert result["check"]["chain:2:4"]["check_s"] > 0.0
        assert result["check"]["chain:2:4"]["check_diagnostics"] == 0.0
        assert result["studies"]["table1"]["cold_s"] > 0.0
        assert result["studies"]["table1"]["resume_s"] > 0.0
        assert "chain:2:4" in result["stages"]
        assert "chain:2:4" in result["verify"]
        assert result["verify"]["chain:2:4"]["equivalence_s"] > 0.0
        assert result["meta"]["quick"] is True
