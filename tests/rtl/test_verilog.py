"""The Verilog rendering is stable, structural, and synthesizable-shaped.

The golden file pins the exact text emitted for the motivational example's
optimized implementation (fragmented flow, latency 3).  Stability matters:
net names are netlist-local and nothing process-global (operation uids,
timestamps) may leak into the rendering, so the same design renders to the
same bytes in any process, whatever ran before.
"""

import re
from pathlib import Path

import pytest

from repro.api.config import FlowConfig
from repro.api.pipeline import Pipeline
from repro.rtl.emit import emit_design
from repro.rtl.verilog import render_verilog

GOLDEN = Path(__file__).parent / "golden" / "motivational_fragmented_l3.v"


def _motivational_verilog():
    artifact = Pipeline().run(
        FlowConfig(latency=3, mode="fragmented", workload="motivational"),
        use_cache=False,
    )
    emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
    return emission, render_verilog(emission.design)


class TestGoldenFile:
    def test_motivational_matches_golden(self):
        _emission, text = _motivational_verilog()
        assert text == GOLDEN.read_text(), (
            "generated Verilog drifted from tests/rtl/golden/"
            "motivational_fragmented_l3.v; if the change is intentional, "
            "regenerate the golden file and review the diff"
        )

    def test_rendering_is_deterministic(self):
        emission, text = _motivational_verilog()
        assert text == render_verilog(emission.design)
        _again, text2 = _motivational_verilog()
        assert text == text2


class TestModuleShape:
    def test_header_ports_and_clocking(self):
        _emission, text = _motivational_verilog()
        assert text.startswith("// example_optimized_impl")
        assert re.search(r"^module example_optimized_impl \($", text, re.M)
        for port in ("A", "B", "D", "F"):
            assert f"input  wire [15:0] {port}" in text
        assert "output wire [15:0] G" in text
        assert "input  wire clk" in text and "input  wire rst" in text
        assert "always @(posedge clk)" in text
        assert text.rstrip().endswith("endmodule")

    def test_every_wire_is_declared_and_driven(self):
        _emission, text = _motivational_verilog()
        declared = set()
        for match in re.finditer(r"^\s*wire (.+);$", text, re.M):
            declared.update(name.strip() for name in match.group(1).split(","))
        assigned = set(re.findall(r"^\s*assign (n\d+) =", text, re.M))
        assert assigned == declared

    def test_state_elements_reset_and_latch(self):
        emission, text = _motivational_verilog()
        for element in emission.design.state_elements:
            assert re.search(rf"^\s*reg\s+(\[\d+:0\] )?{element.name};", text, re.M)
            assert f"{element.name} <= {element.width}'d0;" in text

    def test_gate_count_matches_assign_count(self):
        emission, text = _motivational_verilog()
        assigns = re.findall(r"^\s*assign n\d+ =", text, re.M)
        assert len(assigns) == emission.design.netlist.gate_count()

    def test_module_name_sanitization(self):
        emission, _text = _motivational_verilog()
        text = render_verilog(emission.design, module_name="9weird name!")
        assert re.search(r"^module id_9weird_name_ \(", text, re.M)

    def test_port_named_like_a_gate_wire_is_renamed(self):
        """Ports in the reserved n<i> wire namespace must not collide with
        the per-gate wires (duplicate identifiers = unsynthesizable)."""
        from repro import SpecBuilder

        builder = SpecBuilder("collide")
        left = builder.input("n1", 4)
        right = builder.input("n2", 4)
        out = builder.output("q", 4)
        builder.add(left, right, dest=out)
        artifact = Pipeline().run(
            FlowConfig(latency=2, mode="conventional"),
            specification=builder.build(),
            use_cache=False,
        )
        emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
        text = render_verilog(emission.design)
        assert "input  wire [3:0] n1_" in text
        declared = []
        for match in re.finditer(r"^\s*wire (.+);$", text, re.M):
            declared += [name.strip() for name in match.group(1).split(",")]
        identifiers = declared + re.findall(
            r"^\s*reg\s+(?:\[\d+:0\] )?(\w+);", text, re.M
        )
        assert len(identifiers) == len(set(identifiers))


class TestConventionalRendering:
    @pytest.mark.parametrize("workload", ["adpcm_iaq", "fig3"])
    def test_conventional_designs_render(self, workload):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="conventional", workload=workload),
            use_cache=False,
        )
        emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
        text = render_verilog(emission.design)
        assert "module " in text and "endmodule" in text
        # one assign per gate, no undriven wires
        assigns = re.findall(r"^\s*assign n\d+ =", text, re.M)
        assert len(assigns) == emission.design.netlist.gate_count()
