"""The RTL emission backend simulates bit-identically to the batch oracle.

The emitted sequential design -- shared functional units, the allocated
register file, FSM-decoded mux trees -- must compute exactly what the
behavioural specification computes, cycle-accurately, for every registered
workload in both flow modes, for the BLC baseline, and over generated
specifications (including the seed-263 falsifier family every property suite
pins).  The scalar and lane-packed batch simulation drivers must agree with
each other, and the structural statistics must be consistent with the
allocation they were lowered from.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.api.config import FlowConfig
from repro.api.pipeline import Pipeline
from repro.core import TransformOptions, transform
from repro.hls.flow import FlowMode, run_schedule
from repro.rtl.emit import EmissionError, emit_design, verify_emission
from repro.simulation.vectors import stimulus
from repro.techlib.library import default_library
from repro.workloads import ALL_WORKLOADS, GeneratorConfig, random_specification

#: The latency each workload's paper table uses (emission default latencies).
WORKLOAD_LATENCIES = {
    "motivational": 3,
    "fig3": 3,
    "elliptic": 11,
    "diffeq": 6,
    "iir4": 6,
    "fir2": 5,
    "adpcm_iaq": 3,
    "adpcm_ttd": 5,
    "adpcm_opfc_sca": 12,
}

ALL_POINTS = [
    (workload, WORKLOAD_LATENCIES[workload], mode)
    for workload in sorted(ALL_WORKLOADS)
    for mode in ("conventional", "fragmented")
]


def _emitted(workload, latency, mode):
    artifact = Pipeline().run(
        FlowConfig(latency=latency, mode=mode, workload=workload),
        use_cache=False,
    )
    emission = emit_design(artifact.schedule, artifact.library, artifact.datapath)
    return artifact, emission


class TestOracleEquivalence:
    @pytest.mark.parametrize("workload,latency,mode", ALL_POINTS)
    def test_every_workload_both_modes(self, workload, latency, mode):
        artifact, emission = _emitted(workload, latency, mode)
        check = verify_emission(
            emission.design, artifact.working_specification, random_count=20
        )
        assert check.equivalent, check.summary()
        assert check.vectors_checked > 20  # corner vectors ride along

    def test_blc_baseline(self):
        artifact, emission = _emitted("motivational", 1, "blc")
        check = verify_emission(
            emission.design, artifact.working_specification, random_count=20
        )
        assert check.equivalent, check.summary()

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5000))
    @example(seed=263)  # the pinned falsifier family of the e2e suite
    def test_generated_specifications(self, seed):
        config = GeneratorConfig(operation_count=7, input_count=3, maximum_width=10)
        spec = random_specification(seed, config)
        library = default_library()
        result = transform(spec, 3, TransformOptions(check_equivalence=False))
        schedule, _budget = run_schedule(
            result.transformed,
            3,
            library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        emission = emit_design(schedule, library)
        check = verify_emission(emission.design, result.transformed, random_count=15)
        assert check.equivalent, check.summary()
        conventional, _ = run_schedule(spec, 3, library, FlowMode.CONVENTIONAL)
        emission = emit_design(conventional, library)
        check = verify_emission(emission.design, spec, random_count=15)
        assert check.equivalent, check.summary()


class TestSimulationDrivers:
    def test_scalar_and_batch_drivers_agree(self):
        artifact, emission = _emitted("adpcm_iaq", 3, "fragmented")
        vectors = stimulus(artifact.working_specification, random_count=8)
        batch = emission.design.simulate_batch(vectors)
        for lane, vector in enumerate(vectors):
            scalar = emission.design.simulate(vector)
            for name, value in scalar.items():
                assert value == batch[name][lane], (name, lane)

    def test_batch_rejects_empty_and_malformed_vectors(self):
        from repro.rtl.design import RtlDesignError

        _artifact, emission = _emitted("motivational", 3, "fragmented")
        with pytest.raises(RtlDesignError):
            emission.design.simulate_batch([])
        with pytest.raises(RtlDesignError):
            emission.design.simulate({"A": 1})  # B, D, F missing
        with pytest.raises(RtlDesignError):
            emission.design.simulate_batch([{"A": 1, "B": 2, "D": 3, "F": 4, "X": 5}])

    def test_signed_output_decoding(self):
        artifact, emission = _emitted("fig3", 3, "fragmented")
        vectors = stimulus(artifact.working_specification, random_count=5)
        raw = emission.design.simulate_batch(vectors)
        for name, lanes in raw.items():
            for value in lanes:
                decoded = emission.design.decode_output(name, value)
                width = len(emission.design.output_ports[name])
                assert -(1 << width) < decoded < (1 << width)


class TestStructure:
    def test_stats_consistent_with_allocation(self):
        artifact, emission = _emitted("motivational", 3, "fragmented")
        stats = emission.stats
        assert stats.fsm_states == 3
        assert stats.gate_count == emission.design.netlist.gate_count()
        assert stats.gate_count == sum(stats.gate_counts.values())
        datapath = artifact.datapath
        assert stats.register_count == datapath.registers.register_count
        assert stats.register_bits == sum(
            register.width for register in datapath.registers.registers
        )
        # Every split adds units beyond the allocation's instance list.
        assert stats.fu_units == len(
            datapath.functional_units.instances
        ) + stats.split_fu_instances
        assert stats.capture_bits > 0  # the output port is captured
        assert stats.control_signals == len(emission.controller.control_signals)

    def test_paper_register_story_motivational(self):
        """The optimized datapath stores 5 one-bit values (Table I), and the
        emitted register file is exactly those allocated bits."""
        _artifact, emission = _emitted("motivational", 3, "fragmented")
        assert emission.stats.register_bits == 5

    def test_controller_synthesis_encoding(self):
        _artifact, emission = _emitted("fir2", 5, "fragmented")
        controller = emission.controller
        assert controller.states == 5
        assert controller.state_bits == 3
        assert controller.encoding == tuple(range(5))
        assert controller.code_of(1) == 0 and controller.code_of(5) == 4
        with pytest.raises(ValueError):
            controller.code_of(6)

    def test_fsm_element_and_streaming_wrap(self):
        """After `latency` cycles the FSM wraps to state 0, so driving the
        same inputs for another pass reproduces the same outputs."""
        artifact, emission = _emitted("motivational", 3, "fragmented")
        design = emission.design
        fsm_elements = design.elements_of("fsm")
        assert len(fsm_elements) == 1
        vector = stimulus(artifact.working_specification, random_count=1)[-1]
        once = design.simulate(vector)
        # Double-latency run: manually iterate two passes via the batch API.
        double = RtlDoublePass(design).run(vector)
        assert once == double

    def test_splitting_keeps_netlist_acyclic(self):
        """fig3's fragmented binding shares units in a cycle-inducing way;
        the emitter must split and still levelise (no combinational loop)."""
        from repro.rtl.simulator import levelised_order

        _artifact, emission = _emitted("fig3", 3, "fragmented")
        assert emission.stats.split_fu_instances > 0
        order, _consumers = levelised_order(emission.design.netlist)
        assert len(order) == emission.design.netlist.gate_count()

    def test_rejects_incomplete_schedule(self):
        from repro.hls.schedule import Schedule, ScheduleError
        from repro.workloads import motivational_example

        spec = motivational_example()
        schedule = Schedule(spec, latency=3)  # nothing assigned
        with pytest.raises((EmissionError, ScheduleError, KeyError)):
            emit_design(schedule, default_library())


class RtlDoublePass:
    """Drives a design for two wrapped FSM passes with constant inputs."""

    def __init__(self, design):
        self.design = design

    def run(self, vector):
        from repro.rtl.simulator import NetlistSimulator

        design = self.design
        simulator = NetlistSimulator(design.netlist)
        assignment = {}
        for name, nets in design.input_ports.items():
            for bit, net in enumerate(nets):
                assignment[net] = (vector[name] >> bit) & 1
        state = {
            index: [(element.init >> bit) & 1 for bit in range(element.width)]
            for index, element in enumerate(design.state_elements)
        }
        result = None
        for _cycle in range(2 * design.latency + 1):
            for index, element in enumerate(design.state_elements):
                for bit, net in enumerate(element.q_nets):
                    assignment[net] = state[index][bit]
            result = simulator.run(assignment)
            for index, element in enumerate(design.state_elements):
                state[index] = [result.values[net] for net in element.d_nets]
        return {
            name: result.value_of_bus(nets)
            for name, nets in design.output_ports.items()
        }
