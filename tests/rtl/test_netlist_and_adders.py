"""Unit tests for the gate-level netlist substrate and adder structures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl import (
    GateKind,
    Netlist,
    NetlistError,
    NetlistSimulator,
    build_adder_chain,
    build_full_adder,
    build_ripple_adder,
    nanosecond_delay_model,
    unit_full_adder_delay_model,
)


class TestNetlist:
    def test_gate_arity_checked(self):
        netlist = Netlist("arity")
        a = netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate(GateKind.AND, (a,))
        with pytest.raises(NetlistError):
            netlist.add_gate(GateKind.NOT, (a, a))

    def test_single_driver_enforced(self):
        netlist = Netlist("driver")
        a = netlist.add_input("a")
        out = netlist.not_gate(a)
        with pytest.raises(NetlistError):
            netlist.add_gate(GateKind.BUF, (a,), output=out)

    def test_counts_and_outputs(self):
        netlist = Netlist("counts")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.mark_output(netlist.and_gate(a, b))
        netlist.mark_output(netlist.xor_gate(a, b))
        assert netlist.gate_count() == 2
        assert netlist.gate_count(GateKind.AND) == 1
        assert len(netlist.outputs) == 2

    def test_constant_bus(self):
        netlist = Netlist("const")
        nets = netlist.constant_bus(0b1010, 4)
        simulator = NetlistSimulator(netlist)
        result = simulator.run({})
        assert result.value_of_bus(nets) == 0b1010

    def test_undriven_net_detection(self):
        netlist = Netlist("undriven")
        floating = netlist.new_net("floating")
        a = netlist.add_input("a")
        netlist.and_gate(a, floating)
        assert floating in netlist.undriven_nets()


class TestGateEvaluation:
    @pytest.mark.parametrize(
        "kind,a,b,expected",
        [
            (GateKind.AND, 1, 1, 1),
            (GateKind.AND, 1, 0, 0),
            (GateKind.OR, 0, 0, 0),
            (GateKind.OR, 1, 0, 1),
            (GateKind.XOR, 1, 1, 0),
            (GateKind.XOR, 1, 0, 1),
        ],
    )
    def test_binary_gates(self, kind, a, b, expected):
        netlist = Netlist("gate")
        in_a = netlist.add_input("a")
        in_b = netlist.add_input("b")
        out = netlist.add_gate(kind, (in_a, in_b))
        netlist.mark_output(out)
        result = NetlistSimulator(netlist).run({in_a: a, in_b: b})
        assert result.values[out] == expected

    def test_not_gate(self):
        netlist = Netlist("inv")
        a = netlist.add_input("a")
        out = netlist.not_gate(a)
        result = NetlistSimulator(netlist).run({a: 0})
        assert result.values[out] == 1

    def test_missing_input_value_rejected(self):
        netlist = Netlist("missing")
        a = netlist.add_input("a")
        netlist.mark_output(netlist.not_gate(a))
        with pytest.raises(NetlistError):
            NetlistSimulator(netlist).run({})


class TestFullAdder:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("carry", [0, 1])
    def test_truth_table(self, a, b, carry):
        netlist = Netlist("fa")
        in_a = netlist.add_input("a")
        in_b = netlist.add_input("b")
        in_c = netlist.add_input("c")
        sum_net, carry_net = build_full_adder(netlist, in_a, in_b, in_c)
        result = NetlistSimulator(netlist).run({in_a: a, in_b: b, in_c: carry})
        total = a + b + carry
        assert result.values[sum_net] == total & 1
        assert result.values[carry_net] == total >> 1

    def test_full_adder_gate_count(self):
        netlist = Netlist("fa_count")
        nets = [netlist.add_input(name) for name in "abc"]
        build_full_adder(netlist, *nets)
        assert netlist.gate_count(GateKind.XOR) == 2
        assert netlist.gate_count(GateKind.AND) == 2
        assert netlist.gate_count(GateKind.OR) == 1


class TestRippleAdder:
    def test_mismatched_widths_rejected(self):
        netlist = Netlist("bad")
        a = netlist.add_input_bus("a", 4)
        b = netlist.add_input_bus("b", 3)
        with pytest.raises(ValueError):
            build_ripple_adder(netlist, a, b)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_addition_matches_python(self, a, b, carry):
        netlist = Netlist("ripple")
        a_bus = netlist.add_input_bus("a", 8)
        b_bus = netlist.add_input_bus("b", 8)
        carry_net = netlist.add_input("cin")
        adder = build_ripple_adder(netlist, a_bus, b_bus, carry_net)
        simulator = NetlistSimulator(netlist)
        result = simulator.run_bus({"a": a, "b": b, "cin": carry})
        value = result.value_of_bus(list(adder.sum_bits) + [adder.carry_out])
        assert value == a + b + carry

    def test_sixteen_bit_adder_critical_path_is_16_units(self):
        netlist = Netlist("fa16")
        a_bus = netlist.add_input_bus("a", 16)
        b_bus = netlist.add_input_bus("b", 16)
        adder = build_ripple_adder(netlist, a_bus, b_bus)
        simulator = NetlistSimulator(netlist, unit_full_adder_delay_model())
        result = simulator.run_bus({"a": 0xFFFF, "b": 1})
        critical = result.critical_arrival(list(adder.sum_bits) + [adder.carry_out])
        assert critical == pytest.approx(16, abs=0.5)

    def test_nanosecond_model_close_to_techlib(self):
        from repro.techlib import adder_delay

        netlist = Netlist("ns16")
        a_bus = netlist.add_input_bus("a", 16)
        b_bus = netlist.add_input_bus("b", 16)
        adder = build_ripple_adder(netlist, a_bus, b_bus)
        simulator = NetlistSimulator(netlist, nanosecond_delay_model())
        result = simulator.run_bus({"a": 0xFFFF, "b": 1})
        critical = result.critical_arrival(list(adder.sum_bits))
        # The gate-level carry chain is XOR + 15 x (AND+OR) + XOR: close to,
        # and never slower than, the abstract 16-stage full-adder delay.
        assert critical <= adder_delay(16)
        assert critical >= 0.6 * adder_delay(16)


class TestAdderChain:
    def test_chain_value(self):
        netlist = build_adder_chain(8, 3)
        simulator = NetlistSimulator(netlist)
        result = simulator.run_bus({"IN0": 10, "IN1": 20, "IN2": 30, "IN3": 40})
        assert result.value_of_bus(list(netlist.outputs)) == 100

    def test_chain_critical_path_matches_paper_metric(self):
        # Three chained 16-bit additions: 18 chained full-adder stages (Fig 1 e).
        netlist = build_adder_chain(16, 3)
        simulator = NetlistSimulator(netlist, unit_full_adder_delay_model())
        inputs = {"IN0": 0xFFFF, "IN1": 1, "IN2": 0xFFFF, "IN3": 0xFFFF}
        result = simulator.run_bus(inputs)
        critical = result.critical_arrival(list(netlist.outputs))
        assert critical <= 18 + 0.5
        assert critical >= 17

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_adder_chain(0, 3)
        with pytest.raises(ValueError):
            build_adder_chain(8, 0)
