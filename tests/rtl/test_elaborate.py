"""Tests for elaboration of specifications into gate-level netlists."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TransformOptions, transform
from repro.core.kernel import extract_kernel
from repro.rtl import (
    ElaborationError,
    NetlistSimulator,
    elaborate,
    unit_full_adder_delay_model,
)
from repro.simulation import simulate
from repro.workloads import motivational_example


def _netlist_outputs(design, simulator_result):
    values = {}
    for port in design.specification.outputs():
        nets = design.output_nets(port)
        values[port.name] = simulator_result.value_of_bus(nets)
    return values


class TestElaboration:
    def test_motivational_example_elaborates(self):
        design = elaborate(motivational_example())
        assert design.netlist.gate_count() > 0
        assert len(design.netlist.outputs) == 16

    def test_unsupported_operation_rejected(self):
        from repro.ir.builder import SpecBuilder

        builder = SpecBuilder("mul_spec")
        a = builder.input("a", 4)
        out = builder.output("o", 8)
        builder.mul(a, a, dest=out)
        with pytest.raises(ElaborationError):
            elaborate(builder.build())

    def test_kernel_extracted_specifications_elaborate(self):
        # After kernel extraction every additive operation is a plain addition,
        # so any specification becomes elaborable.
        from repro.ir.builder import SpecBuilder

        builder = SpecBuilder("rich")
        a = builder.input("a", 6)
        b = builder.input("b", 6)
        out = builder.output("o", 6)
        difference = builder.sub(a, b, name="difference")
        builder.max(difference, b, dest=out, name="biggest")
        spec = builder.build()
        kernel = extract_kernel(spec).specification
        design = elaborate(kernel)
        assert design.netlist.gate_count() > 0

    @given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1),
           d=st.integers(0, 2**16 - 1), f=st.integers(0, 2**16 - 1))
    @settings(max_examples=20, deadline=None)
    def test_netlist_matches_interpreter(self, a, b, d, f):
        spec = motivational_example()
        design = elaborate(spec)
        simulator = NetlistSimulator(design.netlist)
        inputs = {"A": a, "B": b, "D": d, "F": f}
        gate_level = _netlist_outputs(design, simulator.run_bus(inputs))
        behavioural = simulate(spec, inputs)
        assert gate_level["G"] == behavioural.final_state["G"]

    def test_transformed_netlist_matches_original(self):
        spec = motivational_example()
        result = transform(spec, latency=3, options=TransformOptions(check_equivalence=False))
        design = elaborate(result.transformed)
        simulator = NetlistSimulator(design.netlist)
        inputs = {"A": 0xABCD, "B": 0x1234, "D": 0x0FF0, "F": 0xFFFF}
        gate_level = _netlist_outputs(design, simulator.run_bus(inputs))
        behavioural = simulate(spec, inputs)
        assert gate_level["G"] == behavioural.final_state["G"]

    def test_critical_arrival_matches_bit_graph_for_full_chain(self):
        from repro.ir.dfg import BitDependencyGraph

        spec = motivational_example()
        design = elaborate(spec)
        simulator = NetlistSimulator(design.netlist, unit_full_adder_delay_model())
        result = simulator.run_bus({"A": 0xFFFF, "B": 1, "D": 0xFFFF, "F": 0xFFFF})
        critical = result.critical_arrival(list(design.netlist.outputs))
        expected = BitDependencyGraph(spec).critical_depth()
        assert critical == pytest.approx(expected, abs=1.0)

    def test_transformed_netlist_is_not_deeper_than_original(self):
        spec = motivational_example()
        result = transform(spec, latency=3, options=TransformOptions(check_equivalence=False))
        original = elaborate(spec)
        transformed = elaborate(result.transformed)
        model = unit_full_adder_delay_model()
        inputs = {"A": 0xFFFF, "B": 1, "D": 0xFFFF, "F": 0xFFFF}
        original_depth = NetlistSimulator(original.netlist, model).run_bus(inputs).critical_arrival()
        transformed_depth = NetlistSimulator(transformed.netlist, model).run_bus(inputs).critical_arrival()
        # The transformation re-expresses the same arithmetic: the fully
        # combinational depth stays essentially the same (it is the schedule
        # that divides it over cycles).
        assert transformed_depth == pytest.approx(original_depth, abs=1.0)
