"""Lane-packed batch netlist evaluation and the shared levelisation cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TransformOptions, transform
from repro.rtl import (
    GateKind,
    Netlist,
    NetlistError,
    NetlistSimulator,
    build_ripple_adder,
    elaborate,
    levelised_order,
    nanosecond_delay_model,
)
from repro.simulation import Interpreter, stimulus
from repro.workloads import ALL_WORKLOADS


def _adder_netlist(width):
    netlist = Netlist("adder")
    a_bits = netlist.add_input_bus("a", width)
    b_bits = netlist.add_input_bus("b", width)
    adder = build_ripple_adder(netlist, a_bits, b_bits)
    netlist.mark_output_bus(adder.sum_bits)
    return netlist, adder


class TestBatchEvaluation:
    @settings(max_examples=20, deadline=None)
    @given(
        a=st.lists(st.integers(0, 255), min_size=1, max_size=40),
        b=st.lists(st.integers(0, 255), min_size=1, max_size=40),
    )
    def test_batch_adder_matches_scalar_runs(self, a, b):
        lanes = min(len(a), len(b))
        a, b = a[:lanes], b[:lanes]
        netlist, adder = _adder_netlist(8)
        simulator = NetlistSimulator(netlist)
        batch = simulator.run_bus_batch({"a": a, "b": b})
        sums = batch.value_of_bus(adder.sum_bits)
        for lane in range(lanes):
            scalar = simulator.run_bus({"a": a[lane], "b": b[lane]})
            assert sums[lane] == scalar.value_of_bus(adder.sum_bits)
            assert sums[lane] == (a[lane] + b[lane]) & 0xFF

    def test_batch_arrivals_match_scalar(self):
        netlist, adder = _adder_netlist(4)
        simulator = NetlistSimulator(netlist, nanosecond_delay_model())
        scalar = simulator.run_bus({"a": 3, "b": 5})
        batch = simulator.run_bus_batch({"a": [3, 9], "b": [5, 1]})
        assert batch.arrivals == scalar.arrivals

    def test_batch_lane_values_of_single_net(self):
        netlist = Netlist("not")
        a = netlist.add_input("a")
        out = netlist.mark_output(netlist.not_gate(a))
        result = NetlistSimulator(netlist).run_batch({a: 0b0101}, lanes=4)
        assert result.lane_values(out) == [0, 1, 0, 1]

    def test_batch_rejects_missing_input(self):
        netlist, _adder = _adder_netlist(2)
        with pytest.raises(NetlistError):
            NetlistSimulator(netlist).run_batch({}, lanes=2)

    def test_batch_rejects_mismatched_bus_lanes(self):
        netlist, _adder = _adder_netlist(2)
        with pytest.raises(NetlistError):
            NetlistSimulator(netlist).run_bus_batch({"a": [1, 2], "b": [3]})

    def test_batch_rejects_zero_lanes(self):
        netlist, _adder = _adder_netlist(2)
        with pytest.raises(NetlistError):
            NetlistSimulator(netlist).run_batch({}, lanes=0)

    def test_elaborated_design_batch_matches_interpreter(self):
        spec = ALL_WORKLOADS["motivational"]()
        transformed = transform(
            spec, 3, TransformOptions(check_equivalence=False)
        ).transformed
        design = elaborate(transformed)
        simulator = NetlistSimulator(design.netlist)
        vectors = stimulus(transformed, random_count=10, seed=5)
        bus_values = {
            port.name: [
                port.type.to_unsigned_bits(vector[port.name]) for vector in vectors
            ]
            for port in transformed.inputs()
        }
        batch = simulator.run_bus_batch(bus_values)
        interpreter = Interpreter(transformed)
        for port in transformed.outputs():
            nets = design.output_nets(port)
            lane_values = batch.value_of_bus(nets)
            for lane, vector in enumerate(vectors):
                expected = interpreter.run(vector).final_state[port.name]
                assert lane_values[lane] == expected


class TestLevelisationCache:
    def test_shared_across_simulators(self):
        netlist, _adder = _adder_netlist(6)
        first = NetlistSimulator(netlist)
        second = NetlistSimulator(netlist, nanosecond_delay_model())
        assert first._order is second._order

    def test_invalidated_by_new_gates(self):
        netlist, _adder = _adder_netlist(2)
        order, _consumers = levelised_order(netlist)
        extra = netlist.add_input("extra")
        netlist.mark_output(netlist.not_gate(extra))
        new_order, _ = levelised_order(netlist)
        assert new_order is not order
        assert len(new_order) == len(order) + 1

    def test_cycle_detection_still_raises(self):
        netlist = Netlist("cycle")
        a = netlist.new_net("a")
        b = netlist.add_gate(GateKind.NOT, (a,))
        netlist.add_gate(GateKind.NOT, (b,), output=a)
        with pytest.raises(NetlistError):
            levelised_order(netlist)
