"""Regression: the emitter must not leave unreachable gates in the netlist.

The netlist checker's NET005 sweep caught the emitter shipping speculative
helper gates (eagerly folded constants, unused decode inverters) that no
output or state element could ever observe -- about 17 dead gates per
emitted design.  ``Netlist.prune_dead_gates`` now drops them before the
design is finished; these tests pin both the primitive and the emitter-level
guarantee.
"""

from repro.check import check_design
from repro.core import TransformOptions, transform
from repro.hls.flow import FlowMode, run_schedule
from repro.rtl.emit import emit_design
from repro.rtl.netlist import GateKind, Netlist
from repro.techlib.library import default_library
from repro.workloads import ALL_WORKLOADS


class TestPrunePrimitive:
    def test_prunes_unreached_cone(self):
        netlist = Netlist("prune")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        kept = netlist.and_gate(a, b)
        netlist.mark_output(kept)
        dead_inner = netlist.xor_gate(a, b)
        netlist.not_gate(dead_inner)  # two-gate dead cone
        assert netlist.gate_count() == 3
        assert netlist.prune_dead_gates() == 2
        assert netlist.gate_count() == 1
        assert netlist.driver_of(kept) is not None
        # Nets of the dead cone are gone; inputs and outputs survive.
        names = {net.name for net in netlist.nets}
        assert {a.name, b.name, kept.name} <= names
        assert len(netlist.gates) == 1

    def test_noop_on_fully_live_netlist(self):
        netlist = Netlist("live")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.mark_output(netlist.or_gate(a, b))
        assert netlist.prune_dead_gates() == 0
        assert netlist.gate_count(GateKind.OR) == 1

    def test_idempotent(self):
        netlist = Netlist("twice")
        a = netlist.add_input("a")
        netlist.not_gate(a)  # dead
        netlist.mark_output(netlist.buf_gate(a))
        assert netlist.prune_dead_gates() == 1
        assert netlist.prune_dead_gates() == 0


class TestEmitterHasNoDeadGates:
    def test_emitted_design_is_fully_reachable(self):
        spec = ALL_WORKLOADS["motivational"]()
        library = default_library()
        result = transform(spec, 3, TransformOptions(check_equivalence=False))
        schedule, _budget = run_schedule(
            result.transformed,
            3,
            library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        design = emit_design(schedule, library).design
        # Every gate reaches an output or a state element: zero NET005.
        assert [f for f in check_design(design) if f.code == "NET005"] == []
        # And pruning again finds nothing left to remove.
        assert design.netlist.prune_dead_gates() == 0
