"""Tests for stimulus generation and the equivalence checker."""

import pytest

from repro.ir.builder import SpecBuilder
from repro.simulation import (
    EquivalenceError,
    assert_equivalent,
    check_equivalence,
    corner_vectors,
    random_vectors,
    simulate,
    stimulus,
)
from repro.simulation.interpreter import SimulationError
from repro.workloads import motivational_example


def _spec_plus(offset: int, name: str = "plus"):
    """out = a + b + offset (used to manufacture near-miss specifications)."""
    builder = SpecBuilder(f"{name}_{offset}")
    a = builder.input("a", 8)
    b = builder.input("b", 8)
    out = builder.output("out", 8)
    partial = builder.add(a, b, name="p")
    builder.add(partial, builder.constant(offset, 8) if offset else 0, dest=out, name="q")
    return builder.build()


class TestVectors:
    def test_corner_vectors_cover_extremes(self):
        spec = motivational_example()
        vectors = corner_vectors(spec)
        flattened = {value for vector in vectors for value in vector.values()}
        assert 0 in flattened
        assert (1 << 16) - 1 in flattened

    def test_corner_vectors_fit_port_types(self):
        spec = motivational_example()
        for vector in corner_vectors(spec):
            for port in spec.inputs():
                assert port.type.contains(vector[port.name])

    def test_corner_vectors_respect_limit(self):
        assert len(corner_vectors(motivational_example(), limit=5)) <= 5

    def test_corner_vectors_signed_ports(self):
        builder = SpecBuilder("signed_ports")
        a = builder.input("a", 8, signed=True)
        out = builder.output("o", 8)
        builder.add(a, a, dest=out)
        vectors = corner_vectors(builder.build())
        values = {vector["a"] for vector in vectors}
        assert -128 in values and 127 in values

    def test_random_vectors_reproducible(self):
        spec = motivational_example()
        assert random_vectors(spec, 10, seed=3) == random_vectors(spec, 10, seed=3)
        assert random_vectors(spec, 10, seed=3) != random_vectors(spec, 10, seed=4)

    def test_random_vectors_simulatable(self):
        spec = motivational_example()
        for vector in random_vectors(spec, 20):
            simulate(spec, vector)

    def test_stimulus_combines_corner_and_random(self):
        spec = motivational_example()
        combined = stimulus(spec, random_count=7, corner_limit=4)
        assert len(combined) == 11

    def test_no_input_specification(self):
        builder = SpecBuilder("noinputs")
        out = builder.output("o", 4)
        builder.add(builder.constant(1, 4), builder.constant(2, 4), dest=out)
        assert corner_vectors(builder.build()) == [{}]


class TestEquivalence:
    def test_identical_specifications_are_equivalent(self):
        report = check_equivalence(_spec_plus(0, "x"), _spec_plus(0, "y"), random_count=20)
        assert report.equivalent
        assert report.vectors_checked > 0
        assert "EQUIVALENT" in report.summary()

    def test_different_specifications_are_flagged(self):
        report = check_equivalence(_spec_plus(0), _spec_plus(1), random_count=20)
        assert not report.equivalent
        assert report.mismatches
        mismatch = report.mismatches[0]
        assert mismatch.output == "out"
        assert "NOT EQUIVALENT" in report.summary()

    def test_assert_equivalent_raises(self):
        with pytest.raises(EquivalenceError):
            assert_equivalent(_spec_plus(0), _spec_plus(3), random_count=10)

    def test_mismatch_stops_early(self):
        report = check_equivalence(_spec_plus(0), _spec_plus(1), random_count=200, stop_at=5)
        assert len(report.mismatches) >= 5
        assert report.vectors_checked < 200 + 64

    def test_interface_mismatch_rejected(self):
        builder = SpecBuilder("narrow")
        a = builder.input("a", 4)
        b = builder.input("b", 4)
        out = builder.output("out", 4)
        builder.add(a, b, dest=out)
        with pytest.raises(SimulationError):
            check_equivalence(_spec_plus(0), builder.build())

    def test_explicit_vectors_used(self):
        vectors = [{"a": 1, "b": 2}, {"a": 200, "b": 100}]
        report = check_equivalence(_spec_plus(0, "u"), _spec_plus(0, "v"), vectors=vectors)
        assert report.vectors_checked == 2

    def test_outputs_compared_as_raw_bits(self):
        # One spec declares the output signed, the other unsigned: the bit
        # patterns are identical so the checker must not flag a mismatch.
        def build(signed):
            builder = SpecBuilder(f"sign_{signed}")
            a = builder.input("a", 8, signed=True)
            out = builder.output("out", 8, signed=signed)
            builder.add(a, a, dest=out)
            return builder.build()

        report = check_equivalence(build(True), build(False), random_count=15)
        assert report.equivalent
