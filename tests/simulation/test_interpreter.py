"""Unit tests for the bit-accurate behavioural interpreter."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.builder import SpecBuilder
from repro.simulation import Interpreter, SimulationError, simulate
from repro.workloads import motivational_example


def _binary_spec(helper_name, a_width=8, b_width=8, signed=False, **kwargs):
    builder = SpecBuilder(f"{helper_name}_spec")
    a = builder.input("a", a_width, signed)
    b = builder.input("b", b_width, signed)
    helper = getattr(builder, helper_name)
    result = helper(a, b, name="op", **kwargs)
    out = builder.output("o", result.width, result.signed)
    builder.move(result, dest=out, name="expose")
    return builder.build()


class TestArithmetic:
    def test_add(self):
        spec = _binary_spec("add")
        assert simulate(spec, {"a": 100, "b": 55}).output("o") == 155

    def test_add_wraps(self):
        spec = _binary_spec("add")
        assert simulate(spec, {"a": 200, "b": 100}).output("o") == (300 & 0xFF)

    def test_sub(self):
        spec = _binary_spec("sub")
        assert simulate(spec, {"a": 40, "b": 15}).output("o") == 25

    def test_sub_wraps_negative(self):
        spec = _binary_spec("sub")
        assert simulate(spec, {"a": 5, "b": 10}).output("o") == (5 - 10) & 0xFF

    def test_mul_unsigned(self):
        spec = _binary_spec("mul")
        assert simulate(spec, {"a": 12, "b": 11}).output("o") == 132

    def test_mul_signed(self):
        spec = _binary_spec("mul", signed=True)
        result = simulate(spec, {"a": -3, "b": 5})
        assert result.final_state["o"] == ((-15) & 0xFFFF)

    def test_max_min(self):
        assert simulate(_binary_spec("max"), {"a": 9, "b": 200}).output("o") == 200
        assert simulate(_binary_spec("min"), {"a": 9, "b": 200}).output("o") == 9

    def test_max_signed_interpretation(self):
        spec = _binary_spec("max", signed=True)
        assert simulate(spec, {"a": -5, "b": 2}).output("o") == 2

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add_matches_python(self, a, b):
        spec = _binary_spec("add")
        assert simulate(spec, {"a": a, "b": b}).output("o") == (a + b) & 0xFF

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_signed_mul_matches_python(self, a, b):
        spec = _binary_spec("mul", signed=True)
        assert simulate(spec, {"a": a, "b": b}).final_state["o"] == (a * b) & 0xFFFF


class TestComparisons:
    @pytest.mark.parametrize(
        "helper,a,b,expected",
        [
            ("lt", 3, 5, 1),
            ("lt", 5, 3, 0),
            ("le", 5, 5, 1),
            ("gt", 9, 2, 1),
            ("ge", 2, 9, 0),
            ("eq", 7, 7, 1),
            ("ne", 7, 7, 0),
        ],
    )
    def test_unsigned_comparisons(self, helper, a, b, expected):
        spec = _binary_spec(helper)
        assert simulate(spec, {"a": a, "b": b}).output("o") == expected

    def test_signed_comparison(self):
        spec = _binary_spec("lt", signed=True)
        assert simulate(spec, {"a": -4, "b": 3}).output("o") == 1
        assert simulate(spec, {"a": 3, "b": -4}).output("o") == 0


class TestLogicAndGlue:
    def test_bitwise(self):
        assert simulate(_binary_spec("bit_and"), {"a": 0xF0, "b": 0xCC}).output("o") == 0xC0
        assert simulate(_binary_spec("bit_or"), {"a": 0xF0, "b": 0x0C}).output("o") == 0xFC
        assert simulate(_binary_spec("bit_xor"), {"a": 0xFF, "b": 0x0F}).output("o") == 0xF0

    def test_not(self):
        builder = SpecBuilder("not_spec")
        a = builder.input("a", 8)
        out = builder.output("o", 8)
        inverted = builder.bit_not(a, name="inv")
        builder.move(inverted, dest=out)
        assert simulate(builder.build(), {"a": 0xA5}).output("o") == 0x5A

    def test_shifts(self):
        builder = SpecBuilder("shift_spec")
        a = builder.input("a", 8)
        left = builder.output("left", 11)
        right = builder.output("right", 6)
        builder.move(builder.shl(a, 3), dest=left)
        builder.move(builder.shr(a, 2), dest=right)
        result = simulate(builder.build(), {"a": 0b10110101})
        assert result.output("left") == 0b10110101 << 3
        assert result.output("right") == 0b10110101 >> 2

    def test_select(self):
        builder = SpecBuilder("select_spec")
        cond = builder.input("cond", 1)
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        out = builder.output("o", 8)
        builder.select(cond, a, b, dest=out)
        spec = builder.build()
        assert simulate(spec, {"cond": 1, "a": 11, "b": 22}).output("o") == 11
        assert simulate(spec, {"cond": 0, "a": 11, "b": 22}).output("o") == 22

    def test_neg_and_carry_in(self):
        builder = SpecBuilder("neg_spec")
        a = builder.input("a", 8)
        out = builder.output("o", 8)
        builder.neg(a, dest=out)
        assert simulate(builder.build(), {"a": 5}).output("o") == (-5) & 0xFF

    def test_slice_reads_raw_bits(self):
        builder = SpecBuilder("slice_spec")
        a = builder.input("a", 8, signed=True)
        out = builder.output("o", 4)
        builder.add(a.slice(7, 4), 0, dest=out, width=4, name="hi")
        # Slicing a signed variable yields raw bits (no sign interpretation).
        assert simulate(builder.build(), {"a": -1}).output("o") == 0xF


class TestRunMechanics:
    def test_operation_results_recorded(self):
        spec = motivational_example()
        result = simulate(spec, {"A": 1, "B": 2, "D": 3, "F": 4})
        assert result.operation_results["add_C"] == 3
        assert result.operation_results["add_E"] == 6
        assert result.output("G") == 10

    def test_missing_input_rejected(self):
        spec = motivational_example()
        with pytest.raises(SimulationError):
            simulate(spec, {"A": 1, "B": 2, "D": 3})

    def test_unknown_input_rejected(self):
        spec = motivational_example()
        with pytest.raises(SimulationError):
            simulate(spec, {"A": 1, "B": 2, "D": 3, "F": 4, "Z": 9})

    def test_out_of_range_input_rejected(self):
        spec = motivational_example()
        with pytest.raises(SimulationError):
            simulate(spec, {"A": 1 << 16, "B": 0, "D": 0, "F": 0})

    def test_interpreter_reusable(self):
        interpreter = Interpreter(motivational_example())
        first = interpreter.run({"A": 1, "B": 1, "D": 1, "F": 1})
        second = interpreter.run({"A": 2, "B": 2, "D": 2, "F": 2})
        assert first.output("G") == 4
        assert second.output("G") == 8
