"""The lane-packed batch engine is bit-identical to the scalar interpreter."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.core import TransformOptions, transform
from repro.ir.builder import SpecBuilder
from repro.ir.operations import OpKind
from repro.simulation import (
    BatchInterpreter,
    Interpreter,
    SimulationError,
    check_equivalence,
    pack_lanes,
    simulate_batch,
    stimulus,
    unpack_planes,
)
from repro.simulation.equivalence import BATCH_CHUNK_LANES
from repro.workloads import ALL_WORKLOADS, GeneratorConfig, random_specification


def assert_batch_matches_scalar(specification, vectors):
    """Every lane of the batch result equals one scalar interpreter run."""
    scalar = Interpreter(specification)
    batch = BatchInterpreter(specification).run_batch(vectors)
    unpacked = {
        name: unpack_planes(planes, len(vectors))
        for name, planes in batch.final_planes.items()
    }
    for lane, vector in enumerate(vectors):
        run = scalar.run(vector)
        for name, bits in run.final_state.items():
            assert unpacked[name][lane] == bits, (
                f"{specification.name}: variable {name} lane {lane}"
            )
        for name, value in run.outputs.items():
            assert batch.output_lanes(name)[lane] == value, (
                f"{specification.name}: output {name} lane {lane}"
            )


class TestPlanePacking:
    def test_pack_unpack_round_trip(self):
        values = [0, 1, 5, 7, 2]
        planes = pack_lanes(values, 3)
        assert unpack_planes(planes, len(values)) == values

    def test_pack_truncates_to_width(self):
        assert unpack_planes(pack_lanes([0b1101], 2), 1) == [0b01]


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_matches_scalar_on_workload(self, name):
        spec = ALL_WORKLOADS[name]()
        vectors = stimulus(spec, random_count=25, seed=11)
        assert_batch_matches_scalar(spec, vectors)

    @pytest.mark.parametrize("name", ["motivational", "fig3", "adpcm_iaq"])
    def test_matches_scalar_on_transformed_workload(self, name):
        spec = ALL_WORKLOADS[name]()
        result = transform(spec, 3, TransformOptions(check_equivalence=False))
        vectors = stimulus(spec, random_count=25, seed=11)
        assert_batch_matches_scalar(result.transformed, vectors)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000))
    @example(seed=263)  # the pinned falsifier family of the e2e suite
    def test_matches_scalar_on_generated_specifications(self, seed):
        config = GeneratorConfig(
            operation_count=8, input_count=3, maximum_width=10, mul_weight=0.15
        )
        spec = random_specification(seed, config)
        vectors = stimulus(spec, random_count=12, seed=seed)
        assert_batch_matches_scalar(spec, vectors)

    def test_single_vector_batch(self):
        spec = ALL_WORKLOADS["motivational"]()
        vectors = stimulus(spec, random_count=1, seed=3)[:1]
        assert_batch_matches_scalar(spec, vectors)


class TestValidation:
    def test_rejects_empty_vector_list(self):
        spec = ALL_WORKLOADS["motivational"]()
        with pytest.raises(SimulationError):
            BatchInterpreter(spec).run_batch([])

    def test_rejects_unknown_input_with_lane_index(self):
        spec = ALL_WORKLOADS["motivational"]()
        good = stimulus(spec, random_count=1, seed=3)[0]
        bad = dict(good)
        bad["no_such_port"] = 1
        with pytest.raises(SimulationError, match="vector 1"):
            BatchInterpreter(spec).run_batch([good, bad])

    def test_rejects_out_of_range_value(self):
        spec = ALL_WORKLOADS["motivational"]()
        good = stimulus(spec, random_count=1, seed=3)[0]
        bad = dict(good)
        bad[next(iter(bad))] = 1 << 40
        with pytest.raises(SimulationError):
            simulate_batch(spec, [bad])


def _pair_with_wrong_candidate():
    """Two same-interface specs differing on exactly one output bit pattern."""
    reference = SpecBuilder("ref")
    a = reference.input("a", 4)
    out = reference.output("y", 4)
    reference.binary(OpKind.ADD, a, a, dest=out, name="sum")
    wrong = SpecBuilder("cand")
    a2 = wrong.input("a", 4)
    out2 = wrong.output("y", 4)
    wrong.binary(OpKind.SUB, a2, a2, dest=out2, name="sum")  # y = 0, not 2a
    return reference.build(), wrong.build()


class TestBatchEquivalenceEngine:
    def test_reports_match_scalar_engine_on_equivalent_pair(self):
        spec = ALL_WORKLOADS["fig3"]()
        result = transform(spec, 3, TransformOptions(check_equivalence=False))
        batch = check_equivalence(spec, result.transformed, random_count=40)
        scalar = check_equivalence(
            spec, result.transformed, random_count=40, engine="scalar"
        )
        assert batch.equivalent and scalar.equivalent
        assert batch.vectors_checked == scalar.vectors_checked

    def test_mismatch_reports_identical_to_scalar_engine(self):
        reference, candidate = _pair_with_wrong_candidate()
        batch = check_equivalence(reference, candidate, random_count=30, stop_at=5)
        scalar = check_equivalence(
            reference, candidate, random_count=30, stop_at=5, engine="scalar"
        )
        assert not batch.equivalent
        assert batch.vectors_checked == scalar.vectors_checked
        assert [
            (m.inputs, m.output, m.reference_value, m.candidate_value)
            for m in batch.mismatches
        ] == [
            (m.inputs, m.output, m.reference_value, m.candidate_value)
            for m in scalar.mismatches
        ]

    def test_chunked_run_spans_multiple_chunks(self):
        spec = ALL_WORKLOADS["motivational"]()
        result = transform(spec, 3, TransformOptions(check_equivalence=False))
        count = BATCH_CHUNK_LANES + 40
        report = check_equivalence(spec, result.transformed, random_count=count)
        assert report.equivalent
        assert report.vectors_checked > BATCH_CHUNK_LANES

    def test_rejects_unknown_engine(self):
        spec = ALL_WORKLOADS["motivational"]()
        with pytest.raises(ValueError):
            check_equivalence(spec, spec, engine="quantum")
