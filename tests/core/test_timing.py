"""Unit tests for phase 2 -- critical path and clock cycle estimation."""

import math

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.core.kernel import extract_kernel
from repro.core.timing import (
    CycleEstimate,
    PathLimitWarning,
    TimingError,
    critical_path_bits,
    critical_path_by_walk,
    critical_path_dag,
    estimate_cycle_budget,
    operation_execution_bits,
    operation_mobility_cycles,
    path_execution_time,
)
from repro.ir.builder import SpecBuilder
from repro.ir.dfg import DataFlowGraph
from repro.workloads import (
    ALL_WORKLOADS,
    GeneratorConfig,
    addition_chain,
    fig3_example,
    motivational_example,
    random_specification,
)
from repro.workloads.fig3 import FIG3_CRITICAL_PATH_BITS, FIG3_CYCLE_BUDGET, FIG3_LATENCY


class TestOperationExecutionBits:
    def test_addition_costs_its_operand_width(self):
        spec = motivational_example()
        assert operation_execution_bits(spec.operation_named("add_C")) == 16

    def test_glue_costs_nothing(self):
        builder = SpecBuilder("glue")
        a = builder.input("a", 8)
        out = builder.output("o", 8)
        moved = builder.bit_and(a, a, name="and_op")
        builder.move(moved, dest=out, name="move_op")
        spec = builder.build()
        assert operation_execution_bits(spec.operation_named("and_op")) == 0
        assert operation_execution_bits(spec.operation_named("move_op")) == 0

    def test_multiplication_costs_array_depth(self):
        builder = SpecBuilder("mul")
        a = builder.input("a", 8)
        b = builder.input("b", 6)
        out = builder.output("o", 14)
        builder.mul(a, b, dest=out, name="mul_op")
        assert operation_execution_bits(builder.build().operation_named("mul_op")) == 13


class TestCriticalPath:
    def test_motivational_example_is_18_chained_bits(self):
        # Fig. 1 e: three chained 16-bit additions = 18 chained 1-bit adds.
        assert critical_path_bits(motivational_example()) == 18

    def test_fig3_example_is_9_chained_bits(self):
        assert critical_path_bits(fig3_example()) == FIG3_CRITICAL_PATH_BITS

    def test_path_walk_agrees_on_motivational_example(self):
        assert critical_path_by_walk(motivational_example()) == 18

    def test_path_walk_agrees_on_fig3(self):
        assert critical_path_by_walk(fig3_example()) == FIG3_CRITICAL_PATH_BITS

    def test_path_execution_time_single_operation(self):
        spec = motivational_example()
        graph = DataFlowGraph(spec)
        path = [spec.operation_named("add_C")]
        assert path_execution_time(path, graph) == 16

    def test_path_execution_time_full_chain(self):
        spec = motivational_example()
        graph = DataFlowGraph(spec)
        path = graph.longest_path_operations()
        assert path_execution_time(path, graph) == 18

    def test_truncated_lsbs_add_to_path_time(self):
        # A wide addition feeding only its high bits to a successor forces the
        # successor to wait for the truncated low bits as well.
        builder = SpecBuilder("trunc")
        a = builder.input("a", 16)
        b = builder.input("b", 16)
        c = builder.input("c", 4)
        out = builder.output("o", 4)
        wide = builder.add(a, b, name="wide")
        builder.add(wide.slice(15, 12), c, dest=out, name="narrow", width=4)
        spec = builder.build()
        graph = DataFlowGraph(spec)
        path = graph.longest_path_operations()
        # narrow contributes 4 bits, crossing wide adds 1 + 12 truncated bits.
        assert path_execution_time(path, graph) == 4 + 1 + 12
        assert critical_path_bits(spec) == 17

    @settings(max_examples=20, deadline=None)
    @given(length=st.integers(1, 6), width=st.integers(2, 20))
    def test_addition_chain_formula(self, length, width):
        # A chain of n equal-width additions ripples in width + (n - 1) bits.
        spec = addition_chain(length, width)
        assert critical_path_bits(spec) == width + length - 1
        assert critical_path_by_walk(spec) == width + length - 1


#: The paper's benchmark workloads the DAG/walker equivalence is pinned on.
PAPER_WORKLOADS = ("motivational", "fig3", "fir2", "adpcm_iaq")


class TestCriticalPathDag:
    """The O(V+E) single-pass computation against the enumerating walker."""

    @pytest.mark.parametrize("name", PAPER_WORKLOADS)
    def test_matches_walker_on_paper_workloads(self, name):
        spec = ALL_WORKLOADS[name]()
        assert critical_path_dag(spec) == critical_path_by_walk(
            spec, on_limit="truncate"
        )

    @pytest.mark.parametrize("name", PAPER_WORKLOADS)
    def test_matches_walker_on_extracted_kernels(self, name):
        kernel = extract_kernel(ALL_WORKLOADS[name]()).specification
        assert critical_path_dag(kernel) == critical_path_by_walk(
            kernel, on_limit="truncate"
        )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5000))
    @example(seed=263)  # the pinned falsifier workload of the e2e suite
    def test_matches_walker_on_random_dfgs(self, seed):
        config = GeneratorConfig(operation_count=7, input_count=3, maximum_width=10)
        spec = random_specification(seed, config)
        assert critical_path_dag(spec) == critical_path_by_walk(
            spec, on_limit="truncate"
        )

    def test_dag_pass_is_exact_where_walker_truncates(self):
        """The diffeq kernel has millions of paths; the legacy walker's
        20000-path cut reported 33 chained bits where the true critical path
        is 47 -- the undercount the DAG pass (and the new default fallback)
        eliminates."""
        kernel = extract_kernel(ALL_WORKLOADS["diffeq"]()).specification
        truncated = critical_path_by_walk(kernel, on_limit="truncate")
        exact = critical_path_dag(kernel)
        assert truncated < exact  # the silent undercount of the old default
        with pytest.warns(PathLimitWarning):
            assert critical_path_by_walk(kernel) == exact

    def test_walker_can_raise_on_truncation(self):
        kernel = extract_kernel(ALL_WORKLOADS["diffeq"]()).specification
        with pytest.raises(TimingError):
            critical_path_by_walk(kernel, on_limit="raise")

    def test_walker_rejects_unknown_on_limit(self):
        with pytest.raises(ValueError):
            critical_path_by_walk(motivational_example(), on_limit="explode")

    def test_no_warning_when_enumeration_completes(self, recwarn):
        assert critical_path_by_walk(motivational_example()) == 18
        assert not [w for w in recwarn.list if issubclass(w.category, PathLimitWarning)]


class TestCycleEstimate:
    def test_paper_motivational_budget(self):
        kernel = extract_kernel(motivational_example()).specification
        estimate = estimate_cycle_budget(kernel, latency=3)
        assert estimate.critical_path_bits == 18
        assert estimate.chained_bits_per_cycle == 6

    def test_fig3_budget(self):
        kernel = extract_kernel(fig3_example()).specification
        estimate = estimate_cycle_budget(kernel, FIG3_LATENCY)
        assert estimate.chained_bits_per_cycle == FIG3_CYCLE_BUDGET

    def test_ceiling_division(self):
        estimate = CycleEstimate(critical_path_bits=17, latency=3, chained_bits_per_cycle=6)
        assert estimate.minimum_latency == 3
        assert estimate_cycle_budget(
            extract_kernel(motivational_example()).specification, 4
        ).chained_bits_per_cycle == math.ceil(18 / 4)

    def test_cycle_length_conversion(self):
        estimate = estimate_cycle_budget(
            extract_kernel(motivational_example()).specification, 3
        )
        assert estimate.cycle_length_ns(0.5875, 0.0) == pytest.approx(6 * 0.5875)

    def test_latency_one_gives_full_chain(self):
        kernel = extract_kernel(motivational_example()).specification
        estimate = estimate_cycle_budget(kernel, 1)
        assert estimate.chained_bits_per_cycle == 18

    def test_invalid_latency_rejected(self):
        with pytest.raises(TimingError):
            estimate_cycle_budget(motivational_example(), 0)

    @given(latency=st.integers(1, 20))
    def test_budget_times_latency_covers_critical_path(self, latency):
        kernel = extract_kernel(motivational_example()).specification
        estimate = estimate_cycle_budget(kernel, latency)
        assert estimate.chained_bits_per_cycle * latency >= estimate.critical_path_bits
        assert (estimate.chained_bits_per_cycle - 1) * latency < estimate.critical_path_bits


class TestOperationMobility:
    def test_chain_has_no_mobility_at_minimum_latency(self):
        spec = motivational_example()
        mobility = operation_mobility_cycles(spec, latency=3)
        for operation in spec.operations:
            assert len(mobility[operation]) == 1

    def test_extra_latency_creates_mobility(self):
        spec = motivational_example()
        mobility = operation_mobility_cycles(spec, latency=5)
        assert any(len(window) > 1 for window in mobility.values())

    def test_mobility_windows_are_ordered(self):
        spec = fig3_example()
        mobility = operation_mobility_cycles(spec, latency=3)
        for window in mobility.values():
            assert window.start <= window.stop - 1
