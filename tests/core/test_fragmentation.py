"""Unit tests for phase 3 -- bit-level ASAP/ALAP schedules and fragmentation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fragmentation import (
    FragmentationError,
    IncrementalBitScheduler,
    compute_bit_schedule,
    fragment_specification,
    fragment_widths_simple,
    fragments_of_operation,
    minimum_feasible_budget,
)
from repro.core.kernel import extract_kernel
from repro.core.timing import critical_path_bits, estimate_cycle_budget
from repro.ir.dfg import BitDependencyGraph
from repro.workloads import (
    GeneratorConfig,
    fig3_example,
    motivational_example,
    random_specification,
)
from repro.workloads.fig3 import FIG3_CYCLE_BUDGET, FIG3_LATENCY


@pytest.fixture
def motivational_kernel():
    return extract_kernel(motivational_example()).specification


@pytest.fixture
def fig3_kernel():
    return extract_kernel(fig3_example()).specification


class TestBitSchedule:
    def test_motivational_schedule_feasible(self, motivational_kernel):
        schedule = compute_bit_schedule(motivational_kernel, latency=3, chained_bits_per_cycle=6)
        assert schedule.is_feasible()

    def test_budget_too_small_is_infeasible(self, motivational_kernel):
        schedule = compute_bit_schedule(motivational_kernel, latency=3, chained_bits_per_cycle=4)
        assert not schedule.is_feasible()

    def test_asap_never_exceeds_alap_when_feasible(self, fig3_kernel):
        schedule = compute_bit_schedule(fig3_kernel, FIG3_LATENCY, FIG3_CYCLE_BUDGET)
        assert schedule.is_feasible()
        for node in schedule.asap:
            assert schedule.asap_cycle(node) <= schedule.alap_cycle(node)

    def test_offsets_respect_budget(self, fig3_kernel):
        budget = FIG3_CYCLE_BUDGET
        schedule = compute_bit_schedule(fig3_kernel, FIG3_LATENCY, budget)
        for slot in schedule.asap.values():
            assert 1 <= slot.offset <= budget

    def test_mobility_of_scheduled_bits(self, fig3_kernel):
        schedule = compute_bit_schedule(fig3_kernel, FIG3_LATENCY, FIG3_CYCLE_BUDGET)
        graph = BitDependencyGraph(fig3_kernel)
        f_op = next(op for op in fig3_kernel.operations if op.origin == "F")
        # Operation F is already scheduled: ASAP and ALAP coincide on every bit.
        for bit in range(f_op.width):
            node = graph.node(f_op, bit)
            assert schedule.mobility(node) == 1

    def test_invalid_parameters_rejected(self, motivational_kernel):
        with pytest.raises(FragmentationError):
            compute_bit_schedule(motivational_kernel, 0, 6)
        with pytest.raises(FragmentationError):
            compute_bit_schedule(motivational_kernel, 3, 0)


class TestMinimumFeasibleBudget:
    def test_estimate_is_already_feasible_for_motivational(self, motivational_kernel):
        estimate = estimate_cycle_budget(motivational_kernel, 3)
        budget, schedule, _graph = minimum_feasible_budget(
            motivational_kernel, 3, estimate.chained_bits_per_cycle
        )
        assert budget == 6
        assert schedule.is_feasible()

    def test_budget_search_increases_when_needed(self, motivational_kernel):
        budget, schedule, _graph = minimum_feasible_budget(motivational_kernel, 3, 1)
        assert budget >= 6
        assert schedule.is_feasible()

    @given(latency=st.integers(1, 8))
    @settings(max_examples=8, deadline=None)
    def test_feasible_for_any_latency(self, latency):
        kernel = extract_kernel(motivational_example()).specification
        estimate = estimate_cycle_budget(kernel, latency)
        budget, schedule, _graph = minimum_feasible_budget(
            kernel, latency, estimate.chained_bits_per_cycle
        )
        assert schedule.is_feasible()
        assert budget * latency >= critical_path_bits(kernel)

    @staticmethod
    def _legacy_linear_scan(specification, latency, starting, search_limit=4096):
        """The pre-optimization budget search: probe every candidate."""
        graph = specification.bit_dependency_graph()
        budget = max(1, starting)
        for _ in range(search_limit):
            schedule = compute_bit_schedule(specification, latency, budget, graph)
            if schedule.is_feasible():
                return budget
            budget += 1
        return None

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 400),
        latency=st.integers(1, 6),
        starting=st.integers(1, 8),
    )
    def test_binary_search_equals_legacy_scan(self, seed, latency, starting):
        config = GeneratorConfig(operation_count=6, input_count=3, maximum_width=9)
        spec = random_specification(seed, config)
        expected = self._legacy_linear_scan(spec, latency, starting)
        budget, schedule, _graph = minimum_feasible_budget(spec, latency, starting)
        assert budget == expected
        assert schedule.is_feasible()
        assert schedule.chained_bits_per_cycle == budget

    @pytest.mark.parametrize("latency", [1, 2, 3, 5, 8])
    def test_binary_search_equals_legacy_scan_on_paper_kernels(
        self, latency, motivational_kernel, fig3_kernel
    ):
        for kernel in (motivational_kernel, fig3_kernel):
            for starting in (1, 2, 3, 5):
                expected = self._legacy_linear_scan(kernel, latency, starting)
                budget, _schedule, _graph = minimum_feasible_budget(
                    kernel, latency, starting
                )
                assert budget == expected


class TestIncrementalBitScheduler:
    """The incremental re-relaxation against the full forward/backward passes."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300), latency=st.integers(1, 6))
    def test_matches_full_passes_across_budget_probes(self, seed, latency):
        config = GeneratorConfig(operation_count=6, input_count=3, maximum_width=9)
        spec = random_specification(seed, config)
        graph = spec.bit_dependency_graph()
        scheduler = IncrementalBitScheduler(graph, latency)
        # Probe up, down and back again: the incremental state must stay
        # bit-for-bit equal to a from-scratch recomputation at every budget.
        for budget in (1, 3, 2, 7, 4, 1, 9, 8, 2):
            reference = compute_bit_schedule(spec, latency, budget, graph)
            produced = scheduler.bit_schedule(budget)
            assert produced.asap == reference.asap
            assert produced.alap == reference.alap
            assert scheduler.is_feasible(budget) == reference.is_feasible()


class TestFragments:
    def test_paper_fig2_fragment_widths(self, motivational_kernel):
        """The motivational example fragments exactly as in Fig. 2 a."""
        result = fragment_specification(motivational_kernel, 3, 6)
        widths_by_origin = {}
        for operation, fragments in result.fragments.items():
            widths_by_origin[operation.origin] = [f.width for f in fragments]
        assert widths_by_origin["add_C"] == [6, 6, 4]
        assert widths_by_origin["add_E"] == [5, 6, 5]
        assert widths_by_origin["add_G"] == [4, 6, 6]

    def test_paper_fig3_fragmentation_of_F_and_B(self, fig3_kernel):
        """Operation F fragments into 3+3+2 bits, operation B into 2+1+2+1."""
        result = fragment_specification(fig3_kernel, FIG3_LATENCY, FIG3_CYCLE_BUDGET)
        by_origin = {
            operation.origin: fragments
            for operation, fragments in result.fragments.items()
        }
        assert [f.width for f in by_origin["F"]] == [3, 3, 2]
        assert [(f.asap, f.alap) for f in by_origin["F"]] == [(1, 1), (2, 2), (3, 3)]
        assert [f.width for f in by_origin["B"]] == [2, 1, 2, 1]
        assert [(f.asap, f.alap) for f in by_origin["B"]] == [
            (1, 1),
            (1, 2),
            (2, 2),
            (2, 3),
        ]

    def test_fragment_invariants(self, fig3_kernel):
        result = fragment_specification(fig3_kernel, FIG3_LATENCY, FIG3_CYCLE_BUDGET)
        for operation, fragments in result.fragments.items():
            assert sum(f.width for f in fragments) == operation.width
            assert fragments[0].bits.lo == 0
            assert fragments[-1].bits.hi == operation.width - 1
            for earlier, later in zip(fragments, fragments[1:]):
                assert later.bits.lo == earlier.bits.hi + 1
                assert later.asap >= earlier.asap
                assert later.alap >= earlier.alap
            pairs = [(f.asap, f.alap) for f in fragments]
            assert len(set(pairs)) == len(pairs)

    def test_fragment_count_statistics(self, motivational_kernel):
        result = fragment_specification(motivational_kernel, 3, 6)
        assert result.fragment_count() == 9
        assert len(result.fragmented_operations()) == 3
        assert result.operation_growth() == pytest.approx(2.0)

    def test_single_cycle_means_no_fragmentation(self, motivational_kernel):
        result = fragment_specification(motivational_kernel, 1, 18)
        assert all(len(fragments) == 1 for fragments in result.fragments.values())

    def test_fragments_of_operation_direct(self, motivational_kernel):
        graph = BitDependencyGraph(motivational_kernel)
        schedule = compute_bit_schedule(motivational_kernel, 3, 6, graph)
        operation = next(op for op in motivational_kernel.operations if op.is_additive)
        fragments = fragments_of_operation(operation, schedule, graph)
        assert fragments[0].index == 0
        assert all(f.operation is operation for f in fragments)


class TestSimpleFragmentation:
    """The per-operation pseudo-code transcribed from the paper."""

    def test_exact_fill(self):
        fragments = fragment_widths_simple(width=9, asap=1, alap=3, n_bits=3)
        assert [f.size for f in fragments] == [3, 3, 3]
        assert [(f.asap, f.alap) for f in fragments] == [(1, 1), (2, 2), (3, 3)]

    def test_partial_last_fragment_creates_mobility(self):
        fragments = fragment_widths_simple(width=8, asap=1, alap=3, n_bits=3)
        assert sum(f.size for f in fragments) == 8
        assert fragments[0].asap == 1 and fragments[-1].alap == 3

    def test_single_fragment_when_budget_covers_width(self):
        fragments = fragment_widths_simple(width=5, asap=2, alap=4, n_bits=8)
        assert len(fragments) == 1
        assert fragments[0].size == 5
        assert (fragments[0].asap, fragments[0].alap) == (2, 4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(FragmentationError):
            fragment_widths_simple(0, 1, 1, 3)
        with pytest.raises(FragmentationError):
            fragment_widths_simple(4, 1, 1, 0)
        with pytest.raises(FragmentationError):
            fragment_widths_simple(4, 3, 1, 2)

    def test_overfull_window_rejected(self):
        with pytest.raises(FragmentationError):
            fragment_widths_simple(width=10, asap=1, alap=2, n_bits=3)

    @given(
        width=st.integers(1, 64),
        asap=st.integers(1, 6),
        extra=st.integers(0, 6),
        n_bits=st.integers(1, 16),
    )
    def test_sizes_always_sum_to_width(self, width, asap, extra, n_bits):
        from hypothesis import assume

        assume(width <= n_bits * (extra + 1))
        fragments = fragment_widths_simple(width, asap, asap + extra, n_bits)
        assert sum(f.size for f in fragments) == width
        assert all(f.size > 0 for f in fragments)
        assert all(asap <= f.asap and f.alap <= asap + extra for f in fragments)
        assert all(f.size <= n_bits for f in fragments)
