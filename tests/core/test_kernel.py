"""Unit tests for phase 1 -- operative kernel extraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernel import extract_kernel
from repro.ir.builder import SpecBuilder
from repro.ir.operations import OpKind
from repro.ir.validate import validate
from repro.simulation import assert_equivalent, check_equivalence
from repro.workloads import motivational_example


def _single_op_spec(kind_helper, a_width, b_width, signed=False, **kwargs):
    builder = SpecBuilder(f"kernel_{kind_helper}")
    a = builder.input("a", a_width, signed)
    b = builder.input("b", b_width, signed)
    helper = getattr(builder, kind_helper)
    result = helper(a, b, name="the_op", **kwargs)
    out = builder.output("o", result.width)
    builder.move(result, dest=out, name="expose")
    return builder.build()


def _extracted_kinds(specification):
    return {op.kind for op in extract_kernel(specification).specification.operations}


class TestKernelStructure:
    def test_only_additions_remain_additive(self):
        for helper in ("add", "sub", "mul", "lt", "gt", "le", "ge", "max", "min"):
            spec = _single_op_spec(helper, 8, 8)
            extracted = extract_kernel(spec).specification
            additive = {op.kind for op in extracted.operations if op.is_additive}
            assert additive <= {OpKind.ADD}, f"{helper} left {additive}"

    def test_equality_becomes_pure_glue(self):
        spec = _single_op_spec("eq", 8, 8)
        extracted = extract_kernel(spec).specification
        assert all(not op.is_additive for op in extracted.operations)

    def test_addition_operands_are_normalised_to_result_width(self):
        builder = SpecBuilder("norm")
        a = builder.input("a", 4)
        b = builder.input("b", 12)
        out = builder.output("o", 12)
        builder.add(a, b, dest=out, name="wide_add")
        extracted = extract_kernel(builder.build()).specification
        for operation in extracted.operations:
            if operation.kind is OpKind.ADD:
                assert all(op.width == operation.width for op in operation.operands)

    def test_extracted_specification_is_valid(self):
        extracted = extract_kernel(motivational_example()).specification
        assert validate(extracted).ok

    def test_statistics_counts(self):
        result = extract_kernel(_single_op_spec("sub", 8, 8))
        assert result.statistics.original_operations == 2  # sub + expose move
        assert result.statistics.additions_created >= 1
        assert result.statistics.rewritten_by_kind.get("sub") == 1
        assert result.statistics.extracted_operations == len(result.specification.operations)

    def test_operation_growth_reported(self):
        result = extract_kernel(_single_op_spec("mul", 8, 8))
        assert result.statistics.operation_growth > 0

    def test_constant_multiplication_strength_reduced(self):
        builder = SpecBuilder("constmul")
        a = builder.input("a", 8)
        out = builder.output("o", 12)
        builder.mul(a, builder.constant(5, 4), dest=out, width=12, name="by5")
        result = extract_kernel(builder.build())
        adds = [op for op in result.specification.operations if op.kind is OpKind.ADD]
        # 5 = 0b101 has two set bits: a single accumulation addition suffices.
        assert len(adds) == 1

    def test_variable_multiplication_produces_row_adds(self):
        result = extract_kernel(_single_op_spec("mul", 6, 6))
        adds = [op for op in result.specification.operations if op.kind is OpKind.ADD]
        assert len(adds) == 5  # one per multiplier bit beyond the first

    def test_plain_addition_kept_single(self):
        result = extract_kernel(_single_op_spec("add", 8, 8))
        adds = [op for op in result.specification.operations if op.kind is OpKind.ADD]
        assert len(adds) == 1

    def test_origin_recorded_on_rewritten_operations(self):
        result = extract_kernel(_single_op_spec("sub", 8, 8))
        rewritten = [
            op for op in result.specification.operations if op.origin == "the_op"
        ]
        assert rewritten, "rewritten operations must carry their origin"


class TestKernelEquivalence:
    """The extracted kernel computes exactly what the original spec computes."""

    CASES = [
        ("add", 8, 8, False),
        ("add", 4, 12, False),
        ("sub", 8, 8, False),
        ("sub", 8, 8, True),
        ("mul", 6, 6, False),
        ("mul", 6, 6, True),
        ("mul", 4, 7, True),
        ("lt", 8, 8, False),
        ("lt", 8, 8, True),
        ("le", 6, 6, False),
        ("gt", 8, 8, True),
        ("ge", 5, 5, False),
        ("eq", 8, 8, False),
        ("ne", 8, 8, False),
        ("max", 8, 8, False),
        ("max", 8, 8, True),
        ("min", 6, 6, True),
    ]

    @pytest.mark.parametrize("helper,a_width,b_width,signed", CASES)
    def test_extraction_preserves_behaviour(self, helper, a_width, b_width, signed):
        spec = _single_op_spec(helper, a_width, b_width, signed)
        extracted = extract_kernel(spec).specification
        assert_equivalent(spec, extracted, random_count=60)

    def test_neg_and_abs_preserved(self):
        builder = SpecBuilder("unary_kernel")
        a = builder.input("a", 8, signed=True)
        neg_out = builder.output("neg_o", 8)
        abs_out = builder.output("abs_o", 8)
        builder.neg(a, dest=neg_out, name="negate")
        builder.unary(OpKind.ABS, a, dest=abs_out, name="absolute")
        spec = builder.build()
        extracted = extract_kernel(spec).specification
        assert_equivalent(spec, extracted, random_count=60)

    def test_motivational_example_unchanged_behaviour(self):
        spec = motivational_example()
        extracted = extract_kernel(spec).specification
        assert_equivalent(spec, extracted, random_count=40)

    @settings(max_examples=25, deadline=None)
    @given(
        helper=st.sampled_from(["add", "sub", "mul", "lt", "max", "min", "ge"]),
        a_width=st.integers(2, 10),
        b_width=st.integers(2, 10),
        signed=st.booleans(),
    )
    def test_random_single_operations(self, helper, a_width, b_width, signed):
        spec = _single_op_spec(helper, a_width, b_width, signed)
        extracted = extract_kernel(spec).specification
        report = check_equivalence(spec, extracted, random_count=25)
        assert report.equivalent, report.summary()
