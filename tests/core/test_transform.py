"""Tests for the specification rewrite and the end-to-end transformation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BehaviouralTransformer,
    TransformOptions,
    transform,
)
from repro.core.fragmentation import fragment_specification
from repro.core.kernel import extract_kernel
from repro.core.rewrite import rewrite_specification
from repro.ir.builder import SpecBuilder
from repro.ir.operations import OpKind
from repro.ir.validate import validate
from repro.simulation import check_equivalence
from repro.workloads import (
    GeneratorConfig,
    addition_chain,
    fig3_example,
    motivational_example,
    random_specification,
)


class TestRewrite:
    def test_motivational_rewrite_matches_fig2(self):
        """The rewritten motivational example has Fig. 2 a's structure."""
        kernel = extract_kernel(motivational_example()).specification
        fragmentation = fragment_specification(kernel, 3, 6)
        rewritten = rewrite_specification(fragmentation)
        spec = rewritten.specification
        adds = [op for op in spec.operations if op.kind is OpKind.ADD]
        assert len(adds) == 9
        # Every non-final fragment produces an explicit carry bit consumed by
        # the next fragment of the same original addition.
        for origin in ("add_C", "add_E", "add_G"):
            fragments = [op for op in adds if op.origin == origin]
            assert len(fragments) == 3
            assert fragments[0].carry_in is None
            assert fragments[1].carry_in is not None
            assert fragments[2].carry_in is not None

    def test_fragment_destinations_cover_original_bits(self):
        kernel = extract_kernel(motivational_example()).specification
        fragmentation = fragment_specification(kernel, 3, 6)
        rewritten = rewrite_specification(fragmentation)
        g_port = rewritten.specification.variable("G")
        assert rewritten.specification.written_bits(g_port) == list(range(16))

    def test_statistics(self):
        kernel = extract_kernel(motivational_example()).specification
        fragmentation = fragment_specification(kernel, 3, 6)
        rewritten = rewrite_specification(fragmentation)
        stats = rewritten.statistics
        assert stats.additive_operations_in == 3
        assert stats.additive_operations_out == 9
        assert stats.fragmented_operations == 3
        assert stats.carry_bits_created == 6
        assert stats.operation_growth == pytest.approx(2.0)

    def test_mobility_attributes_recorded(self):
        kernel = extract_kernel(motivational_example()).specification
        fragmentation = fragment_specification(kernel, 3, 6)
        rewritten = rewrite_specification(fragmentation)
        for operation in rewritten.specification.operations:
            if operation.is_additive:
                assert "asap" in operation.attributes
                assert "alap" in operation.attributes
                assert operation.attributes["asap"] <= operation.attributes["alap"]

    def test_unfragmented_operations_copied(self):
        kernel = extract_kernel(motivational_example()).specification
        fragmentation = fragment_specification(kernel, 1, 18)
        rewritten = rewrite_specification(fragmentation)
        assert rewritten.specification.additive_operation_count() == 3


class TestTransform:
    def test_motivational_transform(self):
        result = transform(motivational_example(), latency=3)
        assert result.critical_path_bits == 18
        assert result.chained_bits_per_cycle == 6
        assert result.equivalence is not None and result.equivalence.equivalent
        assert result.operation_growth() == pytest.approx(2.0)

    def test_transformed_specification_validates(self):
        result = transform(
            fig3_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        assert validate(result.transformed).ok

    def test_equivalence_check_can_be_disabled(self):
        result = transform(
            motivational_example(),
            latency=3,
            options=TransformOptions(check_equivalence=False),
        )
        assert result.equivalence is None

    def test_budget_override(self):
        result = transform(
            motivational_example(),
            latency=3,
            options=TransformOptions(check_equivalence=False, chained_bits_override=9),
        )
        assert result.chained_bits_per_cycle == 9

    def test_summary_mentions_key_numbers(self):
        result = transform(motivational_example(), latency=3)
        summary = result.summary()
        assert "18" in summary and "6" in summary

    def test_transformer_reusable(self):
        transformer = BehaviouralTransformer(TransformOptions(check_equivalence=False))
        first = transformer.transform(motivational_example(), 3)
        second = transformer.transform(fig3_example(), 3)
        assert first.transformed.name != second.transformed.name

    @pytest.mark.parametrize("latency", [1, 2, 3, 4, 6, 9])
    def test_motivational_equivalence_across_latencies(self, latency):
        result = transform(
            motivational_example(),
            latency=latency,
            options=TransformOptions(equivalence_vectors=30),
        )
        assert result.equivalence is not None and result.equivalence.equivalent

    @pytest.mark.parametrize(
        "factory,latency",
        [
            (fig3_example, 3),
            (lambda: addition_chain(5, 12), 4),
            (lambda: addition_chain(2, 24), 5),
        ],
    )
    def test_other_specifications_equivalent(self, factory, latency):
        result = transform(
            factory(), latency=latency, options=TransformOptions(equivalence_vectors=30)
        )
        assert result.equivalence is not None and result.equivalence.equivalent

    def test_fragments_respect_budget_in_bit_graph(self):
        from repro.ir.dfg import BitDependencyGraph

        result = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        graph = BitDependencyGraph(result.transformed)
        # Fragments must never be wider than the per-cycle chained-bit budget.
        for operation in result.transformed.operations:
            if operation.is_fragment:
                assert operation.max_operand_width() <= result.chained_bits_per_cycle

    def test_mixed_operation_specification(self):
        builder = SpecBuilder("mixed")
        a = builder.input("a", 12)
        b = builder.input("b", 12)
        c = builder.input("c", 12, signed=True)
        out1 = builder.output("sum_out", 12)
        out2 = builder.output("cmp_out", 1)
        out3 = builder.output("max_out", 12)
        total = builder.add(a, b, name="a_plus_b")
        builder.sub(total, c, dest=out1, name="minus_c", width=12)
        builder.lt(a, b, dest=out2, name="is_less")
        builder.max(total, c, dest=out3, name="biggest", width=12)
        spec = builder.build()
        result = transform(spec, latency=4, options=TransformOptions(equivalence_vectors=40))
        assert result.equivalence is not None and result.equivalence.equivalent

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), latency=st.integers(2, 5))
    def test_random_specifications_stay_equivalent(self, seed, latency):
        config = GeneratorConfig(operation_count=8, maximum_width=10, input_count=3)
        spec = random_specification(seed, config)
        result = transform(
            spec, latency=latency, options=TransformOptions(check_equivalence=False)
        )
        report = check_equivalence(spec, result.transformed, random_count=20)
        assert report.equivalent, report.summary()


class TestChainedBitsOverrideValidation:
    def test_zero_override_raises(self):
        from repro.workloads import motivational_example

        with pytest.raises(ValueError) as excinfo:
            transform(
                motivational_example(),
                3,
                TransformOptions(
                    check_equivalence=False, chained_bits_override=0
                ),
            )
        assert "positive" in str(excinfo.value)

    def test_positive_override_is_honoured(self):
        from repro.workloads import motivational_example

        result = transform(
            motivational_example(),
            3,
            TransformOptions(check_equivalence=False, chained_bits_override=9),
        )
        assert result.chained_bits_per_cycle == 9
