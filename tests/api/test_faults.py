"""The deterministic fault-injection harness and the chaos matrix.

Two layers:

* Plan mechanics -- :class:`FaultRule`/:class:`FaultPlan` validation,
  skip/times/match occurrence semantics, atomic claiming, deterministic
  corruption, serialization.

* The **chaos matrix** -- one self-checking scenario per registered
  ``(site, kind)`` combination.  ``SCENARIOS`` is a static dict so the
  coverage test (``test_every_registered_combo_has_a_scenario``) works under
  pytest-xdist, where module-level runtime accumulation across tests does
  not survive worker partitioning.  Every scenario asserts that the injected
  failure is either retried to success or surfaced as a coded error row,
  and that the workspace stays resumable -- the acceptance contract of the
  robustness layer.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro import faults
from repro.api import (
    FlowConfig,
    RetryPolicy,
    SweepEngine,
    Workspace,
    fig4_study,
)
from repro.faults import FaultError, FaultPlan, FaultRule, InjectedFault
from repro.faults.sites import SITE_REGISTRY


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """No scenario may leak a process-global plan into its neighbours."""
    assert faults.active_plan() is None
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# Plan mechanics
# ----------------------------------------------------------------------
class TestFaultRuleValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultError):
            FaultRule("sweep.point", "meteor-strike")

    @pytest.mark.parametrize(
        "kwargs", [{"times": 0}, {"hang_s": 0.0}, {"skip": -1}]
    )
    def test_rejects_malformed_fields(self, kwargs):
        with pytest.raises(FaultError):
            FaultRule("sweep.point", "raise", **kwargs)

    def test_plan_rejects_unregistered_site(self):
        with pytest.raises(FaultError) as excinfo:
            FaultPlan([FaultRule("warp.core", "raise")])
        assert "warp.core" in str(excinfo.value)

    def test_plan_rejects_unsupported_kind_at_site(self):
        # The pipeline site supports raise/hang but not torn-write.
        with pytest.raises(FaultError):
            FaultPlan([FaultRule("pipeline.pass", "torn-write")])

    def test_round_trip_preserves_rules_and_seed(self):
        plan = FaultPlan(
            [FaultRule("sweep.point", "raise", times=2, match="chain", skip=1)],
            seed=7,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 7
        assert clone.rules == plan.rules
        assert clone.fired() == {}  # counters are not carried over


class TestClaimSemantics:
    def test_times_limits_firings(self):
        plan = FaultPlan([FaultRule("sweep.point", "raise", times=2)])
        claims = [plan.claim("sweep.point", f"k{i}") for i in range(4)]
        assert [c is not None for c in claims] == [True, True, False, False]
        assert plan.fired() == {0: 2}

    def test_skip_lets_early_occurrences_pass(self):
        plan = FaultPlan([FaultRule("sweep.point", "raise", times=1, skip=2)])
        claims = [plan.claim("sweep.point", f"k{i}") for i in range(4)]
        assert [c is not None for c in claims] == [False, False, True, False]
        _, occurrence = claims[2]
        assert occurrence == 3

    def test_match_filters_on_key_substring(self):
        plan = FaultPlan([FaultRule("sweep.point", "raise", times=None, match="l3")])
        assert plan.claim("sweep.point", "0:chain:3:16:l4:frag") is None
        assert plan.claim("sweep.point", "1:chain:3:16:l3:frag") is not None
        assert plan.claim("sweep.point", None) is None

    def test_other_sites_never_match(self):
        plan = FaultPlan([FaultRule("sweep.point", "raise")])
        assert plan.claim("pipeline.pass", "schedule") is None
        assert plan.fired() == {}

    def test_claims_are_atomic_across_threads(self):
        import threading

        plan = FaultPlan([FaultRule("sweep.point", "raise", times=1)])
        wins = []
        barrier = threading.Barrier(8)

        def contender():
            barrier.wait()
            if plan.claim("sweep.point", "k") is not None:
                wins.append(1)

        threads = [threading.Thread(target=contender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1  # exactly one winner, whatever the interleaving


class TestCorruption:
    def test_torn_write_is_a_strict_prefix(self):
        plan = FaultPlan([FaultRule("workspace.write_object", "torn-write")])
        rule = plan.rules[0]
        payload = b'{"report": {"area": 42}}'
        torn = plan.corrupt(rule, "workspace.write_object", "addr", 1, payload)
        assert torn == payload[: len(payload) // 2]
        assert plan.corrupt(rule, "workspace.write_object", "addr", 1, b"x") == b"x"

    def test_bit_flip_is_deterministic_and_single_bit(self):
        plan = FaultPlan([FaultRule("workspace.write_object", "bit-flip")], seed=3)
        rule = plan.rules[0]
        payload = bytes(range(64))
        first = plan.corrupt(rule, "workspace.write_object", "addr", 1, payload)
        again = plan.corrupt(rule, "workspace.write_object", "addr", 1, payload)
        assert first == again
        assert first != payload
        diff = [a ^ b for a, b in zip(first, payload)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_bit_flip_varies_with_seed_and_occurrence(self):
        payload = bytes(range(64))
        rule = FaultRule("workspace.write_object", "bit-flip")
        by_seed = {
            FaultPlan([rule], seed=s).corrupt(
                rule, "workspace.write_object", "addr", 1, payload
            )
            for s in range(4)
        }
        assert len(by_seed) > 1

    def test_control_flow_kinds_refuse_to_corrupt(self):
        plan = FaultPlan([FaultRule("sweep.point", "raise")])
        with pytest.raises(FaultError):
            plan.corrupt(plan.rules[0], "sweep.point", "k", 1, b"data")


class TestInstallation:
    def test_injecting_installs_and_uninstalls(self):
        plan = FaultPlan([FaultRule("sweep.point", "raise")])
        assert faults.active_plan() is None
        with faults.injecting(plan) as active:
            assert active is plan
            assert faults.active_plan() is plan
        assert faults.active_plan() is None

    def test_injecting_uninstalls_on_error(self):
        plan = FaultPlan([FaultRule("sweep.point", "raise")])
        with pytest.raises(RuntimeError):
            with faults.injecting(plan):
                raise RuntimeError("boom")
        assert faults.active_plan() is None

    def test_site_hook_is_inert_without_a_plan(self):
        payload = b"untouched"
        assert faults.site("workspace.write_object", key="k", payload=payload) == (
            payload
        )

    def test_injected_fault_is_not_an_os_error(self):
        # I/O-tolerant recovery code must still see injected faults.
        assert not issubclass(InjectedFault, OSError)
        plan = FaultPlan([FaultRule("sweep.point", "raise")])
        with faults.injecting(plan):
            with pytest.raises(InjectedFault) as excinfo:
                faults.site("sweep.point", key="pt")
        assert excinfo.value.site == "sweep.point"
        assert excinfo.value.occurrence == 1


# ----------------------------------------------------------------------
# The chaos matrix: one scenario per registered (site, kind) combination.
# ----------------------------------------------------------------------
def _config():
    return FlowConfig(latency=3, mode="fragmented", workload="chain:3:16")


def _study(n=2, name="chaos-mini"):
    return fig4_study("chain:3:16", latencies=range(3, 3 + n), name=name)


def _retrying_engine(**kwargs):
    policy = RetryPolicy(max_attempts=2, backoff_s=0.0, jitter_s=0.0, **kwargs)
    return SweepEngine(executor="serial", stop_after="time", retry=policy)


def _scenario_sweep_point_raise(tmp_path):
    """A point that raises once is retried to success; the failed attempt
    is preserved in the attempt history under its RUN code."""
    plan = FaultPlan([FaultRule("sweep.point", "raise", times=1)])
    with faults.injecting(plan):
        (outcome,) = _retrying_engine().run([_config()])
    assert outcome.ok
    assert outcome.attempts_made == 2
    assert outcome.attempts[0].error_code == "RUN001"
    assert "injected fault" in outcome.attempts[0].error
    assert outcome.attempts[1].error_code is None
    assert plan.fired() == {0: 1}


def _scenario_sweep_point_hang(tmp_path):
    """A hung point trips the heartbeat watchdog (RUN004) and the retry
    succeeds."""
    plan = FaultPlan([FaultRule("sweep.point", "hang", times=1, hang_s=5.0)])
    engine = _retrying_engine(heartbeat_timeout_s=0.2)
    with faults.injecting(plan):
        (outcome,) = engine.run([_config()])
    assert outcome.ok
    assert outcome.attempts[0].error_code == "RUN004"
    assert "hung" in outcome.attempts[0].error
    assert plan.fired() == {0: 1}


def _scenario_sweep_point_kill(tmp_path):
    """SIGKILLing a pool worker mid-point breaks the pool; the point is
    charged a RUN003 attempt and retried on a fresh worker.  (The plan ships
    only with the first attempt, so the retry runs unarmed.)"""
    plan = FaultPlan([FaultRule("sweep.point", "kill", times=1)])
    engine = SweepEngine(
        executor="process",
        max_workers=1,
        stop_after="time",
        retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter_s=0.0),
    )
    with faults.injecting(plan):
        (outcome,) = engine.run([_config()])
    assert outcome.ok
    assert outcome.attempts[0].error_code == "RUN003"
    assert outcome.attempts[1].error_code is None


def _scenario_pipeline_pass_raise(tmp_path):
    """A mid-pipeline failure (the schedule pass) is isolated and retried."""
    plan = FaultPlan(
        [FaultRule("pipeline.pass", "raise", times=1, match="schedule")]
    )
    with faults.injecting(plan):
        (outcome,) = _retrying_engine().run([_config()])
    assert outcome.ok
    assert outcome.attempts[0].error_code == "RUN001"
    assert plan.fired() == {0: 1}


def _scenario_pipeline_pass_hang(tmp_path):
    """A pass that stops heartbeating is presumed hung (RUN004), abandoned,
    and retried."""
    plan = FaultPlan(
        [FaultRule("pipeline.pass", "hang", times=1, hang_s=5.0, match="schedule")]
    )
    engine = _retrying_engine(heartbeat_timeout_s=0.2)
    with faults.injecting(plan):
        (outcome,) = engine.run([_config()])
    assert outcome.ok
    assert outcome.attempts[0].error_code == "RUN004"
    assert plan.fired() == {0: 1}


def _run_write_object_scenario(tmp_path, kind):
    """Failing to persist a completed row yields a RUN005 error row; a rerun
    without the fault heals the workspace and salvage reports it clean."""
    study = _study()
    plan = FaultPlan([FaultRule("workspace.write_object", kind, times=1)])
    workspace = Workspace(tmp_path / "ws")
    with faults.injecting(plan):
        result = workspace.run_study(study)
    assert result.failed == 1
    (failure,) = [r for r in result.results if r.error_code is not None]
    assert failure.error_code == "RUN005"
    assert plan.fired() == {0: 1}
    status = workspace.status(study)
    assert status["failed"] == 1

    healed = workspace.run_study(study)
    assert healed.complete and healed.failed == 0
    assert workspace.status(study)["failed"] == 0
    assert workspace.salvage().clean


def _scenario_write_object_raise(tmp_path):
    _run_write_object_scenario(tmp_path, "raise")


def _scenario_write_object_torn(tmp_path):
    # The torn object fails the post-write hash verification and is
    # quarantined instead of poisoning the store.
    _run_write_object_scenario(tmp_path, "torn-write")


def _scenario_write_object_bitflip(tmp_path):
    _run_write_object_scenario(tmp_path, "bit-flip")


def _scenario_write_manifest_raise(tmp_path):
    """A manifest save that dies *after* the row hit the object store and
    the journal loses nothing: the next open replays the journal and the
    whole study loads with zero recomputation."""
    study = _study()
    # skip=1: let the run-start bookkeeping save pass, kill the save that
    # carries the first completed row.
    plan = FaultPlan(
        [FaultRule("workspace.write_manifest", "raise", times=1, skip=1)]
    )
    with faults.injecting(plan):
        result = Workspace(tmp_path / "ws").run_study(study)
    assert result.failed == 1  # conservatively reported as RUN005...
    assert plan.fired() == {0: 1}

    reopened = Workspace(tmp_path / "ws")
    healed = reopened.run_study(study)
    # ...but object + journal were durable, so nothing is recomputed.
    assert healed.complete
    assert healed.loaded == len(study) and healed.ran == 0
    assert reopened.salvage().clean


def _scenario_write_manifest_torn(tmp_path):
    """A torn manifest write is self-healed by the next save (the in-memory
    manifest is authoritative); the finished workspace reopens cleanly."""
    study = _study()
    plan = FaultPlan([FaultRule("workspace.write_manifest", "torn-write", times=1)])
    with faults.injecting(plan):
        result = Workspace(tmp_path / "ws").run_study(study)
    assert result.complete and result.failed == 0
    assert plan.fired() == {0: 1}
    reopened = Workspace(tmp_path / "ws")  # manifest on disk is valid again
    assert reopened.status(study)["completed"] == len(study)


def _scenario_write_manifest_kill(tmp_path):
    """SIGKILL between the journal append and the manifest rewrite -- the
    classic WAL crash window -- in a real subprocess.  The journal replay
    recovers the completed row; the resumed run recomputes nothing it
    already paid for.  Doubles as the stale-lock drill: the victim died
    holding the advisory lock."""
    root = tmp_path / "ws"
    script = textwrap.dedent(
        f"""
        from repro import faults
        from repro.api import Workspace, fig4_study

        study = fig4_study("chain:3:16", latencies=range(3, 5), name="chaos-mini")
        plan = faults.FaultPlan(
            [faults.FaultRule("workspace.write_manifest", "kill", times=1, skip=1)]
        )
        with faults.injecting(plan):
            Workspace({str(root)!r}).run_study(study)
        raise SystemExit("unreachable: the kill rule must fire")
        """
    )
    env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env, capture_output=True, text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    study = _study()
    workspace = Workspace(root)  # journal replay happens on open
    assert workspace.load_row(study.name, study.points()[0]) is not None
    resumed = workspace.run_study(study)  # stale .lock taken over (dead pid)
    assert resumed.complete
    assert resumed.loaded >= 1  # the journalled row was never recomputed
    assert resumed.loaded + resumed.ran == len(study)
    assert workspace.salvage().clean


def _scenario_journal_append_raise(tmp_path):
    """The journal is belt-and-braces: an append failure is absorbed (the
    manifest save right after it is the actual durability point)."""
    study = _study()
    plan = FaultPlan([FaultRule("workspace.journal.append", "raise", times=1)])
    workspace = Workspace(tmp_path / "ws")
    with faults.injecting(plan):
        result = workspace.run_study(study)
    assert result.complete and result.failed == 0
    assert plan.fired() == {0: 1}  # it really did fire and was absorbed
    assert workspace.status(study)["completed"] == len(study)


def _scenario_journal_append_torn(tmp_path):
    """A crash mid-append leaves a torn *tail* line in the journal; replay
    skips it, applies every intact line before it, and never crashes."""
    workspace = Workspace(tmp_path / "ws")
    record = {"address": "00" * 4, "completed_at": "2026-01-01T00:00:00Z"}
    workspace._append_journal("chaos", "pt-intact", record)
    plan = FaultPlan(
        [FaultRule("workspace.journal.append", "torn-write", times=1)]
    )
    with faults.injecting(plan):
        workspace._append_journal("chaos", "pt-torn", record)
    assert plan.fired() == {0: 1}

    manifest = workspace._fresh_manifest()
    applied = workspace._replay_journal(manifest)
    assert applied == 1  # the torn tail is skipped, not fatal
    points = manifest["studies"]["chaos"]["points"]
    assert "pt-intact" in points and "pt-torn" not in points
    # Replay is idempotent: a second pass over the same journal is a no-op.
    assert workspace._replay_journal(manifest) == 0


def _run_load_object_scenario(tmp_path, kind, times=1):
    """A row that cannot be read back is contained: quarantined (never a
    crash), recomputed, and re-stored at the same address."""
    study = _study()
    workspace = Workspace(tmp_path / "ws")
    assert workspace.run_study(study).complete

    plan = FaultPlan([FaultRule("workspace.load_object", kind, times=times)])
    with faults.injecting(plan):
        reread = workspace.run_study(study)
    assert reread.complete and reread.failed == 0
    assert plan.fired() == {0: times}
    # Whether the flip landed in an addressed field (forcing a recompute) or
    # a provenance one (row loads anyway) the study must end complete...
    assert reread.loaded + reread.ran == len(study)
    # ...and a clean pass proves the store healed.
    final = workspace.run_study(study)
    assert final.loaded == len(study) and final.ran == 0
    assert workspace.salvage().clean


def _scenario_load_object_raise(tmp_path):
    study = _study()
    workspace = Workspace(tmp_path / "ws")
    assert workspace.run_study(study).complete
    plan = FaultPlan([FaultRule("workspace.load_object", "raise", times=1)])
    with faults.injecting(plan):
        reread = workspace.run_study(study)
    assert reread.complete
    assert reread.ran == 1 and reread.loaded == len(study) - 1
    assert plan.fired() == {0: 1}
    assert workspace.run_study(study).loaded == len(study)
    assert workspace.salvage().clean


def _scenario_load_object_bitflip(tmp_path):
    _run_load_object_scenario(tmp_path, "bit-flip")


#: (site, kind) -> scenario.  Static so the coverage check below is exact
#: under pytest-xdist.  Every entry is a full drill: inject, observe the
#: coded failure or the successful retry, prove the workspace recovered.
SCENARIOS = {
    ("sweep.point", "raise"): _scenario_sweep_point_raise,
    ("sweep.point", "hang"): _scenario_sweep_point_hang,
    ("sweep.point", "kill"): _scenario_sweep_point_kill,
    ("pipeline.pass", "raise"): _scenario_pipeline_pass_raise,
    ("pipeline.pass", "hang"): _scenario_pipeline_pass_hang,
    ("workspace.write_object", "raise"): _scenario_write_object_raise,
    ("workspace.write_object", "torn-write"): _scenario_write_object_torn,
    ("workspace.write_object", "bit-flip"): _scenario_write_object_bitflip,
    ("workspace.write_manifest", "raise"): _scenario_write_manifest_raise,
    ("workspace.write_manifest", "torn-write"): _scenario_write_manifest_torn,
    ("workspace.write_manifest", "kill"): _scenario_write_manifest_kill,
    ("workspace.journal.append", "raise"): _scenario_journal_append_raise,
    ("workspace.journal.append", "torn-write"): _scenario_journal_append_torn,
    ("workspace.load_object", "raise"): _scenario_load_object_raise,
    ("workspace.load_object", "bit-flip"): _scenario_load_object_bitflip,
}


def test_every_registered_combo_has_a_scenario():
    """The matrix is exhaustive: adding a site or kind without a chaos
    scenario fails here."""
    registered = {
        (site.name, kind)
        for site in SITE_REGISTRY.values()
        for kind in site.kinds
    }
    assert set(SCENARIOS) == registered


@pytest.mark.parametrize(
    "combo", sorted(SCENARIOS), ids=lambda combo: f"{combo[0]}-{combo[1]}"
)
def test_chaos(combo, tmp_path):
    SCENARIOS[combo](tmp_path)
