"""The nested SchedulerPolicy surface of FlowConfig.

Three contracts:

* **hash stability** -- a paper-policy config with default search knobs
  serializes in the legacy flat encoding, so every pre-search config keeps
  its content hash (cache keys, workspace rows, golden Verilog);
* **mirror coherence** -- the flat ``chained_bits_per_cycle`` /
  ``balance_fragments`` fields and the nested policy are one truth, through
  construction, ``replace()`` and both deserialization shims;
* **end-to-end surfacing** -- search configs run the search scheduler and
  report ``search_*`` keys; paper configs report none.
"""

import json
import warnings

import pytest

from repro.api import FlowConfig, Pipeline
from repro.api.config import ConfigError
from repro.hls.scheduling import SchedulerPolicy


def no_warnings_config(**kwargs) -> FlowConfig:
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        return FlowConfig(**kwargs)


class TestHashStability:
    def test_default_config_hides_the_paper_policy_from_the_hash(self):
        config = FlowConfig(latency=3, workload="motivational")
        assert isinstance(config.scheduler, SchedulerPolicy)
        assert "scheduler" not in config.semantic_dict()

    def test_explicit_paper_policy_hashes_like_no_policy(self):
        flat = FlowConfig(
            latency=3,
            mode="fragmented",
            workload="motivational",
            chained_bits_per_cycle=9,
            balance_fragments=False,
        )
        nested = FlowConfig(
            latency=3,
            mode="fragmented",
            workload="motivational",
            scheduler={
                "policy": "paper",
                "chained_bits_per_cycle": 9,
                "balance_fragments": False,
            },
        )
        assert flat.content_hash() == nested.content_hash()
        assert flat == nested

    def test_search_policy_changes_the_hash(self):
        paper = FlowConfig(latency=3, workload="motivational")
        search = FlowConfig(
            latency=3,
            workload="motivational",
            scheduler={"policy": "search", "beam_width": 2},
        )
        assert paper.content_hash() != search.content_hash()
        assert "scheduler" in search.semantic_dict()


class TestMirrorCoherence:
    def test_flat_fields_fold_into_the_policy(self):
        config = FlowConfig(
            latency=3,
            mode="fragmented",
            workload="motivational",
            chained_bits_per_cycle=7,
            balance_fragments=False,
        )
        policy = config.scheduler_policy
        assert policy.chained_bits_per_cycle == 7
        assert policy.balance_fragments is False

    def test_policy_fields_mirror_back_flat(self):
        config = FlowConfig(
            latency=3,
            mode="fragmented",
            workload="motivational",
            scheduler={"chained_bits_per_cycle": 5, "balance_fragments": False},
        )
        assert config.chained_bits_per_cycle == 5
        assert config.balance_fragments is False

    def test_conflicting_budgets_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            FlowConfig(
                latency=3,
                mode="fragmented",
                workload="motivational",
                chained_bits_per_cycle=3,
                scheduler={"chained_bits_per_cycle": 5},
            )
        assert "one place" in str(excinfo.value)

    def test_replace_mirror_field_rebuilds_the_policy(self):
        config = FlowConfig(latency=3, mode="fragmented", workload="motivational")
        bumped = config.replace(chained_bits_per_cycle=11)
        assert bumped.scheduler_policy.chained_bits_per_cycle == 11
        cleared = bumped.replace(chained_bits_per_cycle=None)
        assert cleared.scheduler_policy.chained_bits_per_cycle is None

    def test_replace_scheduler_updates_the_mirrors(self):
        config = FlowConfig(latency=3, mode="fragmented", workload="motivational")
        swapped = config.replace(
            scheduler=SchedulerPolicy(chained_bits_per_cycle=4, balance_fragments=False)
        )
        assert swapped.chained_bits_per_cycle == 4
        assert swapped.balance_fragments is False

    def test_search_policy_with_blc_mode_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            FlowConfig(
                latency=1,
                mode="blc",
                workload="motivational",
                scheduler={"policy": "search"},
            )
        assert "blc" in str(excinfo.value)


class TestSerializationShims:
    def test_wire_round_trip_is_warning_free_and_lossless(self):
        config = FlowConfig(
            latency=4,
            mode="fragmented",
            workload="fig3",
            scheduler={"policy": "search", "beam_width": 2, "starts": 3},
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            back = FlowConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert back == config
        assert back.content_hash() == config.content_hash()

    def test_paper_round_trip_is_warning_free(self):
        config = FlowConfig(latency=3, mode="fragmented", workload="motivational")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            back = FlowConfig.from_dict(config.to_dict())
        assert back == config

    def test_chained_bits_override_alias_warns_and_maps(self):
        payload = {
            "latency": 3,
            "mode": "fragmented",
            "workload": "motivational",
            "chained_bits_override": 6,
        }
        with pytest.deprecated_call():
            config = FlowConfig.from_dict(payload)
        assert config.chained_bits_per_cycle == 6
        assert config.scheduler_policy.chained_bits_per_cycle == 6

    def test_alias_conflict_rejected(self):
        payload = {
            "latency": 3,
            "mode": "fragmented",
            "workload": "motivational",
            "chained_bits_override": 6,
            "chained_bits_per_cycle": 7,
        }
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigError):
                FlowConfig.from_dict(payload)

    def test_flat_knobs_without_scheduler_key_warn(self):
        payload = {
            "latency": 3,
            "mode": "fragmented",
            "workload": "motivational",
            "chained_bits_per_cycle": 6,
        }
        with pytest.deprecated_call():
            config = FlowConfig.from_dict(payload)
        assert config.scheduler_policy.chained_bits_per_cycle == 6

    def test_legacy_hash_survives_the_deprecated_encoding(self):
        payload = {
            "latency": 3,
            "mode": "fragmented",
            "workload": "motivational",
            "chained_bits_per_cycle": 6,
            "balance_fragments": False,
        }
        with pytest.deprecated_call():
            legacy = FlowConfig.from_dict(payload)
        modern = FlowConfig(
            latency=3,
            mode="fragmented",
            workload="motivational",
            scheduler={"chained_bits_per_cycle": 6, "balance_fragments": False},
        )
        assert legacy.content_hash() == modern.content_hash()


class TestEndToEnd:
    def test_paper_run_reports_no_search_keys(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, workload="motivational"), use_cache=False
        )
        assert artifact.search is None
        assert not [k for k in artifact.report if k.startswith("search_")]

    def test_search_run_reports_provenance(self):
        artifact = Pipeline().run(
            FlowConfig(
                latency=4,
                workload="fig3",
                scheduler={"policy": "search", "beam_width": 2, "starts": 2},
            ),
            use_cache=False,
        )
        report = artifact.report
        assert report["search_policy"] == "search"
        assert report["search_beam_width"] == 2
        assert report["search_starts"] == 2
        assert report["search_objective"] <= report["search_baseline_objective"]
        assert (
            report["search_objective"],
            report["search_area"],
        ) <= (
            report["search_baseline_objective"],
            report["search_baseline_area"],
        )

    def test_paper_schedule_is_bit_identical_to_pre_policy_flow(self):
        from repro.core import TransformOptions, transform
        from repro.hls.flow import synthesize
        from repro.workloads import fig3_example

        artifact = Pipeline().run(
            FlowConfig(latency=4, mode="fragmented", workload="fig3"),
            use_cache=False,
        )
        result = transform(fig3_example(), 4, TransformOptions(check_equivalence=False))
        legacy = synthesize(
            result.transformed,
            4,
            mode="fragmented",
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        # The pipeline and the facade transform independently, and fragment
        # names embed process-global uids, so compare the placement structure
        # and the reported metrics, not object identities.
        assert sorted(artifact.schedule.cycle_of.values()) == sorted(
            legacy.schedule.cycle_of.values()
        )
        assert artifact.report["total_area"] == legacy.total_area
        assert artifact.report["cycle_length_ns"] == legacy.cycle_length_ns
        assert artifact.report["chained_bits_per_cycle"] == (
            legacy.chained_bits_per_cycle
        )
