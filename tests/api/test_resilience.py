"""Tests for the resilience policy layer: RetryPolicy, RUN codes, heartbeats."""

import threading

import pytest

from repro.api import resilience
from repro.api.resilience import (
    ON_ERROR_CHOICES,
    RUN_CODE_REGISTRY,
    AttemptRecord,
    RetryPolicy,
    build_error_row,
    exception_chain,
    run_error_title,
)


class TestRunCodeRegistry:
    def test_codes_are_stable_and_sequential(self):
        assert list(RUN_CODE_REGISTRY) == [
            "RUN001", "RUN002", "RUN003", "RUN004", "RUN005",
        ]

    def test_titles_are_nonempty(self):
        for code in RUN_CODE_REGISTRY:
            assert run_error_title(code)

    def test_unregistered_code_raises(self):
        with pytest.raises(ValueError) as excinfo:
            run_error_title("RUN999")
        assert "RUN999" in str(excinfo.value)


class TestRetryPolicyValidation:
    def test_defaults_are_one_attempt_no_timeout(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.timeout_s is None
        assert policy.on_error == "record"
        assert not policy.retries_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_s": -1.0},
            {"jitter_s": -0.1},
            {"backoff_factor": 0.5},
            {"timeout_s": 0},
            {"timeout_s": -3.0},
            {"heartbeat_timeout_s": 0},
            {"on_error": "explode"},
        ],
    )
    def test_rejects_malformed_fields(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_on_error_choices_cover_the_cli_spellings(self):
        assert ON_ERROR_CHOICES == ("record", "skip", "raise")

    def test_heartbeat_timeout_defaults_to_timeout(self):
        assert RetryPolicy(timeout_s=5.0).effective_heartbeat_timeout_s == 5.0
        assert (
            RetryPolicy(timeout_s=5.0, heartbeat_timeout_s=1.0)
            .effective_heartbeat_timeout_s
            == 1.0
        )
        assert RetryPolicy().effective_heartbeat_timeout_s is None

    def test_replace_round_trips(self):
        policy = RetryPolicy(max_attempts=3, timeout_s=2.0)
        changed = policy.replace(on_error="raise")
        assert changed.max_attempts == 3
        assert changed.timeout_s == 2.0
        assert changed.on_error == "raise"
        assert policy.on_error == "record"  # original untouched

    def test_dict_round_trip(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_s=0.1, jitter_s=0.02, timeout_s=9.0,
            on_error="skip",
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


class TestDeterministicBackoff:
    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy(max_attempts=3).delay_for("k", 1) == 0.0

    def test_delays_are_deterministic(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1, jitter_s=0.05)
        for attempt in (2, 3, 4):
            assert policy.delay_for("point-a", attempt) == policy.delay_for(
                "point-a", attempt
            )

    def test_delays_grow_exponentially(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1, jitter_s=0.0)
        assert policy.delay_for("k", 2) == pytest.approx(0.1)
        assert policy.delay_for("k", 3) == pytest.approx(0.2)
        assert policy.delay_for("k", 4) == pytest.approx(0.4)

    def test_jitter_varies_by_key_but_stays_bounded(self):
        policy = RetryPolicy(max_attempts=3, backoff_s=0.1, jitter_s=0.05)
        delays = {policy.delay_for(f"point-{i}", 2) for i in range(16)}
        assert len(delays) > 1  # different keys jitter differently
        for delay in delays:
            assert 0.1 <= delay < 0.1 + 0.05


class TestErrorRows:
    def test_build_error_row_shape(self):
        attempts = [
            AttemptRecord(attempt=1, error_code="RUN001", error="boom", elapsed_s=0.1),
            AttemptRecord(attempt=2, elapsed_s=0.2),
        ]
        row = build_error_row("pt-1", "RUN001", "boom", attempts, chain=["E: boom"])
        assert row["point_id"] == "pt-1"
        assert row["error_code"] == "RUN001"
        assert row["error_title"] == RUN_CODE_REGISTRY["RUN001"]
        assert row["error_chain"] == ["E: boom"]
        assert [a["attempt"] for a in row["attempts"]] == [1, 2]

    def test_build_error_row_rejects_unknown_codes(self):
        with pytest.raises(ValueError):
            build_error_row("pt-1", "RUN042", "boom", [])

    def test_exception_chain_walks_causes(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError as inner:
                raise RuntimeError("outer") from inner
        except RuntimeError as error:
            chain = exception_chain(error)
        assert chain[0].startswith("RuntimeError: outer")
        assert chain[1].startswith("KeyError:")

    def test_attempt_record_round_trips(self):
        record = AttemptRecord(attempt=2, error_code="RUN002", error="slow", elapsed_s=1.5)
        assert AttemptRecord.from_dict(record.to_dict()) == record


class TestHeartbeats:
    def test_heartbeat_is_per_thread(self):
        seen = {}

        def worker():
            resilience.heartbeat()
            seen["beat"] = resilience.last_heartbeat(threading.get_ident())
            resilience.clear_heartbeat(threading.get_ident())
            seen["cleared"] = resilience.last_heartbeat(threading.get_ident())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["beat"] is not None
        assert seen["cleared"] is None
        # The worker's heartbeat never leaks onto this thread's ident.
        resilience.clear_heartbeat(threading.get_ident())
        assert resilience.last_heartbeat(threading.get_ident()) is None
