"""Tests for the content-hash keyed result cache (memory + disk tiers)."""

from repro.api import FlowConfig, Pipeline, ResultCache
from repro.workloads import motivational_example


def _config(**overrides):
    base = dict(latency=3, mode="fragmented", workload="motivational")
    base.update(overrides)
    return FlowConfig(**base)


class TestMemoryTier:
    def test_same_config_hits(self):
        cache = ResultCache()
        pipeline = Pipeline(cache=cache)
        first = pipeline.run(_config())
        second = pipeline.run(_config())
        assert not first.from_cache
        assert second.from_cache
        assert second.report == first.report
        assert cache.hits == 1 and cache.misses == 1

    def test_changed_library_misses(self):
        cache = ResultCache()
        pipeline = Pipeline(cache=cache)
        pipeline.run(_config())
        other = pipeline.run(_config(adder_style="carry_lookahead"))
        assert not other.from_cache
        assert cache.hits == 0 and cache.misses == 2

    def test_changed_latency_misses(self):
        cache = ResultCache()
        pipeline = Pipeline(cache=cache)
        pipeline.run(_config())
        assert not pipeline.run(_config(latency=4)).from_cache

    def test_injected_specifications_are_fingerprinted(self):
        cache = ResultCache()
        pipeline = Pipeline(cache=cache)
        config = FlowConfig(latency=3, mode="conventional")
        first = pipeline.run(config, specification=motivational_example())
        second = pipeline.run(config, specification=motivational_example())
        assert second.from_cache
        assert second.report == first.report

    def test_stop_after_uses_distinct_entries(self):
        cache = ResultCache()
        pipeline = Pipeline(cache=cache)
        partial = pipeline.run(_config(), stop_after="schedule")
        full = pipeline.run(_config())
        assert not full.from_cache
        assert partial.report is None and full.report is not None

    def test_use_cache_false_bypasses(self):
        cache = ResultCache()
        pipeline = Pipeline(cache=cache)
        pipeline.run(_config())
        again = pipeline.run(_config(), use_cache=False)
        assert not again.from_cache

    def test_lru_bound(self):
        cache = ResultCache(max_memory_entries=2)
        pipeline = Pipeline(cache=cache)
        pipeline.run(_config(latency=3))
        pipeline.run(_config(latency=4))
        pipeline.run(_config(latency=5))
        assert len(cache) == 2
        # The oldest entry (latency 3) was evicted -> miss and re-run.
        assert not pipeline.run(_config(latency=3)).from_cache

    def test_swapped_pass_does_not_share_entries(self):
        cache = ResultCache()
        stock = Pipeline(cache=cache)
        stock.run(_config())

        def alternative_schedule_pass(artifact):
            from repro.api import schedule_pass

            schedule_pass(artifact)

        swapped = stock.replace_pass("schedule", alternative_schedule_pass)
        assert not swapped.run(_config()).from_cache


class TestDiskTier:
    def test_reports_survive_across_cache_instances(self, tmp_path):
        directory = tmp_path / "runs"
        first = Pipeline(cache=ResultCache(directory=directory)).run(_config())
        assert list(directory.glob("*.json"))

        # A fresh cache (fresh process, conceptually) finds the stored report.
        rehydrated = Pipeline(cache=ResultCache(directory=directory)).run(_config())
        assert rehydrated.from_cache
        assert rehydrated.report == first.report
        # Disk entries carry the report, not the heavyweight artifacts.
        assert rehydrated.schedule is None

    def test_corrupt_disk_entry_is_ignored(self, tmp_path):
        directory = tmp_path / "runs"
        cache = ResultCache(directory=directory)
        Pipeline(cache=cache).run(_config())
        for path in directory.glob("*.json"):
            path.write_text("{not json")
        fresh = ResultCache(directory=directory)
        assert not Pipeline(cache=fresh).run(_config()).from_cache

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(directory=tmp_path / "runs")
        pipeline = Pipeline(cache=cache)
        pipeline.run(_config())
        pipeline.run(_config())
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1
        cache.clear()
        assert len(cache) == 0


class TestCacheIsolationAndRehydration:
    def test_cache_hits_do_not_alias_caller_reports(self):
        cache = ResultCache()
        pipeline = Pipeline(cache=cache)
        first = pipeline.run(_config())
        first.report["annotation"] = "baseline"  # caller-side mutation
        second = pipeline.run(_config())
        assert "annotation" not in second.report

    def test_compare_flows_survives_disk_rehydrated_cache(self, tmp_path):
        from repro.analysis import compare_flows

        directory = tmp_path / "runs"
        warm = Pipeline(cache=ResultCache(directory=directory))
        reference = compare_flows(motivational_example(), 3, pipeline=warm)
        # A fresh cache only has the disk tier: rehydrated artifacts carry
        # reports but no synthesis objects, so compare_flows must re-run.
        cold = Pipeline(cache=ResultCache(directory=directory))
        comparison = compare_flows(motivational_example(), 3, pipeline=cold)
        assert comparison.original is not None
        assert (
            comparison.original.cycle_length_ns
            == reference.original.cycle_length_ns
        )
        assert comparison.transform_result is not None

    def test_require_full_upgrades_disk_rehydrated_entry(self, tmp_path):
        directory = tmp_path / "runs"
        Pipeline(cache=ResultCache(directory=directory)).run(_config())
        cold = Pipeline(cache=ResultCache(directory=directory))
        upgraded = cold.run(_config(), require_full=True)
        assert upgraded.synthesis is not None
        # The memory tier now holds the full artifact: the next full-run
        # request is a plain hit, no re-synthesis.
        hit = cold.run(_config(), require_full=True)
        assert hit.from_cache and hit.synthesis is not None

    def test_disk_promoted_entries_are_isolated(self, tmp_path):
        directory = tmp_path / "runs"
        Pipeline(cache=ResultCache(directory=directory)).run(_config())
        cold = Pipeline(cache=ResultCache(directory=directory))
        first = cold.run(_config())  # disk hit, promoted to memory
        first.report["poison"] = True
        second = cold.run(_config())  # memory hit
        assert "poison" not in second.report

    def test_concurrent_same_key_puts_do_not_race(self, tmp_path):
        import threading

        cache = ResultCache(directory=tmp_path / "runs")
        artifact = Pipeline().run(_config())
        errors = []

        def hammer():
            try:
                for _ in range(100):
                    cache.put("same-key", artifact)
            except OSError as error:
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
