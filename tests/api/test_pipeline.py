"""Tests for the pass pipeline: parity with the legacy facade, early stop,
pass swapping."""

import pytest

from repro.api import FlowConfig, Pipeline, PipelineStateError
from repro.core import TransformOptions, transform
from repro.hls import FlowMode, run_schedule, synthesize
from repro.workloads import fig3_example, motivational_example


class TestFullRuns:
    def test_conventional_matches_legacy_synthesize(self):
        spec = motivational_example()
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="conventional"), specification=spec
        )
        legacy = synthesize(motivational_example(), 3)
        assert artifact.synthesis.cycle_length_ns == legacy.cycle_length_ns
        assert artifact.synthesis.total_area == legacy.total_area
        assert artifact.synthesis.mode is FlowMode.CONVENTIONAL

    def test_fragmented_matches_legacy_transform_plus_synthesize(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="fragmented", workload="motivational")
        )
        result = transform(
            motivational_example(), 3, TransformOptions(check_equivalence=False)
        )
        legacy = synthesize(
            result.transformed,
            3,
            mode=FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        assert artifact.synthesis.cycle_length_ns == legacy.cycle_length_ns
        assert artifact.synthesis.execution_time_ns == legacy.execution_time_ns
        assert artifact.synthesis.total_area == legacy.total_area
        assert (
            artifact.synthesis.chained_bits_per_cycle
            == legacy.chained_bits_per_cycle
        )

    def test_blc_matches_legacy(self):
        artifact = Pipeline().run(
            FlowConfig(latency=1, mode="blc", workload="motivational")
        )
        legacy = synthesize(motivational_example(), 1, mode=FlowMode.BLC)
        assert artifact.synthesis.cycle_length_ns == legacy.cycle_length_ns
        assert artifact.synthesis.chained_bits_per_cycle == legacy.chained_bits_per_cycle

    def test_report_is_filled_and_flat(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="fragmented", workload="fig3")
        )
        report = artifact.report
        assert report["mode"] == "fragmented"
        assert report["latency"] == 3
        assert report["cycle_length_ns"] > 0
        assert report["total_area"] > 0
        assert report["config_hash"] == artifact.config.content_hash()

    def test_pass_records_in_order(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="conventional", workload="motivational")
        )
        assert artifact.completed_passes() == [
            "parse",
            "validate",
            "transform",
            "schedule",
            "time",
            "allocate",
            "emit",
            "check",
            "report",
        ]
        assert artifact.elapsed_s() >= 0

    def test_equivalence_check_lands_in_report(self):
        artifact = Pipeline().run(
            FlowConfig(
                latency=3,
                mode="fragmented",
                workload="motivational",
                check_equivalence=True,
                equivalence_vectors=10,
            )
        )
        assert artifact.report["equivalent"] is True


class TestEarlyStopAndComposition:
    def test_stop_after_schedule_leaves_later_slots_empty(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="conventional", workload="motivational"),
            stop_after="schedule",
        )
        assert artifact.schedule is not None
        assert artifact.timing is None
        assert artifact.datapath is None
        assert artifact.report is None
        assert artifact.completed_passes()[-1] == "schedule"

    def test_stop_after_unknown_pass_raises(self):
        with pytest.raises(KeyError):
            Pipeline().run(
                FlowConfig(latency=3, workload="motivational"),
                stop_after="teleport",
            )

    def test_require_raises_on_empty_slot(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, workload="motivational"), stop_after="parse"
        )
        with pytest.raises(PipelineStateError):
            artifact.require("schedule")

    def test_replace_pass_swaps_scheduler(self):
        calls = []

        def asap_schedule_pass(artifact):
            calls.append(artifact.config.latency)
            config = artifact.config
            schedule, budget = run_schedule(
                artifact.require("working_specification"),
                config.latency,
                artifact.library,
                config.mode,
                chained_bits_per_cycle=artifact.budget,
                balance_fragments=False,  # forced ASAP placement
            )
            artifact.schedule = schedule
            artifact.budget = budget

        pipeline = Pipeline().replace_pass("schedule", asap_schedule_pass)
        artifact = pipeline.run(
            FlowConfig(latency=3, mode="fragmented", workload="fig3")
        )
        assert calls == [3]
        assert artifact.synthesis is not None
        # The stock pipeline still uses the stock pass.
        assert Pipeline().passes != pipeline.passes

    def test_replace_unknown_pass_raises(self):
        with pytest.raises(KeyError):
            Pipeline().replace_pass("teleport", lambda artifact: None)

    def test_without_pass(self):
        pipeline = Pipeline().without_pass("validate")
        assert "validate" not in pipeline.pass_names()
        artifact = pipeline.run(
            FlowConfig(latency=3, mode="conventional", workload="motivational")
        )
        assert artifact.report is not None

    def test_duplicate_pass_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(
                passes=[("a", lambda artifact: None), ("a", lambda artifact: None)]
            )

    def test_injected_specification_wins_over_source(self):
        # fig3 config source, but the injected motivational spec is used.
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="conventional", workload="fig3"),
            specification=motivational_example(),
        )
        assert artifact.synthesis.specification.name == motivational_example().name


class TestValidation:
    def test_transform_false_skips_transformation(self):
        result = transform(
            fig3_example(), 3, TransformOptions(check_equivalence=False)
        )
        artifact = Pipeline().run(
            FlowConfig(
                latency=3,
                mode="fragmented",
                transform=False,
                chained_bits_per_cycle=result.chained_bits_per_cycle,
            ),
            specification=result.transformed,
        )
        assert artifact.transform_result is None
        legacy = synthesize(
            result.transformed,
            3,
            mode=FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        assert artifact.synthesis.cycle_length_ns == legacy.cycle_length_ns
