"""Tests for the declarative study layer: expansions, stable point ids,
built-in declarations matching the legacy hand-built config lists, and row
builders."""

import pytest

from repro.api import (
    FlowConfig,
    Study,
    StudyError,
    SweepEngine,
    available_studies,
    builtin_study,
    fig4_study,
)
from repro.api.study import point_id_for, table_points


class TestExpansion:
    def test_grid_orders_first_axis_slowest(self):
        study = Study("s", base={"workload": "chain:3:16"}).grid(
            latency=[3, 4], mode=["conventional", "fragmented"]
        )
        coords = [(p.config.latency, p.config.mode.value) for p in study.points()]
        assert coords == [
            (3, "conventional"),
            (3, "fragmented"),
            (4, "conventional"),
            (4, "fragmented"),
        ]

    def test_cases_multiply_points(self):
        study = (
            Study("s")
            .cases([{"workload": "motivational", "latency": 3}])
            .grid(mode=["conventional", "fragmented"])
        )
        assert len(study) == 2
        assert all(p.config.workload == "motivational" for p in study.points())

    def test_zipped_locks_axes_together(self):
        study = Study("s", base={"mode": "fragmented"}).zipped(
            workload=["motivational", "fig3"], latency=[3, 4]
        )
        coords = [(p.config.workload, p.config.latency) for p in study.points()]
        assert coords == [("motivational", 3), ("fig3", 4)]

    def test_zipped_rejects_ragged_axes(self):
        with pytest.raises(StudyError):
            Study("s").zipped(workload=["a"], latency=[3, 4])

    def test_expansions_are_immutable(self):
        base = Study("s", base={"workload": "motivational", "latency": 3})
        grown = base.grid(mode=["conventional", "fragmented"])
        base_grown = base.grid(mode=["conventional"])
        assert len(grown) == 2
        assert len(base_grown) == 1

    def test_invalid_point_is_reported_with_index(self):
        study = Study("s", base={"workload": "motivational"}).grid(latency=[3, 0])
        with pytest.raises(StudyError) as excinfo:
            study.points()
        assert "point #1" in str(excinfo.value)

    def test_duplicate_points_are_rejected(self):
        study = Study("s", base={"workload": "motivational", "latency": 3}).cases(
            [{}, {}]
        )
        with pytest.raises(StudyError) as excinfo:
            study.points()
        assert "duplicate" in str(excinfo.value)

    def test_unknown_field_is_a_study_error(self):
        study = Study("s", base={"workload": "motivational", "latency": 3}).cases(
            [{"no_such_field": 1}]
        )
        with pytest.raises(StudyError):
            study.points()


class TestPointIds:
    def test_ids_are_stable_and_hash_derived(self):
        config = FlowConfig(latency=3, mode="fragmented", workload="chain:3:16")
        point_id = point_id_for(config)
        assert point_id == point_id_for(FlowConfig.from_dict(config.to_dict()))
        assert config.content_hash()[:12] in point_id
        assert point_id.startswith("chain-3-16-fragmented-l3-")

    def test_different_configs_get_different_ids(self):
        a = FlowConfig(latency=3, workload="motivational")
        b = FlowConfig(latency=3, workload="motivational", label="x")
        assert point_id_for(a) != point_id_for(b)


class TestBuiltinStudies:
    def test_registry_contains_the_paper_artifacts(self):
        names = set(available_studies())
        assert {"table1", "table2", "table3", "fig4-chain", "fig4-adpcm"} <= names

    def test_unknown_name_raises(self):
        with pytest.raises(StudyError):
            builtin_study("table9")

    def test_table_studies_match_legacy_cli_config_lists(self):
        # The exact interleaved (conventional, fragmented) list the CLI's
        # table command used to build by hand; identical configs mean
        # identical content hashes, cache keys and rows.
        for which in ("table1", "table2", "table3"):
            legacy = []
            for name, latency in table_points(which):
                legacy.append(
                    FlowConfig(latency=latency, mode="conventional", workload=name)
                )
                legacy.append(
                    FlowConfig(latency=latency, mode="fragmented", workload=name)
                )
            assert builtin_study(which).configs() == legacy

    def test_fig4_study_matches_sweep_configs(self):
        from repro.analysis import sweep_configs

        study = fig4_study("chain:3:16", latencies=range(3, 7))
        assert study.configs() == sweep_configs(range(3, 7), workload="chain:3:16")
        assert study.stop_after == "time"

    def test_table3_names_carry_registry_prefix(self):
        workloads = {p.config.workload for p in builtin_study("table3").points()}
        assert workloads == {"adpcm_iaq", "adpcm_ttd", "adpcm_opfc_sca"}

    def test_scheduler_tuning_mixes_paper_and_search_points(self):
        study = builtin_study("scheduler-tuning")
        policies = [p.config.scheduler_policy for p in study.points()]
        kinds = {policy.policy for policy in policies}
        assert kinds == {"paper", "search"}
        assert any(policy.beam_width > 1 for policy in policies)
        assert any(policy.starts > 1 for policy in policies)


class TestSerializationRoundTrip:
    def test_every_builtin_survives_the_wire(self):
        # to_dict -> canonical JSON -> study_from_dict must resolve the same
        # point ids for every registered study -- this is exactly what the
        # server's job digest and submit path do with a study.
        import json

        from repro.api.study import available_studies, study_from_dict

        for name in available_studies():
            study = builtin_study(name)
            payload = json.loads(
                json.dumps(study.to_dict(), sort_keys=True, separators=(",", ":"))
            )
            back = study_from_dict(payload)
            assert [p.point_id for p in back.points()] == [
                p.point_id for p in study.points()
            ], name

    def test_nested_policies_serialize_to_plain_json(self):
        import json

        study = builtin_study("scheduler-tuning")
        payload = study.to_dict()
        # Must be pure JSON types all the way down (the digest canonicalizes
        # with json.dumps and no default= hook).
        json.dumps(payload)
        schedulers = [
            case["scheduler"]
            for _kind, spec in payload["expansions"]
            for case in (spec if isinstance(spec, list) else [])
            if isinstance(case, dict) and "scheduler" in case
        ]
        assert schedulers, "the tuning study lost its scheduler axes"
        assert all(isinstance(s, dict) for s in schedulers)


class TestRows:
    def test_fig4_rows_match_latency_sweep(self):
        from repro.analysis import latency_sweep

        study = fig4_study("chain:3:16", latencies=range(3, 6))
        engine = SweepEngine(stop_after=study.stop_after)
        rows = study.rows(engine.reports(study.configs()))
        sweep = latency_sweep("chain:3:16", range(3, 6))
        assert rows == sweep.as_rows()

    def test_table1_rows_match_compare_flows(self):
        from repro.analysis import compare_flows
        from repro.workloads import motivational_example

        study = builtin_study("table1")
        rows = study.rows(SweepEngine().reports(study.configs()))
        comparison = compare_flows(motivational_example(), 3)
        (row,) = rows
        assert row["original_cycle_ns"] == pytest.approx(
            comparison.original.cycle_length_ns
        )
        assert row["optimized_cycle_ns"] == pytest.approx(
            comparison.optimized.cycle_length_ns
        )
        assert row["cycle_saving_pct"] == pytest.approx(
            100.0 * comparison.cycle_saving
        )

    def test_rows_reject_mismatched_report_count(self):
        study = builtin_study("table1")
        with pytest.raises(StudyError):
            study.rows([{}])
