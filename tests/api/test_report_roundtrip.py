"""Report-row JSON round-trip across processes, for every registered workload.

The ``report`` slot is the exchange format of the persistence layer: the
result cache's disk tier, the process-pool sweep workers and the workspace
artifact store all serialize it to JSON and reload it elsewhere.  This test
pins that contract: for every registered workload, the report of a live run
serialized to JSON and reloaded in a **fresh interpreter** equals the report
a live run computes there, field for field -- including the pinned
``schema_version``.

Both the serializing run and the comparison run happen in fresh single-
purpose interpreters executing the identical point sequence: allocation
tie-breaks sort by uid-bearing auto-names, so a long-lived pytest process
(with arbitrary prior uid consumption) is not a valid baseline for
low-order routing-area values (see DESIGN.md, "Determinism caveat").
"""

import json
import os
import subprocess
import sys

from repro.api import available_workloads

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

#: A known-feasible latency per registered workload (the tables' operating
#: points); parametric families are covered via the chain family.
ROUNDTRIP_LATENCIES = {
    "motivational": 3,
    "fig3": 3,
    "elliptic": 4,
    "diffeq": 4,
    "iir4": 5,
    "fir2": 3,
    "adpcm_iaq": 3,
    "adpcm_ttd": 5,
    "adpcm_opfc_sca": 12,
    "chain:3:16": 3,
}

_WRITE_SCRIPT = r"""
import json, sys
from repro.api import REPORT_SCHEMA_VERSION, FlowConfig, Pipeline

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    matrix = json.load(handle)

pipeline = Pipeline()
entries = {}
for name, latency in matrix:
    config = FlowConfig(latency=latency, mode="fragmented", workload=name)
    report = pipeline.run(config).report
    assert report is not None
    assert report["schema_version"] == REPORT_SCHEMA_VERSION, report
    # The row must be JSON-pure before any process boundary is involved.
    assert json.loads(json.dumps(report)) == report
    entries[name] = {"config": config.to_dict(), "report": report}

with open(sys.argv[2], "w", encoding="utf-8") as handle:
    json.dump(entries, handle, sort_keys=True)
"""

_COMPARE_SCRIPT = r"""
import json, sys
from repro.api import REPORT_SCHEMA_VERSION, FlowConfig, Pipeline

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    matrix = json.load(handle)
with open(sys.argv[2], "r", encoding="utf-8") as handle:
    entries = json.load(handle)

pipeline = Pipeline()
failures = []
for name, latency in matrix:
    entry = entries[name]
    config = FlowConfig.from_dict(entry["config"])
    assert config.workload == name and config.latency == latency
    live = pipeline.run(config).report
    reloaded = entry["report"]
    if reloaded.get("schema_version") != REPORT_SCHEMA_VERSION:
        failures.append(f"{name}: schema_version {reloaded.get('schema_version')}"
                        f" != {REPORT_SCHEMA_VERSION}")
    if live != reloaded:
        diff = {key for key in set(live) | set(reloaded)
                if live.get(key) != reloaded.get(key)}
        failures.append(f"{name}: differing keys {sorted(diff)}")
for failure in failures:
    print(failure)
sys.exit(1 if failures else 0)
"""


def _fresh_process(script, *argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", script, *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )


def test_registered_workloads_cover_the_roundtrip_matrix():
    missing = set(available_workloads()) - set(ROUNDTRIP_LATENCIES)
    assert not missing, (
        f"workloads {sorted(missing)} have no round-trip operating point; "
        "add them to ROUNDTRIP_LATENCIES"
    )


def test_report_rows_roundtrip_into_a_fresh_process(tmp_path):
    matrix_path = tmp_path / "matrix.json"
    matrix_path.write_text(json.dumps(sorted(ROUNDTRIP_LATENCIES.items())))
    payload_path = tmp_path / "reports.json"

    writer = _fresh_process(_WRITE_SCRIPT, str(matrix_path), str(payload_path))
    assert writer.returncode == 0, (
        f"serializing run failed:\n{writer.stdout}{writer.stderr}"
    )
    entries = json.loads(payload_path.read_text())
    assert set(entries) == set(ROUNDTRIP_LATENCIES)

    comparer = _fresh_process(_COMPARE_SCRIPT, str(matrix_path), str(payload_path))
    assert comparer.returncode == 0, (
        f"fresh-process round-trip failed:\n{comparer.stdout}{comparer.stderr}"
    )
