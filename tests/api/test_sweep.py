"""Tests for the parallel sweep engine: determinism, error isolation,
executor parity."""

import pytest

from repro.api import FlowConfig, Pipeline, ResultCache, SweepEngine
from repro.analysis import latency_sweep
from repro.workloads import addition_chain


def _configs(latencies=(3, 4, 5), workload="chain:3:16"):
    return [
        FlowConfig(latency=latency, mode=mode, workload=workload)
        for latency in latencies
        for mode in ("conventional", "fragmented")
    ]


class TestOrderingAndParity:
    def test_results_follow_input_order_under_threads(self):
        configs = _configs(latencies=(7, 3, 5, 4, 6))
        outcomes = SweepEngine(max_workers=4, executor="thread").run(configs)
        assert [outcome.index for outcome in outcomes] == list(range(len(configs)))
        assert [outcome.config.latency for outcome in outcomes] == [
            config.latency for config in configs
        ]
        assert all(outcome.ok for outcome in outcomes)

    def test_thread_and_serial_agree(self):
        configs = _configs()
        serial = SweepEngine(executor="serial").run(configs)
        threaded = SweepEngine(max_workers=4, executor="thread").run(configs)
        assert [outcome.report for outcome in serial] == [
            outcome.report for outcome in threaded
        ]

    def test_process_executor_agrees(self):
        configs = _configs(latencies=(3, 4))
        serial = SweepEngine(executor="serial").run(configs)
        process = SweepEngine(max_workers=2, executor="process").run(configs)
        assert all(outcome.ok for outcome in process)
        assert [outcome.report for outcome in process] == [
            outcome.report for outcome in serial
        ]
        # Process workers return reports only; full artifacts stay local.
        assert all(outcome.artifact is None for outcome in process)

    def test_repeated_runs_are_deterministic(self):
        configs = _configs()
        engine = SweepEngine(max_workers=4, executor="thread")
        first = engine.run(configs)
        second = engine.run(configs)
        assert [outcome.report for outcome in first] == [
            outcome.report for outcome in second
        ]


class TestErrorsAndValidation:
    def test_bad_point_is_isolated(self):
        configs = [
            FlowConfig(latency=3, mode="conventional", workload="chain:3:16"),
            FlowConfig(latency=3, mode="conventional", workload="no_such_workload"),
            FlowConfig(latency=4, mode="conventional", workload="chain:3:16"),
        ]
        outcomes = SweepEngine(max_workers=3, executor="thread").run(configs)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "no_such_workload" in outcomes[1].error

    def test_reports_raises_on_failures(self):
        configs = [
            FlowConfig(latency=3, mode="conventional", workload="no_such_workload")
        ]
        with pytest.raises(RuntimeError):
            SweepEngine().reports(configs)

    def test_process_executor_rejects_injected_specs(self):
        configs = [FlowConfig(latency=3, mode="conventional")]
        engine = SweepEngine(executor="process")
        with pytest.raises(ValueError):
            engine.run(configs, specifications=[addition_chain(3, 16)])

    def test_process_executor_rejects_sourceless_configs(self):
        with pytest.raises(ValueError):
            SweepEngine(executor="process").run([FlowConfig(latency=3)])

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(executor="gpu")

    def test_misaligned_specifications_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine().run(
                [FlowConfig(latency=3)], specifications=[]
            )

    def test_empty_sweep(self):
        assert SweepEngine().run([]) == []


class TestSharedCache:
    def test_engine_shares_pipeline_cache_across_runs(self):
        cache = ResultCache()
        engine = SweepEngine(Pipeline(cache=cache), max_workers=4, executor="thread")
        configs = _configs()
        engine.run(configs)
        misses_after_first = cache.misses
        engine.run(configs)
        assert cache.misses == misses_after_first  # all hits the second time
        assert cache.hits >= len(configs)


class TestLatencySweepIntegration:
    def test_factory_and_workload_sources_agree(self):
        latencies = (3, 4, 5)
        by_name = latency_sweep("chain:3:16", latencies)
        by_factory = latency_sweep(lambda: addition_chain(3, 16), latencies)
        assert by_name.points == by_factory.points

    def test_parallel_sweep_matches_serial(self):
        latencies = (3, 4, 5, 6)
        serial = latency_sweep("chain:3:16", latencies)
        parallel = latency_sweep(
            "chain:3:16", latencies, max_workers=4, executor="thread"
        )
        assert serial.points == parallel.points

    def test_empty_latencies_rejected(self):
        with pytest.raises(ValueError):
            latency_sweep("chain:3:16", [])


class TestRound3Regressions:
    def test_reports_rejects_reportless_pipelines(self):
        from repro.api import Pipeline

        engine = SweepEngine(Pipeline().without_pass("report"))
        with pytest.raises(RuntimeError) as excinfo:
            engine.reports([FlowConfig(latency=3, workload="chain:3:16")])
        assert "report pass" in str(excinfo.value)

    def test_process_workers_share_disk_cache(self, tmp_path):
        from repro.api import Pipeline, ResultCache

        directory = tmp_path / "runs"
        configs = [
            FlowConfig(latency=latency, mode="fragmented", workload="chain:3:16")
            for latency in (3, 4)
        ]
        engine = SweepEngine(
            Pipeline(cache=ResultCache(directory=directory)),
            max_workers=2,
            executor="process",
        )
        first = engine.reports(configs)
        assert len(list(directory.glob("*.json"))) >= len(configs)
        second = engine.reports(configs)
        assert second == first

    def test_process_executor_rejects_customized_passes(self):
        engine = SweepEngine(
            Pipeline().without_pass("validate"), executor="process"
        )
        with pytest.raises(ValueError) as excinfo:
            engine.run([FlowConfig(latency=3, workload="chain:3:16")])
        assert "pass list" in str(excinfo.value)

    def test_sweep_configs_map_validation_flags(self):
        from repro.analysis import sweep_configs
        from repro.core import TransformOptions

        configs = sweep_configs(
            [3],
            workload="chain:3:16",
            transform_options=TransformOptions(
                check_equivalence=False,
                validate_input=False,
                validate_output=False,
            ),
        )
        assert all(not config.validate_input for config in configs)
        assert all(not config.validate_output for config in configs)
