"""Tests for the parallel sweep engine: determinism, error isolation,
executor parity."""

import pytest

from repro.api import FlowConfig, Pipeline, ResultCache, SweepEngine
from repro.analysis import latency_sweep
from repro.workloads import addition_chain


def _configs(latencies=(3, 4, 5), workload="chain:3:16"):
    return [
        FlowConfig(latency=latency, mode=mode, workload=workload)
        for latency in latencies
        for mode in ("conventional", "fragmented")
    ]


class TestOrderingAndParity:
    def test_results_follow_input_order_under_threads(self):
        configs = _configs(latencies=(7, 3, 5, 4, 6))
        outcomes = SweepEngine(max_workers=4, executor="thread").run(configs)
        assert [outcome.index for outcome in outcomes] == list(range(len(configs)))
        assert [outcome.config.latency for outcome in outcomes] == [
            config.latency for config in configs
        ]
        assert all(outcome.ok for outcome in outcomes)

    def test_thread_and_serial_agree(self):
        configs = _configs()
        serial = SweepEngine(executor="serial").run(configs)
        threaded = SweepEngine(max_workers=4, executor="thread").run(configs)
        assert [outcome.report for outcome in serial] == [
            outcome.report for outcome in threaded
        ]

    def test_process_executor_agrees(self):
        configs = _configs(latencies=(3, 4))
        serial = SweepEngine(executor="serial").run(configs)
        process = SweepEngine(max_workers=2, executor="process").run(configs)
        assert all(outcome.ok for outcome in process)
        assert [outcome.report for outcome in process] == [
            outcome.report for outcome in serial
        ]
        # Process workers return reports only; full artifacts stay local.
        assert all(outcome.artifact is None for outcome in process)

    def test_repeated_runs_are_deterministic(self):
        configs = _configs()
        engine = SweepEngine(max_workers=4, executor="thread")
        first = engine.run(configs)
        second = engine.run(configs)
        assert [outcome.report for outcome in first] == [
            outcome.report for outcome in second
        ]


class TestErrorsAndValidation:
    def test_bad_point_is_isolated(self):
        configs = [
            FlowConfig(latency=3, mode="conventional", workload="chain:3:16"),
            FlowConfig(latency=3, mode="conventional", workload="no_such_workload"),
            FlowConfig(latency=4, mode="conventional", workload="chain:3:16"),
        ]
        outcomes = SweepEngine(max_workers=3, executor="thread").run(configs)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "no_such_workload" in outcomes[1].error

    def test_reports_raises_on_failures(self):
        configs = [
            FlowConfig(latency=3, mode="conventional", workload="no_such_workload")
        ]
        with pytest.raises(RuntimeError):
            SweepEngine().reports(configs)

    def test_process_executor_rejects_injected_specs(self):
        configs = [FlowConfig(latency=3, mode="conventional")]
        engine = SweepEngine(executor="process")
        with pytest.raises(ValueError):
            engine.run(configs, specifications=[addition_chain(3, 16)])

    def test_process_executor_rejects_sourceless_configs(self):
        with pytest.raises(ValueError):
            SweepEngine(executor="process").run([FlowConfig(latency=3)])

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(executor="gpu")

    def test_misaligned_specifications_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine().run(
                [FlowConfig(latency=3)], specifications=[]
            )

    def test_empty_sweep(self):
        assert SweepEngine().run([]) == []


class TestStreaming:
    """The submit()/as_completed() streaming surface."""

    def test_as_completed_yields_every_point(self):
        configs = _configs(latencies=(3, 4, 5))
        run = SweepEngine().submit(configs)
        outcomes = list(run.as_completed())
        assert len(outcomes) == len(configs)
        assert all(outcome.ok for outcome in outcomes)
        assert sorted(outcome.index for outcome in outcomes) == list(
            range(len(configs))
        )

    def test_serial_stream_is_lazy_and_ordered(self):
        configs = _configs(latencies=(3, 4))
        run = SweepEngine().submit(configs)
        stream = run.as_completed()
        first = next(stream)
        assert first.index == 0
        # Nothing beyond the first point has run yet; the rest stream on
        # demand in input order (the serial executor has no pool).
        rest = [outcome.index for outcome in stream]
        assert rest == [1, 2, 3]

    def test_results_restores_input_order_after_partial_consumption(self):
        configs = _configs(latencies=(5, 3, 4))
        run = SweepEngine(max_workers=4, executor="thread").submit(configs)
        stream = run.as_completed()
        next(stream)  # consume one outcome out of order
        outcomes = run.results()
        assert [outcome.index for outcome in outcomes] == list(range(len(configs)))
        assert all(outcome.ok for outcome in outcomes)

    def test_run_shim_equals_streamed_results(self):
        configs = _configs()
        batch = SweepEngine().run(configs)
        streamed = SweepEngine().submit(configs).results()
        assert [outcome.report for outcome in batch] == [
            outcome.report for outcome in streamed
        ]

    def test_progress_callback_sees_every_outcome(self):
        configs = _configs(latencies=(3, 4))
        seen = []
        run = SweepEngine(max_workers=2, executor="thread").submit(
            configs, on_outcome=lambda outcome: seen.append(outcome.index)
        )
        run.results()
        assert sorted(seen) == list(range(len(configs)))

    def test_thread_stream_completion_order_covers_all(self):
        configs = _configs(latencies=(7, 3, 5))
        run = SweepEngine(max_workers=3, executor="thread").submit(configs)
        outcomes = list(run.as_completed())
        assert sorted(o.index for o in outcomes) == list(range(len(configs)))
        reports = SweepEngine().reports(configs)
        by_index = {o.index: o.report for o in outcomes}
        assert [by_index[i] for i in range(len(configs))] == reports


class TestCancellation:
    def test_serial_cancel_mid_stream(self):
        configs = _configs(latencies=(3, 4, 5))
        run = SweepEngine().submit(configs)
        stream = run.as_completed()
        first = next(stream)
        assert first.ok
        run.cancel()
        rest = list(stream)
        assert all(outcome.cancelled for outcome in rest)
        assert all(not outcome.ok for outcome in rest)
        assert all(outcome.report is None for outcome in rest)

    def test_cancel_from_progress_callback(self):
        configs = _configs(latencies=(3, 4, 5))
        engine = SweepEngine()
        holder = {}

        def on_outcome(outcome):
            if not outcome.cancelled:
                holder["run"].cancel()

        holder["run"] = engine.submit(configs, on_outcome=on_outcome)
        outcomes = holder["run"].results()
        executed = [o for o in outcomes if not o.cancelled]
        cancelled = [o for o in outcomes if o.cancelled]
        assert len(executed) == 1
        assert len(cancelled) == len(configs) - 1

    def test_cancel_before_iteration_runs_nothing(self):
        configs = _configs(latencies=(3, 4))
        run = SweepEngine().submit(configs)
        run.cancel()
        outcomes = run.results()
        assert all(outcome.cancelled for outcome in outcomes)

    def test_cancelled_stays_false_after_a_normal_pooled_drain(self):
        configs = _configs(latencies=(3, 4))
        run = SweepEngine(max_workers=2, executor="thread").submit(configs)
        outcomes = list(run.as_completed())
        assert all(outcome.ok for outcome in outcomes)
        assert not run.cancelled

    def test_dropping_the_stream_cancels_queued_points(self):
        # Abandoning as_completed() without an explicit cancel() must not
        # run the rest of the sweep in background threads.
        import threading

        release = threading.Event()
        executed = []

        def slow_pass(artifact):
            executed.append(artifact.config.latency)
            assert release.wait(10)

        pipeline = Pipeline([("sleep", slow_pass)])
        configs = [
            FlowConfig(latency=3 + index, workload="chain:3:16")
            for index in range(8)
        ]
        run = SweepEngine(pipeline, max_workers=1, executor="thread").submit(configs)
        stream = run.as_completed()
        drainer = threading.Thread(target=lambda: next(stream, None))
        drainer.start()
        release.set()
        drainer.join(timeout=10)
        assert not drainer.is_alive()
        stream.close()  # drop the iterator without cancel()
        assert run.cancelled
        # Only what had started before the drop ever executes.
        assert len(executed) <= 2

    def test_thread_cancel_lets_inflight_finish_and_skips_the_rest(self):
        # Two workers block inside a custom pass; once both are in flight the
        # sweep is cancelled and the workers released.  Exactly the two
        # in-flight points finish; the queued ones are skipped by the guard.
        import threading

        started = threading.Semaphore(0)
        release = threading.Event()

        def slow_pass(artifact):
            started.release()
            assert release.wait(10)

        pipeline = Pipeline([("sleep", slow_pass)])
        configs = [
            FlowConfig(latency=3 + index, workload="chain:3:16")
            for index in range(6)
        ]
        run = SweepEngine(pipeline, max_workers=2, executor="thread").submit(configs)
        collected = []
        drainer = threading.Thread(
            target=lambda: collected.extend(run.as_completed())
        )
        drainer.start()
        started.acquire()
        started.acquire()
        run.cancel()
        release.set()
        drainer.join(timeout=10)
        assert not drainer.is_alive()
        outcomes = run.results()
        executed = [outcome for outcome in outcomes if not outcome.cancelled]
        assert len(executed) == 2
        assert len(outcomes) == len(configs)


class TestSharedCache:
    def test_engine_shares_pipeline_cache_across_runs(self):
        cache = ResultCache()
        engine = SweepEngine(Pipeline(cache=cache), max_workers=4, executor="thread")
        configs = _configs()
        engine.run(configs)
        misses_after_first = cache.misses
        engine.run(configs)
        assert cache.misses == misses_after_first  # all hits the second time
        assert cache.hits >= len(configs)


class TestLatencySweepIntegration:
    def test_factory_and_workload_sources_agree(self):
        latencies = (3, 4, 5)
        by_name = latency_sweep("chain:3:16", latencies)
        by_factory = latency_sweep(lambda: addition_chain(3, 16), latencies)
        assert by_name.points == by_factory.points

    def test_parallel_sweep_matches_serial(self):
        latencies = (3, 4, 5, 6)
        serial = latency_sweep("chain:3:16", latencies)
        parallel = latency_sweep(
            "chain:3:16", latencies, max_workers=4, executor="thread"
        )
        assert serial.points == parallel.points

    def test_empty_latencies_rejected(self):
        with pytest.raises(ValueError):
            latency_sweep("chain:3:16", [])


class TestRound3Regressions:
    def test_reports_rejects_reportless_pipelines(self):
        from repro.api import Pipeline

        engine = SweepEngine(Pipeline().without_pass("report"))
        with pytest.raises(RuntimeError) as excinfo:
            engine.reports([FlowConfig(latency=3, workload="chain:3:16")])
        assert "report pass" in str(excinfo.value)

    def test_process_workers_share_disk_cache(self, tmp_path):
        from repro.api import Pipeline, ResultCache

        directory = tmp_path / "runs"
        configs = [
            FlowConfig(latency=latency, mode="fragmented", workload="chain:3:16")
            for latency in (3, 4)
        ]
        engine = SweepEngine(
            Pipeline(cache=ResultCache(directory=directory)),
            max_workers=2,
            executor="process",
        )
        first = engine.reports(configs)
        assert len(list(directory.glob("*.json"))) >= len(configs)
        second = engine.reports(configs)
        assert second == first

    def test_process_executor_rejects_customized_passes(self):
        engine = SweepEngine(
            Pipeline().without_pass("validate"), executor="process"
        )
        with pytest.raises(ValueError) as excinfo:
            engine.run([FlowConfig(latency=3, workload="chain:3:16")])
        assert "pass list" in str(excinfo.value)

    def test_sweep_configs_map_validation_flags(self):
        from repro.analysis import sweep_configs
        from repro.core import TransformOptions

        configs = sweep_configs(
            [3],
            workload="chain:3:16",
            transform_options=TransformOptions(
                check_equivalence=False,
                validate_input=False,
                validate_output=False,
            ),
        )
        assert all(not config.validate_input for config in configs)
        assert all(not config.validate_output for config in configs)
