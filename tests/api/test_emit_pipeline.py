"""The emit pass, config plumbing and CLI verb of the RTL backend."""

import json

import pytest

from repro.api import REPORT_SCHEMA_VERSION, FlowConfig, Pipeline
from repro.api.cli import main
from repro.api.config import ConfigError
from repro.api.study import builtin_study


class TestConfigPlumbing:
    def test_emit_defaults_off(self):
        config = FlowConfig(latency=3, workload="motivational")
        assert config.emit is False and config.emit_check is False

    def test_emit_check_requires_emit(self):
        with pytest.raises(ConfigError):
            FlowConfig(latency=3, workload="motivational", emit_check=True)

    def test_emit_flags_are_content_hashed(self):
        base = FlowConfig(latency=3, workload="motivational")
        emitted = base.replace(emit=True)
        checked = emitted.replace(emit_check=True)
        assert len({base.content_hash(), emitted.content_hash(), checked.content_hash()}) == 3

    def test_emit_flags_round_trip_json(self):
        config = FlowConfig(
            latency=3, mode="fragmented", workload="fig3", emit=True, emit_check=True
        )
        assert FlowConfig.from_json(config.to_json()) == config


class TestEmitPass:
    def test_default_run_skips_emission(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="fragmented", workload="motivational"),
            use_cache=False,
        )
        assert artifact.emission is None
        assert "emit_gate_count" not in artifact.report

    def test_emit_fills_slot_and_report(self):
        artifact = Pipeline().run(
            FlowConfig(
                latency=3, mode="fragmented", workload="motivational", emit=True
            ),
            use_cache=False,
        )
        emission = artifact.emission
        assert emission is not None
        assert emission.check is None  # emit_check was off
        report = artifact.report
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["emit_gate_count"] == emission.stats.gate_count > 0
        assert report["emit_fsm_states"] == 3
        assert report["emit_register_bits"] == 5  # the paper's five stored bits
        assert "emit_check_ok" not in report

    def test_emit_check_verifies_and_stamps_report(self):
        artifact = Pipeline().run(
            FlowConfig(
                latency=3,
                mode="conventional",
                workload="adpcm_ttd",
                emit=True,
                emit_check=True,
                equivalence_vectors=12,
            ),
            use_cache=False,
        )
        assert artifact.emission is not None and artifact.emission.check is not None
        assert artifact.emission.check.equivalent
        assert artifact.report["emit_check_ok"] is True
        assert artifact.report["emit_check_vectors"] == (
            artifact.emission.check.vectors_checked
        )

    def test_stop_after_emit_is_a_valid_pass(self):
        artifact = Pipeline().run(
            FlowConfig(latency=3, mode="fragmented", workload="motivational", emit=True),
            use_cache=False,
            stop_after="emit",
        )
        assert artifact.emission is not None
        assert artifact.report is None  # the report pass never ran


class TestEmissionStudy:
    def test_builtin_emission_study_declares_checked_points(self):
        study = builtin_study("emission")
        points = study.points()
        assert len(points) == 4
        for point in points:
            assert point.config.emit and point.config.emit_check

    def test_emission_rows_carry_stats(self, tmp_path):
        from repro.api.workspace import Workspace

        study = builtin_study("emission")
        workspace = Workspace(tmp_path / "ws")
        result = workspace.run_study(study)
        assert result.complete
        rows = result.rows()
        assert len(rows) == 4
        for row in rows:
            assert row["emit_gate_count"] > 0
            assert row["emit_check_ok"] is True
        # the rows resume from the store with zero recomputation
        again = workspace.run_study(study)
        assert again.loaded == 4 and again.ran == 0


class TestEmitCli:
    def test_emit_check_human_output(self, capsys):
        assert main(["emit", "motivational", "--check"]) == 0
        out = capsys.readouterr().out
        assert "emitted example_optimized_impl" in out
        assert "BIT-IDENTICAL" in out

    def test_emit_json_with_verilog(self, tmp_path, capsys):
        path = tmp_path / "out.v"
        code = main(
            [
                "emit",
                "adpcm_iaq",
                "--verilog",
                str(path),
                "--check",
                "--equivalence-vectors",
                "10",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["check"]["equivalent"] is True
        assert payload["stats"]["emit_gate_count"] > 0
        assert payload["verilog"]["path"] == str(path)
        text = path.read_text()
        assert text.splitlines()[4].startswith("module adpcm_iaq_optimized_impl")

    def test_emit_default_latency_comes_from_tables(self, capsys):
        # fir2's Table II latency axis starts at 5, not the generic 3.
        assert main(["emit", "fir2", "--mode", "conventional"]) == 0
        assert "latency=5" in capsys.readouterr().out

    def test_emit_conventional_mode(self, capsys):
        assert main(["emit", "motivational", "--mode", "conventional", "--check"]) == 0
        assert "BIT-IDENTICAL" in capsys.readouterr().out

    def test_emit_unknown_workload_errors(self, capsys):
        assert main(["emit", "nonsense"]) == 2
        assert "unknown workload" in capsys.readouterr().err
