"""Tests for FlowConfig: validation, coercion, serialization, hashing."""

import json

import pytest

from repro.api import ConfigError, FlowConfig, available_workloads, resolve_workload
from repro.hls import FlowMode
from repro.techlib import AdderStyle


class TestConstructionAndCoercion:
    def test_string_mode_is_coerced(self):
        config = FlowConfig(latency=3, mode="fragmented")
        assert config.mode is FlowMode.FRAGMENTED

    def test_string_mode_is_case_insensitive(self):
        assert FlowConfig(latency=3, mode=" Fragmented ").mode is FlowMode.FRAGMENTED

    def test_invalid_mode_lists_valid_ones(self):
        with pytest.raises(ValueError) as excinfo:
            FlowConfig(latency=3, mode="turbo")
        message = str(excinfo.value)
        assert "turbo" in message
        for mode in FlowMode:
            assert mode.value in message

    def test_string_adder_style_is_coerced(self):
        config = FlowConfig(latency=3, adder_style="carry_lookahead")
        assert config.adder_style is AdderStyle.CARRY_LOOKAHEAD

    def test_invalid_adder_style(self):
        with pytest.raises(ConfigError):
            FlowConfig(latency=3, adder_style="quantum")

    def test_latency_must_be_positive(self):
        with pytest.raises(ConfigError):
            FlowConfig(latency=0)

    def test_zero_chained_bits_rejected(self):
        # 0 must NOT be treated as "unset".
        with pytest.raises(ConfigError):
            FlowConfig(latency=3, chained_bits_per_cycle=0)

    def test_both_sources_rejected(self):
        with pytest.raises(ConfigError):
            FlowConfig(latency=3, workload="motivational", spec_text="spec x")

    def test_wants_transform_follows_mode(self):
        assert FlowConfig(latency=3, mode="fragmented").wants_transform
        assert not FlowConfig(latency=3, mode="conventional").wants_transform
        assert not FlowConfig(
            latency=3, mode="fragmented", transform=False
        ).wants_transform


class TestSerialization:
    def test_dict_round_trip_is_lossless(self):
        config = FlowConfig(
            latency=5,
            mode="fragmented",
            workload="fig3",
            adder_style="carry_lookahead",
            chained_bits_per_cycle=7,
            balance_fragments=False,
            check_equivalence=True,
            label="point-a",
        )
        assert FlowConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip_is_lossless(self):
        config = FlowConfig(latency=4, mode="blc", workload="chain:3:16")
        restored = FlowConfig.from_json(config.to_json())
        assert restored == config
        assert restored.content_hash() == config.content_hash()

    def test_to_dict_is_json_serializable(self):
        config = FlowConfig(latency=3, mode="fragmented")
        json.dumps(config.to_dict())  # must not raise

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            FlowConfig.from_dict({"latency": 3, "warp_speed": True})
        assert "warp_speed" in str(excinfo.value)

    def test_content_hash_differs_on_library_change(self):
        base = FlowConfig(latency=3, workload="motivational")
        other = base.replace(adder_style="carry_lookahead")
        assert base.content_hash() != other.content_hash()

    def test_content_hash_stable(self):
        config = FlowConfig(latency=3, workload="motivational")
        assert config.content_hash() == config.content_hash()
        assert config.content_hash() == FlowConfig(
            latency=3, workload="motivational"
        ).content_hash()

    def test_content_hash_serializes_once(self, monkeypatch):
        """Hashing a config twice must do no repeat JSON serialization work."""
        config = FlowConfig(latency=3, workload="motivational")
        calls = {"count": 0}
        original = FlowConfig.semantic_dict

        def counting(self, **kwargs):
            calls["count"] += 1
            return original(self, **kwargs)

        monkeypatch.setattr(FlowConfig, "semantic_dict", counting)
        first = config.content_hash()
        second = config.content_hash()
        assert first == second
        assert calls["count"] == 1

    def test_content_hash_cache_does_not_leak_through_replace(self):
        config = FlowConfig(latency=3, workload="motivational")
        original_hash = config.content_hash()  # populate the cache
        changed = config.replace(latency=4)
        assert changed.content_hash() != original_hash
        assert config.content_hash() == original_hash


class TestWorkloadResolution:
    def test_registered_workloads_resolve(self):
        for name in available_workloads():
            spec = resolve_workload(name)
            assert spec.operation_count() > 0

    def test_parametric_chain(self):
        spec = resolve_workload("chain:3:16")
        assert spec.additive_operation_count() == 3

    def test_parametric_tree(self):
        spec = resolve_workload("tree:4:8")
        assert spec.additive_operation_count() >= 3

    def test_unknown_workload_lists_known_ones(self):
        with pytest.raises(ConfigError) as excinfo:
            resolve_workload("nonexistent")
        assert "motivational" in str(excinfo.value)

    def test_resolved_workloads_are_memoized_and_frozen(self):
        from repro.ir.spec import SpecificationError
        from repro.ir.types import BitVectorType
        from repro.ir.values import Variable

        first = resolve_workload("motivational")
        assert resolve_workload("motivational") is first
        assert first.frozen
        # Mutating the shared instance must fail loudly, not poison caches.
        with pytest.raises(SpecificationError):
            first.add_variable(Variable("intruder", BitVectorType(4)))

    def test_workload_factories_stay_mutable(self):
        from repro.workloads import ALL_WORKLOADS

        fresh = ALL_WORKLOADS["motivational"]()
        assert not fresh.frozen
        assert fresh is not resolve_workload("motivational")

    def test_malformed_parametric(self):
        with pytest.raises(ConfigError):
            resolve_workload("chain:three:16")

    def test_config_without_source_raises_on_resolve(self):
        with pytest.raises(ConfigError):
            FlowConfig(latency=3).resolve_specification()

    def test_spec_text_source(self):
        text = "\n".join(
            [
                "spec tiny",
                "input a, b : 8",
                "output y : 8",
                "y = a + b",
            ]
        )
        config = FlowConfig(latency=1, spec_text=text)
        spec = config.resolve_specification()
        assert spec.name == "tiny"


class TestEquivalenceOptions:
    def test_seed_and_vectors_round_trip(self):
        config = FlowConfig(
            latency=3, check_equivalence=True, equivalence_vectors=7,
            equivalence_seed=42,
        )
        assert FlowConfig.from_dict(config.to_dict()) == config

    def test_seed_and_vectors_change_content_hash(self):
        base = FlowConfig(latency=3, workload="motivational")
        assert base.content_hash() != base.replace(
            equivalence_seed=1
        ).content_hash()
        assert base.content_hash() != base.replace(
            equivalence_vectors=99
        ).content_hash()

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ConfigError):
            FlowConfig(latency=3, equivalence_seed="lucky")
        with pytest.raises(ConfigError):
            FlowConfig(latency=3, equivalence_seed=True)

    def test_seed_reaches_the_equivalence_check(self):
        from repro.api import Pipeline

        artifact = Pipeline().run(
            FlowConfig(
                latency=3,
                mode="fragmented",
                workload="motivational",
                check_equivalence=True,
                equivalence_vectors=5,
                equivalence_seed=77,
            ),
            use_cache=False,
        )
        equivalence = artifact.transform_result.equivalence
        assert equivalence is not None and equivalence.equivalent
        # 5 randoms plus the corner set.
        assert equivalence.vectors_checked > 5


class TestValidationFlags:
    def test_validate_flags_round_trip(self):
        config = FlowConfig(latency=3, validate_input=False, validate_output=False)
        assert FlowConfig.from_dict(config.to_dict()) == config

    def test_validate_output_false_skips_output_validation(self):
        # Smoke: the flag reaches the transform pass without error.
        from repro.api import Pipeline

        artifact = Pipeline().run(
            FlowConfig(
                latency=3,
                mode="fragmented",
                workload="motivational",
                validate_output=False,
            )
        )
        assert artifact.report is not None
