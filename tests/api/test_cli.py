"""Smoke tests for the ``python -m repro`` command-line interface."""

import json
import os
import subprocess
import sys

import pytest

from repro.api.cli import main

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def run_cli(*argv):
    """Run the CLI in-process, capturing the exit code."""
    return main(list(argv))


class TestRun:
    def test_run_fragmented(self, capsys):
        assert run_cli("run", "motivational", "--latency", "3", "-m", "fragmented") == 0
        out = capsys.readouterr().out
        assert "cycle_length_ns" in out
        assert "fragmented" in out

    def test_run_json_report(self, capsys):
        assert (
            run_cli("run", "fig3", "-l", "3", "-m", "fragmented", "--json") == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["latency"] == 3
        assert report["mode"] == "fragmented"
        assert report["total_area"] > 0

    def test_run_parametric_workload(self, capsys):
        assert run_cli("run", "chain:3:16", "-l", "3", "--json") == 0
        assert json.loads(capsys.readouterr().out)["mode"] == "conventional"

    def test_run_stop_after(self, capsys):
        assert run_cli("run", "motivational", "-l", "3", "--stop-after", "schedule") == 0
        out = capsys.readouterr().out
        assert "stopped after schedule" in out

    def test_run_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "tiny.spec"
        spec_file.write_text(
            "spec tiny\ninput a, b : 8\noutput y : 8\ny = a + b\n"
        )
        assert run_cli("run", "--spec-file", str(spec_file), "-l", "1", "--json") == 0
        assert json.loads(capsys.readouterr().out)["name"] == "tiny"

    def test_run_equivalence_flags(self, capsys):
        assert (
            run_cli(
                "run", "motivational", "-l", "3", "-m", "fragmented",
                "--check-equivalence", "--equivalence-vectors", "5",
                "--equivalence-seed", "99", "--json",
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["equivalent"] is True
        assert report["equivalence_vectors"] > 5  # randoms + corner set

    def test_run_rejects_unknown_mode(self, capsys):
        assert run_cli("run", "motivational", "-l", "3", "-m", "warp") == 2
        assert "warp" in capsys.readouterr().err

    def test_run_rejects_unknown_workload(self, capsys):
        assert run_cli("run", "no_such", "-l", "3") == 2

    def test_run_requires_exactly_one_source(self, capsys):
        assert run_cli("run", "-l", "3") == 2

    def test_run_with_cache_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert run_cli("run", "motivational", "-l", "3", "--cache-dir", cache_dir) == 0
        assert os.listdir(cache_dir)
        # Second invocation reuses the stored report.
        assert run_cli("run", "motivational", "-l", "3", "--cache-dir", cache_dir) == 0


class TestSweepAndTable:
    def test_sweep_parallel_json(self, capsys):
        assert (
            run_cli(
                "sweep",
                "chain:3:16",
                "--latencies",
                "3:6",
                "--workers",
                "4",
                "--json",
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert [row["latency"] for row in rows] == [3, 4, 5, 6]
        assert all(
            row["optimized_cycle_ns"] <= row["original_cycle_ns"] + 1e-9
            for row in rows
        )

    def test_sweep_comma_latencies(self, capsys):
        assert run_cli("sweep", "chain:3:16", "--latencies", "3,5", "--json") == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["latency"] for row in rows] == [3, 5]

    def test_table1(self, capsys):
        assert run_cli("table", "table1", "--json") == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["benchmark"] == "motivational"
        assert rows[0]["cycle_saving_pct"] > 50

    def test_list_workloads(self, capsys):
        assert run_cli("list-workloads") == 0
        out = capsys.readouterr().out
        assert "motivational" in out
        assert "chain:<n>:<w>" in out


class TestStudy:
    def test_study_list(self, capsys):
        assert run_cli("study", "list") == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "table3", "fig4-chain", "fig4-adpcm"):
            assert name in out

    def test_study_list_json(self, capsys):
        assert run_cli("study", "list", "--json") == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["study"]: entry for entry in entries}
        assert by_name["table1"]["points"] == 2

    def test_study_run_status_report_cycle(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")

        # Interrupt after the first executed point.
        assert (
            run_cli(
                "study", "run", "table1",
                "--workspace", workspace, "--max-points", "1", "--json",
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["ran"] == 1 and summary["cancelled"] == 1
        assert not summary["complete"]

        assert run_cli("study", "status", "table1", "--workspace", workspace,
                       "--json") == 0
        status = json.loads(capsys.readouterr().out)
        assert status["completed"] == 1 and status["missing"] == 1

        # Report refuses while points are missing...
        assert run_cli("study", "report", "table1", "--workspace", workspace) == 1
        capsys.readouterr()

        # ...resume completes only the missing point...
        assert (
            run_cli(
                "study", "run", "table1",
                "--workspace", workspace, "--resume", "--json",
            )
            == 0
        )
        summary = json.loads(capsys.readouterr().out)
        assert summary["loaded"] == 1 and summary["ran"] == 1
        assert summary["complete"] and summary["rows"]

        # ...and the report regenerates from the store alone.
        assert run_cli("study", "report", "table1", "--workspace", workspace,
                       "--json") == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows == summary["rows"]

    def test_study_report_rows_match_table_command(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        assert run_cli("table", "table1", "--json") == 0
        table_rows = json.loads(capsys.readouterr().out)
        assert run_cli("study", "run", "table1", "--workspace", workspace,
                       "--quiet", "--json") == 0
        capsys.readouterr()
        assert run_cli("study", "report", "table1", "--workspace", workspace,
                       "--json") == 0
        study_rows = json.loads(capsys.readouterr().out)
        assert study_rows == table_rows

    def test_study_unknown_name(self, capsys):
        assert run_cli("study", "run", "table9", "--workspace", "/tmp/x") == 2
        assert "table9" in capsys.readouterr().err

    def test_study_corrupt_manifest_is_an_error_not_a_traceback(
        self, tmp_path, capsys
    ):
        root = tmp_path / "ws"
        root.mkdir()
        (root / "manifest.json").write_text("{not json")
        assert run_cli("study", "status", "table1", "--workspace", str(root)) == 1
        err = capsys.readouterr().err
        assert "manifest" in err
        assert "Traceback" not in err


class TestResilienceFlags:
    def test_sweep_retries_an_injected_failure(self, capsys):
        from repro import faults

        plan = faults.FaultPlan(
            [faults.FaultRule("sweep.point", "raise", times=1)]
        )
        with faults.injecting(plan):
            code = run_cli(
                "sweep", "chain:3:16", "--latencies", "3:4",
                "--retries", "1", "--json",
            )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["latency"] for row in rows] == [3, 4]
        assert plan.fired() == {0: 1}

    def test_sweep_on_error_raise_exits_one_with_the_code(self, capsys):
        from repro import faults

        plan = faults.FaultPlan(
            [faults.FaultRule("sweep.point", "raise", times=None)]
        )
        with faults.injecting(plan):
            code = run_cli(
                "sweep", "chain:3:16", "--latencies", "3:4",
                "--on-error", "raise",
            )
        assert code == 1
        err = capsys.readouterr().err
        assert "RUN001" in err
        assert "Traceback" not in err

    def test_negative_retries_rejected(self, capsys):
        assert run_cli("sweep", "chain:3:16", "--latencies", "3",
                       "--retries", "-1") == 2
        assert "--retries" in capsys.readouterr().err

    def test_study_run_records_error_rows(self, tmp_path, capsys):
        from repro import faults

        workspace = str(tmp_path / "ws")
        plan = faults.FaultPlan(
            [faults.FaultRule("sweep.point", "raise", times=None)]
        )
        with faults.injecting(plan):
            code = run_cli(
                "study", "run", "table1", "--workspace", workspace,
                "--quiet", "--json",
            )
        assert code == 1  # incomplete study
        summary = json.loads(capsys.readouterr().out)
        assert summary["failed"] == summary["total"]

        assert run_cli("study", "status", "table1", "--workspace", workspace,
                       "--json") == 0
        status = json.loads(capsys.readouterr().out)
        assert status["failed"] == status["total"]
        assert all(row["error_code"] == "RUN001" for row in status["points"])

        # A retry without the fault completes and clears the error rows.
        assert run_cli("study", "run", "table1", "--workspace", workspace,
                       "--quiet", "--json") == 0
        assert json.loads(capsys.readouterr().out)["complete"]

    def test_study_run_interrupt_exits_130_with_resume_hint(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.api.workspace import Workspace as RealWorkspace

        def interrupted_run_study(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(RealWorkspace, "run_study", interrupted_run_study)
        workspace = str(tmp_path / "ws")
        assert run_cli("study", "run", "table1", "--workspace", workspace) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err  # the hint names the resume spelling

    def test_study_salvage_clean_workspace(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        assert run_cli("study", "run", "table1", "--workspace", workspace,
                       "--quiet", "--json") == 0
        capsys.readouterr()
        assert run_cli("study", "salvage", "--workspace", workspace) == 0
        assert "clean" in capsys.readouterr().out

    def test_study_salvage_repairs_a_corrupt_manifest(self, tmp_path, capsys):
        root = tmp_path / "ws"
        assert run_cli("study", "run", "table1", "--workspace", str(root),
                       "--quiet", "--json") == 0
        capsys.readouterr()
        (root / "manifest.json").write_text("{torn")
        assert run_cli("study", "salvage", "--workspace", str(root),
                       "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["reattached"] == 2  # rows recovered from provenance
        # The study now loads with zero recomputation.
        assert run_cli("study", "run", "table1", "--workspace", str(root),
                       "--quiet", "--json") == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["loaded"] == 2 and summary["ran"] == 0

    def test_study_salvage_missing_workspace_is_an_error(self, tmp_path, capsys):
        assert run_cli("study", "salvage", "--workspace",
                       str(tmp_path / "nope")) == 1
        assert "no workspace" in capsys.readouterr().err

    def test_study_gc_dry_run_then_collect(self, tmp_path, capsys):
        workspace = str(tmp_path / "ws")
        assert run_cli("study", "run", "table1", "--workspace", workspace,
                       "--quiet", "--json") == 0
        capsys.readouterr()
        stray = tmp_path / "ws" / "objects" / "ff" / ("f" * 64 + ".json")
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_text("{}")
        assert run_cli("study", "gc", "--workspace", workspace,
                       "--dry-run") == 0
        assert "would collect 1 object(s)" in capsys.readouterr().out
        assert stray.exists()
        assert run_cli("study", "gc", "--workspace", workspace, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is False
        assert report["removed"] == ["f" * 64]
        assert not stray.exists()
        # Live rows were never collected: the study still loads fully.
        assert run_cli("study", "run", "table1", "--workspace", workspace,
                       "--quiet", "--json") == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["loaded"] == 2 and summary["ran"] == 0

    def test_study_gc_missing_workspace_is_an_error(self, tmp_path, capsys):
        assert run_cli("study", "gc", "--workspace",
                       str(tmp_path / "nope")) == 1
        assert "no workspace" in capsys.readouterr().err


class TestModuleEntryPoint:
    @pytest.fixture(scope="class")
    def env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_python_dash_m_repro_run(self, env):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "motivational", "-l", "3", "--json"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        report = json.loads(completed.stdout)
        assert report["name"] == "example"
        assert report["mode"] == "conventional"

    def test_python_dash_m_repro_bad_args(self, env):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "motivational", "-l", "3", "-m", "x"],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 2
        assert "invalid flow mode" in completed.stderr


class TestStopAfterErrors:
    def test_run_rejects_unknown_stop_after(self, capsys):
        assert (
            run_cli("run", "motivational", "-l", "3", "--stop-after", "bogus") == 2
        )
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "Traceback" not in err
