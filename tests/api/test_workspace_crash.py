"""Crash recovery of the workspace: corrupt-load quarantine, salvage,
advisory locking, error-row lifecycle, and the KeyboardInterrupt flush."""

import json
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.api import (
    RetryPolicy,
    SweepPointError,
    Workspace,
    WorkspaceCorruptError,
    WorkspaceError,
    fig4_study,
)
from repro.faults import FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    assert faults.active_plan() is None
    yield
    faults.uninstall()


def _study(n=2, name="crash-mini"):
    return fig4_study("chain:3:16", latencies=range(3, 3 + n), name=name)


def _dead_pid():
    """A pid guaranteed to be dead: a child we already reaped."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestCorruptManifest:
    def test_garbage_manifest_raises_typed_error_with_path(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root)  # creates a valid manifest
        (root / "manifest.json").write_text("{truncated")
        with pytest.raises(WorkspaceCorruptError) as excinfo:
            Workspace(root)
        assert excinfo.value.path == root / "manifest.json"
        assert "salvage" in str(excinfo.value)  # points at the way out
        assert isinstance(excinfo.value, WorkspaceError)  # catchable broadly

    def test_non_object_manifest_is_corrupt(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root)
        (root / "manifest.json").write_text("[1, 2, 3]")
        with pytest.raises(WorkspaceCorruptError):
            Workspace(root)

    def test_recover_quarantines_and_rebuilds(self, tmp_path):
        root = tmp_path / "ws"
        study = _study()
        Workspace(root).run_study(study)
        (root / "manifest.json").write_text("{truncated")

        workspace = Workspace(root, recover=True)
        # The broken bytes are preserved as evidence, never deleted.
        quarantined = list((root / "quarantine").iterdir())
        assert any(p.name.startswith("manifest.json.") for p in quarantined)
        # The rebuilt manifest lost its records (journal was compacted), but
        # salvage reattaches the intact row objects from their provenance.
        report = workspace.salvage()
        assert report.reattached == len(study)
        assert workspace.status(study)["completed"] == len(study)
        resumed = workspace.run_study(study)
        assert resumed.loaded == len(study) and resumed.ran == 0

    def test_schema_mismatch_is_not_recovered_over(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root)
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["schema_version"] = 999
        (root / "manifest.json").write_text(json.dumps(manifest))
        # A future schema is not corruption: recovery must not destroy it.
        with pytest.raises(WorkspaceError) as excinfo:
            Workspace(root, recover=True)
        assert not isinstance(excinfo.value, WorkspaceCorruptError)
        assert "schema" in str(excinfo.value)


class TestSalvage:
    def test_clean_workspace_salvages_clean(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        workspace.run_study(_study())
        report = workspace.salvage()
        assert report.clean
        assert report.to_dict()["clean"] is True

    def test_corrupt_object_is_quarantined_and_its_record_dropped(self, tmp_path):
        root = tmp_path / "ws"
        workspace = Workspace(root)
        study = _study()
        workspace.run_study(study)
        victim = next((root / "objects").rglob("*.json"))
        victim.write_text("not json at all")

        report = workspace.salvage()
        assert len(report.quarantined) == 1
        assert report.dropped_records == 1
        assert not report.clean
        assert workspace.salvage().clean  # idempotent
        # The dropped point re-runs; the others load.
        healed = workspace.run_study(study)
        assert healed.complete
        assert healed.ran == 1 and healed.loaded == len(study) - 1

    def test_missing_object_drops_the_dangling_record(self, tmp_path):
        root = tmp_path / "ws"
        workspace = Workspace(root)
        study = _study()
        workspace.run_study(study)
        next((root / "objects").rglob("*.json")).unlink()

        report = workspace.salvage()
        assert report.dropped_records == 1 and not report.quarantined
        assert workspace.status(study)["missing"] == 1

    def test_orphan_objects_reattach_by_provenance(self, tmp_path):
        root = tmp_path / "ws"
        study = _study()
        Workspace(root).run_study(study)
        (root / "manifest.json").unlink()  # total manifest loss

        workspace = Workspace(root)  # fresh manifest, no records
        assert workspace.status(study)["completed"] == 0
        report = workspace.salvage()
        assert report.reattached == len(study)
        assert workspace.run_study(study).loaded == len(study)


class TestAdvisoryLock:
    def test_lock_held_during_run_and_released_after(self, tmp_path):
        root = tmp_path / "ws"
        workspace = Workspace(root)
        seen = []
        workspace.run_study(
            _study(), progress=lambda *args: seen.append(workspace.lock_path.exists())
        )
        assert seen and all(seen)
        assert not workspace.lock_path.exists()

    def test_dead_pid_lock_is_taken_over(self, tmp_path):
        root = tmp_path / "ws"
        workspace = Workspace(root)
        workspace.lock_path.write_text(
            json.dumps({"pid": _dead_pid(), "created_at": time.time()})
        )
        assert workspace.run_study(_study()).complete
        assert not workspace.lock_path.exists()

    def test_live_foreign_lock_refuses(self, tmp_path, monkeypatch):
        from repro.api import workspace as workspace_module

        monkeypatch.setattr(workspace_module, "LOCK_WAIT_S", 0.1)
        root = tmp_path / "ws"
        workspace = Workspace(root)
        # pid 1 is alive and is not us; the bounded wait expires, then raises.
        workspace.lock_path.write_text(
            json.dumps({"pid": 1, "created_at": time.time()})
        )
        with pytest.raises(WorkspaceError) as excinfo:
            workspace.run_study(_study())
        assert "locked by running process 1" in str(excinfo.value)
        workspace.lock_path.unlink()

    def test_stale_by_age_lock_is_taken_over(self, tmp_path):
        root = tmp_path / "ws"
        workspace = Workspace(root)
        workspace.lock_path.write_text(
            json.dumps({"pid": 1, "created_at": time.time() - 7200})
        )
        assert workspace.run_study(_study()).complete

    def test_unparseable_lock_is_taken_over(self, tmp_path):
        root = tmp_path / "ws"
        workspace = Workspace(root)
        workspace.lock_path.write_text("???")
        assert workspace.run_study(_study()).complete

    def test_same_process_reentry_shares_the_lock(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        workspace.run_study(_study())
        with workspace._holding_lock():
            assert workspace.salvage().clean  # nested acquisition, no deadlock
        assert workspace.lock_path.exists() is False


class TestErrorRowLifecycle:
    def test_exhausted_point_becomes_a_coded_error_row(self, tmp_path):
        study = _study()
        workspace = Workspace(tmp_path / "ws")
        plan = FaultPlan([FaultRule("sweep.point", "raise", times=None)])
        with faults.injecting(plan):
            result = workspace.run_study(study)
        assert result.failed == len(study)
        assert not result.complete
        status = workspace.status(study)
        assert status["failed"] == len(study)
        assert status["missing"] == len(study)  # failed points still re-run
        assert all(row["status"] == "failed" for row in status["points"])
        assert all(row["error_code"] == "RUN001" for row in status["points"])
        # The stored error rows carry the full forensic record.
        errors = workspace._manifest["studies"][study.name]["errors"]
        row = errors[study.points()[0].point_id]
        assert row["error_title"] == "point raised an exception"
        assert row["error_chain"] and "injected fault" in row["error_chain"][0]
        assert row["attempts"][0]["error_code"] == "RUN001"
        assert "recorded_at" in row

    def test_error_rows_clear_when_the_point_succeeds(self, tmp_path):
        study = _study()
        workspace = Workspace(tmp_path / "ws")
        plan = FaultPlan([FaultRule("sweep.point", "raise", times=None)])
        with faults.injecting(plan):
            workspace.run_study(study)
        healed = workspace.run_study(study)
        assert healed.complete
        status = workspace.status(study)
        assert status["failed"] == 0 and status["completed"] == len(study)
        assert not workspace._manifest["studies"][study.name].get("errors")

    def test_on_error_skip_records_nothing(self, tmp_path):
        study = _study().with_retry(RetryPolicy(on_error="skip"))
        workspace = Workspace(tmp_path / "ws")
        plan = FaultPlan([FaultRule("sweep.point", "raise", times=None)])
        with faults.injecting(plan):
            result = workspace.run_study(study)
        assert result.failed == len(study)  # the run result still knows...
        status = workspace.status(study)
        assert status["failed"] == 0  # ...but nothing was persisted
        assert status["missing"] == len(study)

    def test_on_error_raise_aborts_the_run(self, tmp_path):
        study = _study().with_retry(RetryPolicy(on_error="raise"))
        workspace = Workspace(tmp_path / "ws")
        plan = FaultPlan([FaultRule("sweep.point", "raise", times=None)])
        with faults.injecting(plan):
            with pytest.raises(SweepPointError) as excinfo:
                workspace.run_study(study)
        assert excinfo.value.outcome.error_code == "RUN001"
        assert not workspace.lock_path.exists()  # lock released on the way out


class TestKeyboardInterruptFlush:
    def test_interrupt_flushes_completed_rows_and_stays_resumable(self, tmp_path):
        study = _study(3)
        workspace = Workspace(tmp_path / "ws")
        fired = []

        def interrupt_once(result, done, total):
            if result.source == "run" and not fired:
                fired.append(result)
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            workspace.run_study(study, progress=interrupt_once)
        assert not workspace.lock_path.exists()

        # The row settled before the interrupt survived; the rest resume.
        resumed = workspace.run_study(study)
        assert resumed.complete
        assert resumed.loaded >= 1
        assert resumed.loaded + resumed.ran == len(study)

    def test_interrupt_in_threaded_run_loses_no_finished_row(self, tmp_path):
        study = _study(4)
        workspace = Workspace(tmp_path / "ws")
        fired = []

        def interrupt_once(result, done, total):
            if result.source == "run" and not fired:
                fired.append(result)
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            workspace.run_study(
                study, max_workers=2, executor="thread", progress=interrupt_once
            )
        flushed = workspace.status(study)["completed"]
        assert flushed >= 1
        resumed = workspace.run_study(study)
        assert resumed.complete
        assert resumed.loaded == flushed  # zero recompute of flushed rows


class TestWriteVerify:
    def test_store_row_detects_provenance_corruption(self, tmp_path, monkeypatch):
        """Corruption in a field the address does NOT cover (completed_at)
        must still fail persistence: the post-write check compares the whole
        file against the intended bytes, not just the addressed hash.  The
        chaos bit-flip scenario only exercises this when the deterministic
        flip happens to land outside the addressed fields, so pin it here."""
        workspace = Workspace(tmp_path / "ws")
        study = _study()
        point = study.points()[0]
        original = Workspace._write_json_atomic

        def corrupting(self, path, payload, fault_site=None, fault_key=None):
            if fault_site == "workspace.write_object":
                payload = dict(
                    payload, completed_at="9" + payload["completed_at"][1:]
                )
            original(self, path, payload)

        monkeypatch.setattr(Workspace, "_write_json_atomic", corrupting)
        with pytest.raises(WorkspaceError, match="post-write verification"):
            workspace.store_row(study.name, point, {"x": 1})
        # The corrupt object is quarantined, never recorded as complete.
        assert workspace.status(study)["completed"] == 0
        assert list(workspace.quarantine_dir.glob("*")) != []
