"""Two OS processes sharing one workspace -- the multi-tenant contract the
server depends on: merge-on-write manifest races, cross-process advisory-lock
takeover, and journal replay under interleaved ``store_row``."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.api import Workspace, builtin_study

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_python(script, *args):
    """Run a python snippet in a fresh process with repro importable."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script), *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


#: Worker snippet: run one half of a latency sweep into a shared workspace.
#: Each invocation is a *different* study name over *different* configs, so
#: two concurrent processes interleave store_row calls and manifest rewrites
#: against the same manifest.json.
SWEEP_HALF = """
import sys
from repro.api import Workspace, fig4_study

workspace_dir, name, lo, hi = sys.argv[1:5]
study = fig4_study("chain:3:16", latencies=range(int(lo), int(hi)), name=name)
result = Workspace(workspace_dir).run_study(study)
assert result.complete, result.summary()
print(result.total)
"""


class TestMergeOnWriteAcrossProcesses:
    def test_concurrent_writers_lose_no_rows(self, tmp_path):
        """Two processes writing disjoint studies merge, never clobber."""
        workspace_dir = str(tmp_path / "ws")
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        first = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(SWEEP_HALF),
             workspace_dir, "mp-low", "3", "9"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        second = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(SWEEP_HALF),
             workspace_dir, "mp-high", "9", "15"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        out1, err1 = first.communicate(timeout=120)
        out2, err2 = second.communicate(timeout=120)
        assert first.returncode == 0, err1
        assert second.returncode == 0, err2

        # A third process (and this one) sees every row of both writers.
        workspace = Workspace(workspace_dir)
        assert set(workspace.studies()) == {"mp-low", "mp-high"}
        from repro.api import fig4_study

        low = fig4_study("chain:3:16", latencies=range(3, 9), name="mp-low")
        high = fig4_study("chain:3:16", latencies=range(9, 15), name="mp-high")
        assert workspace.run_study(low).loaded == len(low)
        assert workspace.run_study(high).loaded == len(high)

    def test_writer_joining_after_other_processes_save_keeps_their_rows(
        self, tmp_path
    ):
        """merge-on-write: an in-memory manifest loaded before another
        process's rows landed must not erase them on its own save."""
        workspace_dir = str(tmp_path / "ws")
        # This process opens the workspace (loads an empty manifest)...
        workspace = Workspace(workspace_dir)
        # ...then another process completes a whole study...
        result = run_python(
            SWEEP_HALF, workspace_dir, "mp-other", "3", "6"
        )
        assert result.returncode == 0, result.stderr
        # ...and only then does this process run (and save) its own study.
        mine = builtin_study("table1")
        assert workspace.run_study(mine).complete
        # Both studies' rows survive in the on-disk manifest.
        fresh = Workspace(workspace_dir)
        assert set(fresh.studies()) >= {"mp-other", "table1"}
        from repro.api import fig4_study

        other = fig4_study("chain:3:16", latencies=range(3, 6), name="mp-other")
        assert fresh.run_study(other).loaded == len(other)


class TestCrossProcessLockTakeover:
    def test_dead_process_lock_is_taken_over(self, tmp_path):
        """A lock whose owner pid is a genuinely exited process yields."""
        workspace_dir = str(tmp_path / "ws")
        result = run_python(
            """
            import json, os, sys
            from repro.api import Workspace

            workspace = Workspace(sys.argv[1])
            workspace.lock_path.write_text(
                json.dumps({"pid": os.getpid(), "created_at": 0})
            )
            print(os.getpid())
            """,
            workspace_dir,
        )
        assert result.returncode == 0, result.stderr
        dead_pid = int(result.stdout.strip())
        workspace = Workspace(workspace_dir)
        assert json.loads(workspace.lock_path.read_text())["pid"] == dead_pid
        # The writer process is gone; run_study must take the lock over.
        run = workspace.run_study(builtin_study("table1"))
        assert run.complete
        assert not workspace.lock_path.exists()


class TestJournalReplayAcrossProcesses:
    def test_interleaved_store_rows_replay_after_manifest_loss(self, tmp_path):
        """Rows journalled by two processes survive a torn manifest save.

        Each process appends its rows to the shared fsync'd journal before
        the manifest rewrite; losing manifest.json afterwards (the torn-save
        window) must replay every row from the journal on the next load.
        """
        workspace_dir = str(tmp_path / "ws")
        store_script = """
        import sys
        from repro.api import Workspace, builtin_study
        from repro.api.pipeline import Pipeline

        workspace_dir, which = sys.argv[1:3]
        study = builtin_study("table1")
        point = study.points()[int(which)]
        artifact = Pipeline().run(point.config)
        workspace = Workspace(workspace_dir)
        workspace.store_row(f"journal-{which}", point, artifact.report)
        print("stored")
        """
        for which in ("0", "1"):
            result = run_python(store_script, workspace_dir, which)
            assert result.returncode == 0, result.stderr

        journal = Path(workspace_dir) / "journal.jsonl"
        assert len(journal.read_text().splitlines()) == 2

        # The torn-save crash window: manifest gone, journal intact.
        (Path(workspace_dir) / "manifest.json").unlink()
        workspace = Workspace(workspace_dir)
        study = builtin_study("table1")
        assert set(workspace.studies()) == {"journal-0", "journal-1"}
        assert workspace.load_row("journal-0", study.points()[0]) is not None
        assert workspace.load_row("journal-1", study.points()[1]) is not None
