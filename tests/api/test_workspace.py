"""Tests for the on-disk workspace: persistence, resume-after-interruption,
content addressing, schema invalidation and zero-recompute reports."""

import json

import pytest

from repro.api import (
    REPORT_SCHEMA_VERSION,
    Study,
    Workspace,
    WorkspaceError,
    builtin_study,
    fig4_study,
)


def tiny_study():
    """A cheap two-point study (the Table I matrix)."""
    return builtin_study("table1")


class TestRunAndResume:
    def test_cold_run_persists_every_point(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        result = workspace.run_study(study)
        assert result.complete
        assert result.ran == len(study) and result.loaded == 0
        status = workspace.status(study)
        assert status["completed"] == len(study) and status["missing"] == 0

    def test_resume_loads_instead_of_recomputing(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        first = workspace.run_study(study)
        second = workspace.run_study(study)
        assert second.loaded == len(study) and second.ran == 0
        assert second.reports() == first.reports()

    def test_interrupted_run_resumes_only_missing_points(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = fig4_study("chain:3:16", latencies=range(3, 6), name="fig4-mini")
        interrupted = workspace.run_study(study, max_points=2)
        assert interrupted.ran == 2
        assert interrupted.cancelled == len(study) - 2
        assert not interrupted.complete

        resumed = workspace.run_study(study)
        assert resumed.complete
        assert resumed.loaded == 2
        assert resumed.ran == len(study) - 2

    def test_fresh_run_ignores_stored_rows(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        workspace.run_study(study)
        fresh = workspace.run_study(study, resume=False)
        assert fresh.ran == len(study) and fresh.loaded == 0

    def test_progress_reports_loaded_then_run(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = fig4_study("chain:3:16", latencies=range(3, 6), name="fig4-mini")
        workspace.run_study(study, max_points=2)
        events = []
        workspace.run_study(
            study,
            progress=lambda result, done, total: events.append(
                (result.source, done, total)
            ),
        )
        sources = [source for source, _, _ in events]
        assert sources[:2] == ["store", "store"]
        assert sources.count("run") == len(study) - 2
        assert [done for _, done, _ in events] == list(range(1, len(study) + 1))

    def test_reuse_across_workspace_instances(self, tmp_path):
        study = tiny_study()
        Workspace(tmp_path / "ws").run_study(study)
        reopened = Workspace(tmp_path / "ws")
        result = reopened.run_study(study)
        assert result.loaded == len(study)

    def test_run_persists_rows_identical_to_reports(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        result = workspace.run_study(study)
        assert workspace.reports(study) == result.reports()
        assert workspace.rows(study) == result.rows()


class TestStoreIntegrity:
    def test_rows_are_content_addressed(self, tmp_path):
        from repro.api.workspace import _address_for

        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        workspace.run_study(study)

        objects = list((tmp_path / "ws" / "objects").rglob("*.json"))
        assert len(objects) == len(study)
        for path in objects:
            payload = json.loads(path.read_text())
            assert path.stem == _address_for(payload)
            assert payload["schema_version"] == REPORT_SCHEMA_VERSION

    def test_tampered_row_is_recomputed_and_healed(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        workspace.run_study(study)
        victim = next((tmp_path / "ws" / "objects").rglob("*.json"))
        payload = json.loads(victim.read_text())
        payload["report"]["total_area"] = -1.0
        victim.write_text(json.dumps(payload))
        result = Workspace(tmp_path / "ws").run_study(study)
        assert result.ran == 1 and result.loaded == len(study) - 1
        # Re-storing the recomputed row heals the tampered object in place:
        # the next resume loads everything and the report works again.
        healed = Workspace(tmp_path / "ws")
        assert healed.run_study(study).loaded == len(study)
        assert len(healed.reports(study)) == len(study)

    def test_stale_schema_row_is_recomputed(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        workspace.run_study(study)
        # Rewrite one row as if an older schema had produced it (the content
        # address is recomputed so only the schema check can reject it).
        from repro.api.workspace import _address_for

        victim = next((tmp_path / "ws" / "objects").rglob("*.json"))
        payload = json.loads(victim.read_text())
        point_id = payload["point_id"]
        payload["schema_version"] = REPORT_SCHEMA_VERSION - 1
        address = _address_for(payload)
        store = tmp_path / "ws" / "objects" / address[:2]
        store.mkdir(parents=True, exist_ok=True)
        (store / f"{address}.json").write_text(json.dumps(payload))
        manifest_path = tmp_path / "ws" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["studies"][study.name]["points"][point_id]["object"] = address
        manifest_path.write_text(json.dumps(manifest))

        result = Workspace(tmp_path / "ws").run_study(study)
        assert result.ran == 1 and result.loaded == len(study) - 1

    def test_unreadable_manifest_raises(self, tmp_path):
        root = tmp_path / "ws"
        root.mkdir()
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(WorkspaceError):
            Workspace(root)

    def test_future_manifest_schema_raises(self, tmp_path):
        root = tmp_path / "ws"
        root.mkdir()
        (root / "manifest.json").write_text(
            json.dumps({"schema_version": 999, "studies": {}})
        )
        with pytest.raises(WorkspaceError):
            Workspace(root)


class TestReports:
    def test_reports_raise_on_missing_points(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        workspace.run_study(study, max_points=1)
        with pytest.raises(WorkspaceError) as excinfo:
            workspace.reports(study)
        assert "unfinished" in str(excinfo.value)
        partial = workspace.reports(study, allow_partial=True)
        assert len(partial) == 1

    def test_rows_regenerate_with_zero_recompute(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        live_rows = workspace.run_study(study).rows()
        # A fresh instance regenerates the table purely from disk.
        assert Workspace(tmp_path / "ws").rows(study) == live_rows

    def test_engine_stop_after_mismatch_is_rejected(self, tmp_path):
        from repro.api import SweepEngine

        workspace = Workspace(tmp_path / "ws")
        study = fig4_study("chain:3:16", latencies=[3], name="fig4-one")
        with pytest.raises(WorkspaceError):
            workspace.run_study(study, engine=SweepEngine())

    def test_distinct_studies_share_the_store(self, tmp_path):
        # Identical points of different studies dedupe via content addresses
        # (provenance timestamps are excluded from the address, so identical
        # results written at different times share one object).
        workspace = Workspace(tmp_path / "ws")
        study_a = tiny_study()
        study_b = Study(
            "table1-copy", row_kind="table"
        ).cases([{"workload": "motivational", "latency": 3}]).grid(
            mode=["conventional", "fragmented"]
        )
        workspace.run_study(study_a)
        workspace.run_study(study_b)
        assert set(workspace.studies()) == {"table1", "table1-copy"}
        objects = list((tmp_path / "ws" / "objects").rglob("*.json"))
        assert len(objects) == len(study_a)

    def test_gc_prunes_unreferenced_objects(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        workspace.run_study(study)
        stray = tmp_path / "ws" / "objects" / "zz" / ("f" * 64 + ".json")
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_text("{}")
        assert workspace.gc(dry_run=True) == ["f" * 64]
        assert stray.exists()
        assert workspace.gc() == ["f" * 64]
        assert not stray.exists()
        # Referenced rows survive and the study still resumes from them.
        result = workspace.run_study(study)
        assert result.loaded == len(study)

    def test_create_false_refuses_missing_workspace(self, tmp_path):
        with pytest.raises(WorkspaceError, match="no workspace"):
            Workspace(tmp_path / "nowhere", create=False)
        assert not (tmp_path / "nowhere").exists()
        # An existing workspace opens fine read-only.
        Workspace(tmp_path / "ws").run_study(tiny_study())
        assert Workspace(tmp_path / "ws", create=False).status(tiny_study())[
            "completed"
        ] == 2

    def test_merge_prefers_newer_record_over_stale_memory(self, tmp_path):
        # A record another process wrote after this instance loaded the
        # manifest must survive this instance's next save.
        root = tmp_path / "ws"
        study = tiny_study()
        Workspace(root).run_study(study)
        stale = Workspace(root)  # holds the current records in memory
        point = study.points()[0]
        manifest = json.loads((root / "manifest.json").read_text())
        record = manifest["studies"][study.name]["points"][point.point_id]
        record["object"] = "0" * 64
        record["completed_at"] = "2999-01-01T00:00:00+0000"
        (root / "manifest.json").write_text(json.dumps(manifest))

        stale.store_row(study.name, study.points()[1], {"x": 1})
        merged = json.loads((root / "manifest.json").read_text())
        kept = merged["studies"][study.name]["points"][point.point_id]
        assert kept["object"] == "0" * 64  # the newer record won

    def test_concurrent_instances_merge_manifests(self, tmp_path):
        # Two processes sharing one workspace must not erase each other's
        # completed-point records: saves union the on-disk manifest.
        root = tmp_path / "ws"
        instance_a = Workspace(root)
        instance_b = Workspace(root)  # loaded before A records anything
        instance_a.run_study(tiny_study())
        other = Study(
            "fig4-one", stop_after="time", row_kind="fig4"
        ).cases([{"workload": "chain:3:16", "latency": 3}]).grid(
            mode=["conventional", "fragmented"]
        )
        instance_b.run_study(other)  # B's save must keep A's records
        fresh = Workspace(root)
        assert set(fresh.studies()) == {"table1", "fig4-one"}
        assert fresh.status(tiny_study())["completed"] == 2
        assert fresh.run_study(tiny_study()).loaded == 2


class TestAdoptRows:
    def test_adopts_identical_points_from_sibling_study(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        workspace.run_study(tiny_study())
        twin = Study.from_dict(
            {**tiny_study().to_dict(), "name": "table1-twin"}
        )
        assert workspace.adopt_rows(twin) == len(twin)
        assert workspace.run_study(twin).loaded == len(twin)

    def test_adopt_is_idempotent_and_skips_unknown_points(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        workspace.run_study(tiny_study())
        twin = Study.from_dict(
            {**tiny_study().to_dict(), "name": "table1-twin"}
        )
        assert workspace.adopt_rows(twin) == len(twin)
        assert workspace.adopt_rows(twin) == 0  # already adopted
        stranger = fig4_study(
            "chain:3:16", latencies=[3], name="stranger"
        )
        assert workspace.adopt_rows(stranger) == 0  # nothing to adopt from


class TestCancelEvent:
    def test_preset_event_cancels_every_point(self, tmp_path):
        import threading

        event = threading.Event()
        event.set()
        workspace = Workspace(tmp_path / "ws")
        result = workspace.run_study(tiny_study(), cancel_event=event)
        assert not result.complete
        assert result.cancelled == len(tiny_study())
        assert result.ran == 0

    def test_event_set_mid_run_stops_remaining_points(self, tmp_path):
        import threading

        event = threading.Event()
        workspace = Workspace(tmp_path / "ws")
        study = fig4_study("chain:3:16", latencies=range(3, 9), name="cancel-mid")

        def trip(*args):
            event.set()

        result = workspace.run_study(study, cancel_event=event, progress=trip)
        assert result.cancelled > 0
        assert result.ran + result.cancelled == len(study)
        # A later run without the event finishes only the remainder.
        final = workspace.run_study(study)
        assert final.complete
        assert final.loaded == result.ran
