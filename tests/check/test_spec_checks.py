"""Negative tests for the specification checker: one minimal artifact per code.

Each test hand-builds the smallest specification that violates exactly one
``SPEC0xx`` invariant, using the same back doors a buggy transformation would
leave behind (the constructor guards of :class:`Specification` catch several
of these at build time, which is precisely why the checker must re-derive
them independently).
"""

from repro.check import Severity, check_specification
from repro.ir.operations import Operation, OpKind
from repro.ir.spec import Specification
from repro.ir.types import BitVectorType
from repro.ir.values import Destination, PortDirection, Variable


def _small_spec():
    """``t = a + b; o = t`` -- the minimal clean two-operation program."""
    spec = Specification("check_unit")
    a = spec.add_variable(
        Variable("a", BitVectorType(4, False), PortDirection.INPUT)
    )
    b = spec.add_variable(
        Variable("b", BitVectorType(4, False), PortDirection.INPUT)
    )
    t = spec.add_variable(Variable("t", BitVectorType(5, False)))
    o = spec.add_variable(
        Variable("o", BitVectorType(5, False), PortDirection.OUTPUT)
    )
    spec.add_operation(
        Operation(
            kind=OpKind.ADD,
            operands=(a.whole(), b.whole()),
            destination=Destination(t, t.full_range()),
            name="add_t",
        )
    )
    spec.add_operation(
        Operation(
            kind=OpKind.MOVE,
            operands=(t.whole(),),
            destination=Destination(o, o.full_range()),
            name="move_o",
        )
    )
    return spec


def _codes(spec):
    return {finding.code for finding in check_specification(spec)}


def test_clean_baseline():
    assert check_specification(_small_spec()) == []


def test_spec001_duplicate_writer():
    spec = _small_spec()
    spec._operations.append(spec._operations[0])  # second writer for t
    assert "SPEC001" in _codes(spec)


def test_spec002_read_before_write():
    spec = _small_spec()
    operations = spec._operations
    operations.append(operations.pop(0))  # producer now after its reader
    assert "SPEC002" in _codes(spec)


def test_spec002_read_without_any_write():
    spec = _small_spec()
    spec._operations.pop(0)  # move_o now reads a t nothing writes
    assert "SPEC002" in _codes(spec)


def test_spec003_variable_narrower_than_its_accesses():
    spec = _small_spec()
    # Shrinking the type under existing full-width accesses leaves reads and
    # writes of bit 4 dangling past the variable's new width.
    t = spec.variable("t")
    t.type = BitVectorType(4, False)
    assert "SPEC003" in _codes(spec)


def test_spec004_undriven_output_bit():
    spec = _small_spec()
    spec._operations.pop()  # nothing writes output o any more
    assert "SPEC004" in _codes(spec)


def test_spec005_dead_additive_result_is_a_warning():
    spec = _small_spec()
    dead = spec.add_variable(Variable("dead", BitVectorType(5, False)))
    spec.add_operation(
        Operation(
            kind=OpKind.ADD,
            operands=(spec.variable("a").whole(), spec.variable("b").whole()),
            destination=Destination(dead, dead.full_range()),
            name="dead_add",
        )
    )
    findings = check_specification(spec)
    dead_findings = [f for f in findings if f.code == "SPEC005"]
    assert dead_findings
    assert all(f.severity is Severity.WARNING for f in dead_findings)


def test_spec006_combinational_self_dependence():
    spec = _small_spec()
    loop = spec.add_variable(Variable("loop", BitVectorType(3, False)))
    spec.add_operation(
        Operation(
            kind=OpKind.MOVE,
            operands=(loop.whole(),),
            destination=Destination(loop, loop.full_range()),
            name="loop_move",
        )
    )
    assert "SPEC006" in _codes(spec)


def test_findings_carry_spans():
    spec = _small_spec()
    spec._operations.pop()  # SPEC004 names the undriven output bit
    findings = [f for f in check_specification(spec) if f.code == "SPEC004"]
    assert findings
    assert all(f.span is not None and f.span.name == "o" for f in findings)
