"""Negative tests for the allocation checker: one corruption per code.

Allocation artifacts are too interlinked to hand-assemble from scratch, so
each test builds a small real datapath (the motivational workload, fragmented
at latency 3, ``reuse=False`` so nothing memoized is shared) and applies one
deterministic single-point corruption through the same mutable surfaces a
buggy allocator would write: the register group lists, the binding dict, the
recorded multiplexer list.
"""

from dataclasses import replace

import pytest

from repro.check import check_allocation
from repro.core import TransformOptions, transform
from repro.hls.allocation.functional_units import FunctionalUnitInstance
from repro.hls.datapath import build_datapath
from repro.hls.flow import FlowMode, run_schedule
from repro.techlib.library import default_library
from repro.workloads import ALL_WORKLOADS


@pytest.fixture()
def allocated():
    spec = ALL_WORKLOADS["motivational"]()
    library = default_library()
    result = transform(spec, 3, TransformOptions(check_equivalence=False))
    schedule, _budget = run_schedule(
        result.transformed,
        3,
        library,
        FlowMode.FRAGMENTED,
        chained_bits_per_cycle=result.chained_bits_per_cycle,
    )
    datapath = build_datapath(schedule, library, reuse=False)
    return schedule, datapath, library


def _codes(schedule, datapath, library):
    return {f.code for f in check_allocation(schedule, datapath, library)}


def test_clean_baseline(allocated):
    schedule, datapath, library = allocated
    assert check_allocation(schedule, datapath, library) == []


def test_alloc001_overlapping_lifetimes(allocated):
    schedule, datapath, library = allocated
    registers = datapath.registers.registers
    for source in registers:
        for group in list(source.groups):
            for target in registers:
                if target is source or group.width > target.width:
                    continue
                if any(
                    group.birth_cycle < tenant.death_cycle
                    and tenant.birth_cycle < group.death_cycle
                    for tenant in target.groups
                ):
                    source.groups.remove(group)
                    target.groups.append(group)
                    assert "ALLOC001" in _codes(schedule, datapath, library)
                    return
    pytest.fail("no overlapping rehoming candidate in the motivational datapath")


def test_alloc002_double_booked_unit(allocated):
    schedule, datapath, library = allocated
    binding = datapath.functional_units.binding
    occupied = {}
    for operation, instance in binding.items():
        occupied.setdefault(instance.identifier, set()).add(
            schedule.cycle_of[operation]
        )
    for operation, instance in binding.items():
        cycle = schedule.cycle_of[operation]
        for other in datapath.functional_units.instances:
            if (
                other.identifier != instance.identifier
                and other.category == instance.category
                and other.width >= instance.width
                and cycle in occupied.get(other.identifier, set())
            ):
                binding[operation] = other
                assert "ALLOC002" in _codes(schedule, datapath, library)
                return
    pytest.fail("no double-booking candidate in the motivational datapath")


def test_alloc003_understated_multiplexer(allocated):
    schedule, datapath, library = allocated
    multiplexers = datapath.interconnect.multiplexers
    index = next(i for i, mux in enumerate(multiplexers) if mux.fan_in >= 2)
    multiplexers[index] = replace(
        multiplexers[index], fan_in=multiplexers[index].fan_in - 1
    )
    assert "ALLOC003" in _codes(schedule, datapath, library)


def test_alloc004_orphaned_unit_is_a_warning(allocated):
    schedule, datapath, library = allocated
    datapath.functional_units.instances.append(
        FunctionalUnitInstance(
            identifier="spare0", category="adder", width=4, area_gates=0.0
        )
    )
    findings = check_allocation(schedule, datapath, library)
    orphans = [f for f in findings if f.code == "ALLOC004"]
    assert orphans
    from repro.check import Severity

    assert all(f.severity is Severity.WARNING for f in orphans)


def test_alloc005_unbound_operation(allocated):
    schedule, datapath, library = allocated
    binding = datapath.functional_units.binding
    del binding[next(iter(binding))]
    assert "ALLOC005" in _codes(schedule, datapath, library)


def test_alloc006_stretched_lifetime(allocated):
    schedule, datapath, library = allocated
    for register in datapath.registers.registers:
        for index, group in enumerate(register.groups):
            if group.needs_storage:
                register.groups[index] = replace(
                    group, death_cycle=group.death_cycle + 2
                )
                assert "ALLOC006" in _codes(schedule, datapath, library)
                return
    pytest.fail("no stored group in the motivational datapath")
