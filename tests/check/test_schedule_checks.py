"""Negative tests for the schedule checker: one minimal artifact per code.

The artifact is a hand-built two-adder chain (``t = a + b`` in cycle 1,
``u = t + c`` plus the output move in cycle 2) whose chained-bit depths are
small enough to verify by hand: cycle 1 ripples 4 bits, cycle 2 ripples 5.
Corruptions poke ``cycle_of`` directly, bypassing the ``assign()`` guard the
way a buggy scheduler pass would.
"""

from repro.check import check_schedule
from repro.hls.schedule import Schedule
from repro.hls.timing import CycleTiming
from repro.ir.operations import Operation, OpKind
from repro.ir.spec import Specification
from repro.ir.types import BitVectorType
from repro.ir.values import Destination, PortDirection, Variable


def _chain_spec():
    spec = Specification("sched_unit")
    a = spec.add_variable(Variable("a", BitVectorType(4, False), PortDirection.INPUT))
    b = spec.add_variable(Variable("b", BitVectorType(4, False), PortDirection.INPUT))
    c = spec.add_variable(Variable("c", BitVectorType(4, False), PortDirection.INPUT))
    t = spec.add_variable(Variable("t", BitVectorType(5, False)))
    u = spec.add_variable(Variable("u", BitVectorType(6, False)))
    o = spec.add_variable(Variable("o", BitVectorType(6, False), PortDirection.OUTPUT))
    spec.add_operation(
        Operation(
            kind=OpKind.ADD,
            operands=(a.whole(), b.whole()),
            destination=Destination(t, t.full_range()),
            name="add_t",
        )
    )
    spec.add_operation(
        Operation(
            kind=OpKind.ADD,
            operands=(t.whole(), c.whole()),
            destination=Destination(u, u.full_range()),
            name="add_u",
        )
    )
    spec.add_operation(
        Operation(
            kind=OpKind.MOVE,
            operands=(u.whole(),),
            destination=Destination(o, o.full_range()),
            name="move_o",
        )
    )
    return spec


def _scheduled():
    spec = _chain_spec()
    schedule = Schedule(specification=spec, latency=2)
    schedule.assign(spec.operation_named("add_t"), 1)
    schedule.assign(spec.operation_named("add_u"), 2)
    schedule.assign(spec.operation_named("move_o"), 2)
    return spec, schedule


def _codes(findings):
    return {finding.code for finding in findings}


def test_clean_baseline():
    _spec, schedule = _scheduled()
    assert check_schedule(schedule) == []


def test_clean_with_sufficient_budget():
    _spec, schedule = _scheduled()
    # Hand-computed depths: 4 chained bits in cycle 1, 5 in cycle 2.
    assert check_schedule(schedule, budget=5) == []


def test_sched001_unscheduled_operation():
    spec, schedule = _scheduled()
    del schedule.cycle_of[spec.operation_named("move_o")]
    assert "SCHED001" in _codes(check_schedule(schedule))


def test_sched002_cycle_out_of_range():
    spec, schedule = _scheduled()
    schedule.cycle_of[spec.operation_named("move_o")] = 7
    assert "SCHED002" in _codes(check_schedule(schedule))


def test_sched003_producer_after_consumer():
    spec, schedule = _scheduled()
    schedule.cycle_of[spec.operation_named("add_t")] = 2
    schedule.cycle_of[spec.operation_named("add_u")] = 1
    assert "SCHED003" in _codes(check_schedule(schedule))


def test_sched004_budget_exceeded():
    spec, schedule = _scheduled()
    for operation in list(schedule.cycle_of):
        schedule.cycle_of[operation] = 1
    # Both adders chained in one cycle ripple 6 bits; a budget of 5 breaks.
    assert "SCHED004" in _codes(check_schedule(schedule, budget=5))
    assert check_schedule(schedule, budget=6) == []


def _timing(latency, chained_bits):
    return CycleTiming(
        latency=latency,
        cycle_delay_ns={cycle: 0.0 for cycle in chained_bits},
        cycle_chained_bits=dict(chained_bits),
        overhead_ns=0.0,
    )


def test_sched005_recorded_depths_cross_checked():
    _spec, schedule = _scheduled()
    assert check_schedule(schedule, timing=_timing(2, {1: 4, 2: 5})) == []
    tampered = check_schedule(schedule, timing=_timing(2, {1: 5, 2: 5}))
    assert "SCHED005" in _codes(tampered)


def test_sched005_latency_mismatch():
    _spec, schedule = _scheduled()
    findings = check_schedule(schedule, timing=_timing(3, {1: 4, 2: 5, 3: 0}))
    assert "SCHED005" in _codes(findings)


def test_conventional_timing_skips_depth_comparison():
    # A conventional timing records nanosecond chains, not bit depths; the
    # depth cross-check must not fire on it.
    _spec, schedule = _scheduled()
    findings = check_schedule(
        schedule, timing=_timing(2, {1: 999, 2: 999}), bit_level=False
    )
    assert findings == []
