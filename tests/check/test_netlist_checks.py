"""Negative tests for the netlist checker: one minimal design per code.

The baseline is the smallest checkable sequential design: a 1-bit toggling
FSM (two states, matching a latency of 2), one capture register loading a
primary input, and one output port.  Each test breaks exactly one invariant
by hand -- cyclic gates, a smuggled second driver, a floating input net, a
misdeclared width, a dead gate, a stuck or foreign-fed FSM, a register that
only ever holds.
"""

from repro.check import Severity, check_design
from repro.rtl.design import RtlDesign, StateElement
from repro.rtl.netlist import Gate, GateKind, Net, Netlist


def _tiny_design():
    netlist = Netlist("tiny")
    data = netlist.add_input("in[0]")
    fsm_q = netlist.add_input("fsm_q[0]")
    cap_q = netlist.add_input("cap_q[0]")
    fsm_d = netlist.not_gate(fsm_q)  # two-state toggle counter
    design = RtlDesign(
        name="tiny",
        netlist=netlist,
        latency=2,
        input_ports={"in": [data]},
        output_ports={"out": [cap_q]},
        state_elements=[
            StateElement("fsm", 1, "fsm", [fsm_q], [fsm_d]),
            StateElement("cap", 1, "capture", [cap_q], [data]),
        ],
    )
    return design


def _codes(design):
    return {finding.code for finding in check_design(design)}


def _element(design, name):
    return next(e for e in design.state_elements if e.name == name)


def test_clean_baseline():
    assert check_design(_tiny_design()) == []


def test_net001_combinational_cycle():
    design = _tiny_design()
    netlist = design.netlist
    data = design.input_ports["in"][0]
    a = netlist.new_net("loop_a")
    b = netlist.new_net("loop_b")
    netlist._gates.append(Gate(GateKind.AND, (b, data), a, "loop_g1"))
    netlist._gates.append(Gate(GateKind.AND, (a, data), b, "loop_g2"))
    _element(design, "cap").d_nets = [a]
    assert "NET001" in _codes(design)


def test_net002_multiply_driven_net():
    design = _tiny_design()
    data = design.input_ports["in"][0]
    fsm_d = _element(design, "fsm").d_nets[0]
    design.netlist._gates.append(Gate(GateKind.BUF, (data,), fsm_d, "rogue_buf"))
    assert "NET002" in _codes(design)


def test_net003_floating_net_consumed():
    design = _tiny_design()
    _element(design, "cap").d_nets = [Net("floating")]
    assert "NET003" in _codes(design)


def test_net004_width_mismatch():
    design = _tiny_design()
    _element(design, "cap").width = 2  # declares 2 bits, wires 1
    assert "NET004" in _codes(design)


def test_net004_q_bit_not_primary():
    design = _tiny_design()
    fsm_d = _element(design, "fsm").d_nets[0]
    _element(design, "cap").q_nets = [fsm_d]  # q fed by a gate output
    assert "NET004" in _codes(design)


def test_net004_input_port_bit_not_primary():
    design = _tiny_design()
    fsm_d = _element(design, "fsm").d_nets[0]
    design.input_ports["in"] = [fsm_d]
    assert "NET004" in _codes(design)


def test_net005_dead_gate_is_a_warning():
    design = _tiny_design()
    data = design.input_ports["in"][0]
    design.netlist.add_gate(GateKind.AND, (data, data))
    findings = [f for f in check_design(design) if f.code == "NET005"]
    assert findings
    assert all(f.severity is Severity.WARNING for f in findings)


def test_net006_fsm_not_autonomous():
    design = _tiny_design()
    data = design.input_ports["in"][0]
    _element(design, "fsm").d_nets = [data]  # next state reads a data input
    assert "NET006" in _codes(design)


def test_net006_fsm_state_unreachable():
    design = _tiny_design()
    fsm = _element(design, "fsm")
    fsm.d_nets = [fsm.q_nets[0]]  # stuck in the reset state
    assert "NET006" in _codes(design)


def test_net007_register_never_loaded():
    design = _tiny_design()
    cap = _element(design, "cap")
    cap.d_nets = [cap.q_nets[0]]  # pure hold path
    assert "NET007" in _codes(design)
