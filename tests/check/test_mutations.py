"""The mutation self-test harness catches every seeded corruption.

This is the checkers' own acceptance gate: for each diagnostic code one
single-point corruption is applied to a freshly built clean artifact, and the
checker of that level must flag it with the intended code while the
unmutated baseline stays clean.  Co-firing additional codes is legal (one
corruption can break several invariants at once); missing the intended code
is not.
"""

import pytest

from repro.check import CODE_REGISTRY, CheckError, run_mutations, self_test
from repro.check.mutate import _MUTATIONS


def test_one_mutation_per_diagnostic_code():
    exercised = {code for _name, code, _fn in _MUTATIONS}
    assert exercised == set(CODE_REGISTRY)


def test_every_mutation_caught():
    outcomes = run_mutations(seed=2005)
    assert len(outcomes) == len(_MUTATIONS)
    for outcome in outcomes:
        assert outcome.clean_before, f"{outcome.name}: baseline not clean"
        assert outcome.caught, outcome.describe()
        assert outcome.code in outcome.reported
        assert outcome.level == CODE_REGISTRY[outcome.code][0]


def test_self_test_passes_on_alternate_seed():
    # A different seed picks different corruption sites; the harness must
    # not depend on one lucky draw.
    outcomes = self_test(seed=42)
    assert all(outcome.ok for outcome in outcomes)


def test_self_test_reports_escapes(monkeypatch):
    # A corruption the checkers never flag must fail the self-test loudly.
    from repro.check import mutate

    def ineffective_mutation(_rng):
        return [], []  # clean before, *and* clean after: nothing was caught

    monkeypatch.setattr(
        mutate, "_MUTATIONS", [("stub", "SPEC001", ineffective_mutation)]
    )
    with pytest.raises(CheckError, match="escaped"):
        mutate.self_test(seed=0)


def test_outcome_describe_mentions_verdict():
    from repro.check.mutate import MutationOutcome

    ok = MutationOutcome("m", "SPEC001", "spec", True, True, ("SPEC001",))
    missed = MutationOutcome("m", "SPEC001", "spec", True, False, ())
    assert "ok" in ok.describe()
    assert "MISSED" in missed.describe()
