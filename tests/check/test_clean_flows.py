"""The checkers report zero diagnostics on every healthy flow.

Acceptance property of the static verification layer: all nine registered
workloads, in both flow modes, all the way down to the emitted netlist, plus
the seed-263 generated falsifier family every property suite pins, must come
back completely clean.  A single warning here is either a checker
false positive or a real latent defect -- both block the PR.
"""

import pytest

from repro.api.config import FlowConfig
from repro.api.pipeline import Pipeline
from repro.check import (
    check_artifact,
    check_design,
    check_schedule,
    check_specification,
)
from repro.core import TransformOptions, transform
from repro.hls.datapath import build_datapath
from repro.hls.flow import FlowMode, run_schedule, run_timing
from repro.rtl.emit import emit_design
from repro.techlib.library import default_library
from repro.workloads import ALL_WORKLOADS, GeneratorConfig, random_specification

#: The latency each workload's paper table uses (emission default latencies).
WORKLOAD_LATENCIES = {
    "motivational": 3,
    "fig3": 3,
    "elliptic": 11,
    "diffeq": 6,
    "iir4": 6,
    "fir2": 5,
    "adpcm_iaq": 3,
    "adpcm_ttd": 5,
    "adpcm_opfc_sca": 12,
}

ALL_POINTS = [
    (workload, WORKLOAD_LATENCIES[workload], mode)
    for workload in sorted(ALL_WORKLOADS)
    for mode in ("conventional", "fragmented")
]


@pytest.mark.parametrize(
    "workload,latency,mode",
    ALL_POINTS,
    ids=[f"{w}-{m}" for w, _l, m in ALL_POINTS],
)
def test_all_workloads_check_clean(workload, latency, mode):
    config = FlowConfig(
        latency=latency, mode=mode, workload=workload, emit=True, check=True
    )
    artifact = Pipeline().run(config, use_cache=False)
    report = artifact.check
    assert report is not None
    assert report.levels == ("spec", "schedule", "allocation", "netlist")
    assert report.diagnostics == [], report.render_text()


def test_generated_family_checks_clean():
    """The seed-263 falsifier family is clean at every level in both modes."""
    seed = 263
    generator = GeneratorConfig(operation_count=7, input_count=3, maximum_width=10)
    spec = random_specification(seed, generator)
    library = default_library()

    result = transform(spec, 3, TransformOptions(check_equivalence=False))
    schedule, budget = run_schedule(
        result.transformed,
        3,
        library,
        FlowMode.FRAGMENTED,
        chained_bits_per_cycle=result.chained_bits_per_cycle,
    )
    timing = run_timing(schedule, library, FlowMode.FRAGMENTED)
    datapath = build_datapath(schedule, library, reuse=False)
    design = emit_design(schedule, library, datapath).design
    assert check_specification(result.transformed) == []
    assert check_schedule(schedule, budget=budget, timing=timing) == []
    assert check_design(design) == []

    conventional, _ = run_schedule(spec, 3, library, FlowMode.CONVENTIONAL)
    design = emit_design(conventional, library).design
    assert check_specification(spec) == []
    assert check_schedule(conventional, bit_level=False) == []
    assert check_design(design) == []


def test_check_artifact_level_prefixes():
    config = FlowConfig(latency=3, mode="fragmented", workload="motivational")
    artifact = Pipeline().run(config, use_cache=False)
    report = check_artifact(artifact, level="schedule")
    assert report.levels == ("spec", "schedule")
    assert report.clean


def test_check_artifact_netlist_needs_emission():
    from repro.check import CheckError

    config = FlowConfig(latency=3, mode="fragmented", workload="motivational")
    artifact = Pipeline().run(config, use_cache=False)
    with pytest.raises(CheckError, match="emit"):
        check_artifact(artifact, level="netlist")
