"""Unit tests for the diagnostics engine of :mod:`repro.check`.

The code registry is the single source of truth for the diagnostic
namespace: every code belongs to exactly one IR level, carries a default
severity, and is the only way a checker can emit a finding.  The report
object aggregates findings and drives both the human rendering and the JSON
artifact, so its counting and gating semantics are pinned here.
"""

import json

import pytest

from repro.check import (
    CODE_REGISTRY,
    LEVELS,
    CheckError,
    CheckReport,
    Severity,
    SourceSpan,
    diagnostic,
)

#: code prefix -> the level every code with that prefix must belong to.
PREFIX_LEVELS = {
    "SPEC": "spec",
    "SCHED": "schedule",
    "ALLOC": "allocation",
    "NET": "netlist",
}


class TestRegistry:
    def test_every_level_has_codes(self):
        covered = {level for level, _severity, _title in CODE_REGISTRY.values()}
        assert covered == set(LEVELS)

    def test_code_prefixes_match_levels(self):
        for code, (level, _severity, _title) in CODE_REGISTRY.items():
            prefix = code.rstrip("0123456789")
            assert PREFIX_LEVELS[prefix] == level, code

    def test_codes_are_stable_and_numbered(self):
        # Codes are documented in README/DESIGN; renaming one is a breaking
        # change, so the full namespace is pinned here.
        assert sorted(CODE_REGISTRY) == [
            "ALLOC001",
            "ALLOC002",
            "ALLOC003",
            "ALLOC004",
            "ALLOC005",
            "ALLOC006",
            "NET001",
            "NET002",
            "NET003",
            "NET004",
            "NET005",
            "NET006",
            "NET007",
            "SCHED001",
            "SCHED002",
            "SCHED003",
            "SCHED004",
            "SCHED005",
            "SCHED006",
            "SPEC001",
            "SPEC002",
            "SPEC003",
            "SPEC004",
            "SPEC005",
            "SPEC006",
        ]

    def test_every_code_has_a_title(self):
        for code, (_level, severity, title) in CODE_REGISTRY.items():
            assert title.strip(), code
            assert severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)

    def test_unregistered_code_fails_loudly(self):
        with pytest.raises(CheckError, match="unregistered"):
            diagnostic("SPEC999", "no such invariant")

    def test_diagnostic_inherits_level_and_severity(self):
        finding = diagnostic("ALLOC004", "spare unit")
        assert finding.level == "allocation"
        assert finding.severity is Severity.WARNING
        overridden = diagnostic("ALLOC004", "spare unit", severity=Severity.ERROR)
        assert overridden.severity is Severity.ERROR


class TestSourceSpan:
    def test_describe_includes_bit_and_cycle(self):
        span = SourceSpan(kind="bit", name="acc", bit=3, cycle=2)
        assert span.describe() == "bit acc[3] @cycle 2"
        assert SourceSpan(kind="unit", name="adder0").describe() == "unit adder0"

    def test_to_dict_omits_absent_refinements(self):
        assert SourceSpan(kind="net", name="n1").to_dict() == {
            "kind": "net",
            "name": "n1",
        }
        assert SourceSpan(kind="cycle", name="2", cycle=2).to_dict() == {
            "kind": "cycle",
            "name": "2",
            "cycle": 2,
        }


class TestCheckReport:
    def _report(self):
        report = CheckReport(subject="unit")
        report.extend(
            "spec",
            [
                diagnostic("SPEC001", "double writer"),
                diagnostic("SPEC005", "dead add"),
            ],
        )
        report.extend("schedule", [])
        return report

    def test_counts_and_gates(self):
        report = self._report()
        assert report.error_count == 1
        assert report.warning_count == 1
        assert report.codes == ["SPEC001", "SPEC005"]
        assert not report.clean  # warnings break cleanliness
        assert not report.passed  # errors break the pass gate
        assert report.levels == ("spec", "schedule")

    def test_warning_only_report_passes_but_is_not_clean(self):
        report = CheckReport(subject="w")
        report.extend("spec", [diagnostic("SPEC005", "dead add")])
        assert report.passed
        assert not report.clean
        report.raise_on_errors()  # warnings alone must not raise

    def test_empty_report_is_clean(self):
        report = CheckReport(subject="quiet")
        assert report.clean and report.passed
        assert "clean: no diagnostics" in report.render_text()

    def test_extend_rejects_unknown_level(self):
        with pytest.raises(CheckError, match="unknown check level"):
            CheckReport(subject="x").extend("gateware", [])

    def test_raise_on_errors_lists_findings(self):
        with pytest.raises(CheckError, match="SPEC001"):
            self._report().raise_on_errors()

    def test_render_text_one_line_per_finding(self):
        text = self._report().render_text()
        assert "SPEC001" in text and "SPEC005" in text
        assert "1 error(s), 1 warning(s)" in text

    def test_json_round_trip(self):
        payload = json.loads(self._report().to_json())
        assert payload["subject"] == "unit"
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert payload["clean"] is False
        codes = [item["code"] for item in payload["diagnostics"]]
        assert codes == ["SPEC001", "SPEC005"]
        severities = [item["severity"] for item in payload["diagnostics"]]
        assert severities == ["error", "warning"]
