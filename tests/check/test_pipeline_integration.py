"""Integration of the static checks with the pipeline, config, report and CLI.

``check=True`` must run the checkers as a pipeline pass (failing the run on
any diagnostic), surface the results through the schema-versioned report
keys, join the config content hash, and be reachable through the
``python -m repro check`` verb.
"""

import json

import pytest

from repro.api.artifacts import REPORT_SCHEMA_VERSION, build_report
from repro.api.cli import main
from repro.api.config import ConfigError, FlowConfig
from repro.api.pipeline import Pipeline
from repro.check import CheckError


class TestConfig:
    def test_check_fields_default_off(self):
        config = FlowConfig(latency=3, workload="motivational")
        assert config.check is False
        assert config.check_level is None

    def test_check_level_requires_check(self):
        with pytest.raises(ConfigError, match="requires check=True"):
            FlowConfig(latency=3, workload="motivational", check_level="spec")

    def test_unknown_check_level_rejected(self):
        with pytest.raises(ConfigError, match="unknown check_level"):
            FlowConfig(
                latency=3, workload="motivational", check=True, check_level="gates"
            )

    def test_netlist_level_requires_emit(self):
        with pytest.raises(ConfigError, match="emit=True"):
            FlowConfig(
                latency=3, workload="motivational", check=True, check_level="netlist"
            )

    def test_check_joins_content_hash(self):
        plain = FlowConfig(latency=3, workload="motivational")
        checked = FlowConfig(latency=3, workload="motivational", check=True)
        assert plain.content_hash() != checked.content_hash()

    def test_round_trip_preserves_check_fields(self):
        config = FlowConfig(
            latency=3,
            workload="motivational",
            check=True,
            check_level="allocation",
        )
        again = FlowConfig.from_dict(json.loads(config.to_json()))
        assert again.check is True
        assert again.check_level == "allocation"
        assert again.content_hash() == config.content_hash()


class TestCheckPass:
    def test_pass_fills_artifact_and_report(self):
        config = FlowConfig(
            latency=3, mode="fragmented", workload="motivational", check=True
        )
        artifact = Pipeline().run(config, use_cache=False)
        assert artifact.check is not None
        assert artifact.check.clean
        report = build_report(artifact)
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["check_ok"] is True
        assert report["check_errors"] == 0
        assert report["check_warnings"] == 0
        assert report["check_levels"] == ["spec", "schedule", "allocation"]

    def test_pass_includes_netlist_level_with_emit(self):
        config = FlowConfig(
            latency=3,
            mode="fragmented",
            workload="motivational",
            emit=True,
            check=True,
        )
        artifact = Pipeline().run(config, use_cache=False)
        assert artifact.check.levels == ("spec", "schedule", "allocation", "netlist")

    def test_pass_skipped_without_check(self):
        config = FlowConfig(latency=3, workload="motivational")
        artifact = Pipeline().run(config, use_cache=False)
        assert artifact.check is None
        assert "check_ok" not in build_report(artifact)

    def test_dirty_run_fails_the_pipeline(self):
        # A dead additive definition is a SPEC005 warning; the pass treats
        # any diagnostic at warning severity or above as a failed run.
        from repro.ir.operations import Operation, OpKind
        from repro.ir.types import BitVectorType
        from repro.ir.values import Destination, PortDirection, Variable
        from repro.ir.spec import Specification

        spec = Specification("dirty")
        a = spec.add_variable(
            Variable("a", BitVectorType(4, False), PortDirection.INPUT)
        )
        o = spec.add_variable(
            Variable("o", BitVectorType(4, False), PortDirection.OUTPUT)
        )
        dead = spec.add_variable(Variable("dead", BitVectorType(5, False)))
        spec.add_operation(
            Operation(
                kind=OpKind.MOVE,
                operands=(a.whole(),),
                destination=Destination(o, o.full_range()),
                name="move_o",
            )
        )
        spec.add_operation(
            Operation(
                kind=OpKind.ADD,
                operands=(a.whole(), a.whole()),
                destination=Destination(dead, dead.full_range()),
                name="dead_add",
            )
        )
        config = FlowConfig(
            latency=2, transform=False, validate_input=False, check=True
        )
        with pytest.raises(CheckError, match="SPEC005"):
            Pipeline().run(config, specification=spec, use_cache=False)


class TestCli:
    def test_check_verb_clean_workload(self, capsys):
        assert main(["check", "motivational"]) == 0
        out = capsys.readouterr().out
        assert "clean: no diagnostics" in out

    def test_check_verb_json(self, capsys):
        assert main(["check", "fig3", "-l", "3", "-m", "fragmented", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "fig3"
        assert payload["clean"] is True
        assert payload["levels"] == ["spec", "schedule", "allocation", "netlist"]
        assert payload["diagnostics"] == []

    def test_check_verb_level_prefix(self, capsys):
        assert main(["check", "motivational", "--level", "schedule", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["levels"] == ["spec", "schedule"]

    def test_check_verb_requires_workload(self, capsys):
        assert main(["check"]) == 2
        assert "workload" in capsys.readouterr().err.lower()
