"""The interval/run allocation fast paths equal the legacy per-bit scans.

The fast engines must be drop-in: identical value groups, identical register
instances, identical binding maps and identical multiplexer lists, workload
by workload and over generated specifications (including the seed-263
falsifier family every property suite pins).
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.api.config import FlowConfig
from repro.api.pipeline import Pipeline
from repro.hls.allocation import (
    allocate_functional_units,
    allocate_registers,
    analyze_lifetimes,
    estimate_interconnect,
)
from repro.hls.datapath import build_datapath, clear_datapath_memo
from repro.hls.flow import FlowMode, run_schedule
from repro.workloads import GeneratorConfig, random_specification

#: (workload, latency, mode) points covering both flows.
POINTS = [
    ("motivational", 3, "fragmented"),
    ("motivational", 3, "conventional"),
    ("fig3", 3, "fragmented"),
    ("fir2", 3, "fragmented"),
    ("adpcm_iaq", 3, "fragmented"),
    ("adpcm_iaq", 3, "conventional"),
]


def _scheduled(workload, latency, mode):
    artifact = Pipeline().run(
        FlowConfig(latency=latency, mode=mode, workload=workload),
        use_cache=False,
        stop_after="time",
    )
    return artifact.schedule, artifact.library


def _register_shape(allocation):
    return [
        (register.identifier, register.width, register.groups)
        for register in allocation.registers
    ]


def assert_engines_agree(schedule, library):
    fast_groups = analyze_lifetimes(schedule, engine="interval")
    legacy_groups = analyze_lifetimes(schedule, engine="legacy")
    assert fast_groups == legacy_groups

    functional_units = allocate_functional_units(schedule, library)
    fast_registers = allocate_registers(schedule, library)
    legacy_registers = allocate_registers(schedule, library, lifetime_engine="legacy")
    assert _register_shape(fast_registers) == _register_shape(legacy_registers)
    assert fast_registers.stored_bits == legacy_registers.stored_bits
    assert fast_registers.total_area == legacy_registers.total_area

    fast_interconnect = estimate_interconnect(
        schedule, functional_units, fast_registers, library
    )
    legacy_interconnect = estimate_interconnect(
        schedule, functional_units, legacy_registers, library, engine="legacy"
    )
    assert fast_interconnect.multiplexers == legacy_interconnect.multiplexers
    assert fast_interconnect.total_area == legacy_interconnect.total_area
    assert (
        fast_interconnect.total_select_signals
        == legacy_interconnect.total_select_signals
    )


class TestEngineEquality:
    @pytest.mark.parametrize("workload,latency,mode", POINTS)
    def test_workload_points(self, workload, latency, mode):
        schedule, library = _scheduled(workload, latency, mode)
        assert_engines_agree(schedule, library)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5000))
    @example(seed=263)  # the pinned falsifier family of the e2e suite
    def test_generated_specifications(self, seed):
        from repro.core import TransformOptions, transform
        from repro.techlib.library import default_library

        config = GeneratorConfig(operation_count=7, input_count=3, maximum_width=10)
        spec = random_specification(seed, config)
        result = transform(spec, 3, TransformOptions(check_equivalence=False))
        library = default_library()
        schedule, _budget = run_schedule(
            result.transformed,
            3,
            library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        assert_engines_agree(schedule, library)

    def test_rejects_unknown_engines(self):
        schedule, library = _scheduled("motivational", 3, "conventional")
        with pytest.raises(ValueError):
            analyze_lifetimes(schedule, engine="quantum")
        with pytest.raises(ValueError):
            estimate_interconnect(
                schedule,
                allocate_functional_units(schedule, library),
                allocate_registers(schedule, library),
                library,
                engine="quantum",
            )


class TestDatapathMemo:
    def test_identical_schedules_share_allocation(self):
        schedule, library = _scheduled("adpcm_iaq", 3, "fragmented")
        clear_datapath_memo()
        first = build_datapath(schedule, library)
        second = build_datapath(schedule.copy(), library)
        # Shared allocation objects, identical areas, caller's schedule.
        assert second.functional_units is first.functional_units
        assert second.registers is first.registers
        assert second.area_breakdown() == first.area_breakdown()
        assert second.schedule is not first.schedule

    def test_memo_result_equals_fresh_result(self):
        schedule, library = _scheduled("fir2", 3, "fragmented")
        clear_datapath_memo()
        memoized = build_datapath(schedule, library)
        fresh = build_datapath(schedule, library, reuse=False)
        assert memoized.area_breakdown() == fresh.area_breakdown()
        assert _register_shape(memoized.registers) == _register_shape(fresh.registers)

    def test_different_schedules_do_not_collide(self):
        schedule, library = _scheduled("motivational", 3, "conventional")
        clear_datapath_memo()
        first = build_datapath(schedule, library)
        other, other_library = _scheduled("motivational", 4, "conventional")
        second = build_datapath(other, other_library)
        assert second.schedule.latency == 4
        assert second is not first
