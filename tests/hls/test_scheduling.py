"""Unit tests for the schedulers of the HLS substrate."""

import pytest

from repro.core import TransformOptions, transform
from repro.hls.scheduling import (
    FragmentSchedulerOptions,
    SchedulingError,
    asap_chained,
    asap_cycles_needed,
    alap_chained,
    minimize_clock_period,
    mobility_windows,
    schedule_bit_level_chaining,
    schedule_conventional,
    schedule_fragments,
    verify_budget,
)
from repro.hls.timing import bit_level_cycle_depths
from repro.techlib import default_library
from repro.workloads import addition_chain, fig3_example, motivational_example


@pytest.fixture
def library():
    return default_library()


class TestChainedAsapAlap:
    def test_wide_clock_fits_everything_in_one_cycle(self, library):
        spec = motivational_example()
        placements = asap_chained(spec, 30.0, library)
        assert all(p.cycle == 1 for p in placements.values())

    def test_tight_clock_needs_one_cycle_per_operation(self, library):
        spec = motivational_example()
        assert asap_cycles_needed(spec, 9.5, library) == 3

    def test_clock_below_operation_delay_rejected(self, library):
        spec = motivational_example()
        with pytest.raises(SchedulingError):
            asap_chained(spec, 5.0, library)

    def test_alap_anchors_at_latency(self, library):
        spec = motivational_example()
        placements = alap_chained(spec, 9.5, 5, library)
        assert placements[spec.operation_named("add_G")].cycle == 5
        assert placements[spec.operation_named("add_C")].cycle == 3

    def test_alap_rejects_impossible_latency(self, library):
        spec = motivational_example()
        with pytest.raises(SchedulingError):
            alap_chained(spec, 9.5, 2, library)

    def test_mobility_windows(self, library):
        spec = motivational_example()
        asap = asap_chained(spec, 9.5, library)
        alap = alap_chained(spec, 9.5, 5, library)
        windows = mobility_windows(asap, alap)
        assert windows[spec.operation_named("add_C")] == (1, 3)
        assert windows[spec.operation_named("add_G")] == (3, 5)


class TestClockMinimisation:
    def test_motivational_latency3_gives_single_addition_period(self, library):
        result = minimize_clock_period(motivational_example(), 3, library)
        assert result.clock_period_ns == pytest.approx(9.4, abs=0.05)

    def test_motivational_latency1_gives_fully_chained_period(self, library):
        result = minimize_clock_period(motivational_example(), 1, library)
        assert result.clock_period_ns == pytest.approx(3 * 9.4, abs=0.1)

    def test_latency2_chains_two_operations(self, library):
        result = minimize_clock_period(motivational_example(), 2, library)
        assert result.clock_period_ns == pytest.approx(2 * 9.4, abs=0.1)

    def test_extra_latency_does_not_help_below_op_delay(self, library):
        result = minimize_clock_period(motivational_example(), 10, library)
        assert result.clock_period_ns == pytest.approx(9.4, abs=0.05)

    def test_invalid_latency_rejected(self, library):
        with pytest.raises(SchedulingError):
            minimize_clock_period(motivational_example(), 0, library)


class TestConventionalFlow:
    def test_schedule_is_complete_and_legal(self, library):
        spec = fig3_example()
        schedule, search = schedule_conventional(spec, 3, library)
        assert schedule.is_complete()
        schedule.check_precedence()
        assert search.cycles_needed <= 3

    def test_longer_chain_needs_chaining(self, library):
        spec = addition_chain(6, 8)
        schedule, search = schedule_conventional(spec, 3, library)
        assert schedule.used_cycles() <= 3
        # Six 8-bit additions in three cycles: two chained additions per cycle.
        assert search.clock_period_ns == pytest.approx(2 * 8 * 0.5875, abs=0.1)


class TestFragmentScheduler:
    def test_motivational_fragments_meet_budget(self):
        result = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        schedule = schedule_fragments(result.transformed, 3, result.chained_bits_per_cycle)
        depths = verify_budget(schedule, result.chained_bits_per_cycle)
        assert set(depths) == {1, 2, 3}

    def test_asap_placement_option(self):
        result = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        options = FragmentSchedulerOptions(balance=False)
        schedule = schedule_fragments(
            result.transformed, 3, result.chained_bits_per_cycle, options
        )
        depths = bit_level_cycle_depths(schedule)
        assert max(depths.values()) <= result.chained_bits_per_cycle

    def test_unannotated_specification_gets_recomputed_mobility(self):
        # Hand-built fragmented specification without asap/alap attributes.
        spec = motivational_example()
        schedule = schedule_fragments(spec, 3, 16)
        assert schedule.is_complete()
        assert max(bit_level_cycle_depths(schedule).values()) <= 16 + 2

    def test_invalid_parameters_rejected(self):
        spec = motivational_example()
        with pytest.raises(SchedulingError):
            schedule_fragments(spec, 0, 6)
        with pytest.raises(SchedulingError):
            schedule_fragments(spec, 3, 0)

    def test_glue_follows_producers(self):
        result = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        schedule = schedule_fragments(result.transformed, 3, result.chained_bits_per_cycle)
        from repro.ir.dfg import DataFlowGraph

        graph = DataFlowGraph(result.transformed)
        for operation in result.transformed.operations:
            if operation.is_additive:
                continue
            for predecessor in graph.predecessors(operation):
                if predecessor.is_additive:
                    assert schedule.cycle(operation) >= schedule.cycle(predecessor)


class TestBitLevelChainingScheduler:
    def test_single_cycle_blc(self):
        result = schedule_bit_level_chaining(motivational_example(), 1)
        assert result.critical_path_bits == 18
        assert result.chained_bits_per_cycle == 18
        depths = bit_level_cycle_depths(result.schedule)
        assert depths[1] == 18

    def test_multi_cycle_blc(self):
        result = schedule_bit_level_chaining(motivational_example(), 3)
        assert result.schedule.used_cycles() <= 3
        assert result.schedule.is_complete()
        assert result.chained_bits_per_cycle >= 6

    def test_invalid_latency_rejected(self):
        with pytest.raises(SchedulingError):
            schedule_bit_level_chaining(motivational_example(), 0)
