"""Unit tests for the Schedule data structure and schedule timing analysis."""

import pytest

from repro.core import TransformOptions, transform
from repro.hls.schedule import Schedule, ScheduleError
from repro.hls.timing import (
    analyze_bit_level,
    analyze_operation_level,
    bit_level_cycle_depths,
    operation_level_cycle_delays,
)
from repro.ir.dfg import BitDependencyGraph
from repro.techlib import default_library
from repro.workloads import motivational_example


@pytest.fixture
def spec():
    return motivational_example()


def chain_schedule(spec, cycles):
    schedule = Schedule(spec, max(cycles))
    for operation, cycle in zip(spec.operations, cycles):
        schedule.assign(operation, cycle)
    return schedule


class TestSchedule:
    def test_assign_and_query(self, spec):
        schedule = chain_schedule(spec, [1, 2, 3])
        assert schedule.cycle(spec.operation_named("add_E")) == 2
        assert schedule.is_complete()
        assert schedule.used_cycles() == 3

    def test_assign_out_of_range_rejected(self, spec):
        schedule = Schedule(spec, 3)
        with pytest.raises(ScheduleError):
            schedule.assign(spec.operations[0], 4)
        with pytest.raises(ScheduleError):
            schedule.assign(spec.operations[0], 0)

    def test_unscheduled_query_rejected(self, spec):
        schedule = Schedule(spec, 3)
        with pytest.raises(ScheduleError):
            schedule.cycle(spec.operations[0])

    def test_latency_must_be_positive(self, spec):
        with pytest.raises(ScheduleError):
            Schedule(spec, 0)

    def test_operations_in_cycle(self, spec):
        schedule = chain_schedule(spec, [1, 1, 2])
        assert len(schedule.operations_in_cycle(1)) == 2
        assert len(schedule.additive_operations_in_cycle(2)) == 1
        assert schedule.operations_in_cycle(3) == []

    def test_precedence_check_accepts_chaining(self, spec):
        schedule = chain_schedule(spec, [1, 1, 1])
        schedule.check_precedence()

    def test_precedence_check_rejects_backwards_edges(self, spec):
        schedule = chain_schedule(spec, [2, 1, 3])
        with pytest.raises(ScheduleError):
            schedule.check_precedence()

    def test_incomplete_schedule_rejected_by_precedence_check(self, spec):
        schedule = Schedule(spec, 3)
        schedule.assign(spec.operations[0], 1)
        with pytest.raises(ScheduleError):
            schedule.check_precedence()

    def test_copy_is_independent(self, spec):
        schedule = chain_schedule(spec, [1, 2, 3])
        clone = schedule.copy()
        clone.assign(spec.operations[0], 2)
        assert schedule.cycle(spec.operations[0]) == 1

    def test_describe_lists_cycles(self, spec):
        schedule = chain_schedule(spec, [1, 2, 3])
        text = schedule.describe()
        assert "cycle 1" in text and "add_C" in text

    def test_bit_precedence_check(self, spec):
        schedule = chain_schedule(spec, [2, 1, 3])
        with pytest.raises(ScheduleError):
            schedule.check_bit_precedence(BitDependencyGraph(spec))


class TestOperationLevelTiming:
    def test_one_operation_per_cycle(self, spec):
        library = default_library()
        schedule = chain_schedule(spec, [1, 2, 3])
        delays = operation_level_cycle_delays(schedule, library)
        for cycle in (1, 2, 3):
            assert delays[cycle] == pytest.approx(9.4, abs=0.05)
        timing = analyze_operation_level(schedule, library)
        assert timing.cycle_length_ns == pytest.approx(9.45, abs=0.05)
        assert timing.execution_time_ns == pytest.approx(3 * 9.45, abs=0.2)

    def test_chained_operations_accumulate(self, spec):
        library = default_library()
        schedule = chain_schedule(spec, [1, 1, 2])
        delays = operation_level_cycle_delays(schedule, library)
        assert delays[1] == pytest.approx(2 * 9.4, abs=0.1)
        assert delays[2] == pytest.approx(9.4, abs=0.05)

    def test_idle_cycles_have_zero_delay(self, spec):
        library = default_library()
        schedule = chain_schedule(spec, [1, 1, 1])
        schedule.latency = 3
        delays = operation_level_cycle_delays(schedule, library)
        assert delays[2] == 0.0 and delays[3] == 0.0

    def test_timing_memo_distinguishes_libraries(self, spec):
        """The schedule-level memo must not serve one library's delays to
        another -- including freshly allocated libraries whose id() may be
        recycled from a collected one."""
        from repro.techlib.adders import AdderStyle
        from repro.techlib.library import TechnologyLibrary

        schedule = chain_schedule(spec, [1, 2, 3])
        fast = operation_level_cycle_delays(
            schedule, TechnologyLibrary(adder_style=AdderStyle.FAST_LOOKAHEAD)
        )
        slow = operation_level_cycle_delays(
            schedule, TechnologyLibrary(adder_style=AdderStyle.RIPPLE_CARRY)
        )
        assert slow[1] == pytest.approx(9.4, abs=0.05)
        assert fast[1] < slow[1]

    def test_timing_memo_distinguishes_graphs(self, spec):
        schedule = chain_schedule(spec, [1, 1, 1])
        first = bit_level_cycle_depths(schedule, BitDependencyGraph(spec))
        second = bit_level_cycle_depths(schedule, BitDependencyGraph(spec))
        assert first == second == bit_level_cycle_depths(schedule)


class TestBitLevelTiming:
    def test_fully_chained_single_cycle(self, spec):
        schedule = chain_schedule(spec, [1, 1, 1])
        depths = bit_level_cycle_depths(schedule)
        assert depths[1] == 18

    def test_one_operation_per_cycle_depths(self, spec):
        schedule = chain_schedule(spec, [1, 2, 3])
        depths = bit_level_cycle_depths(schedule)
        assert depths == {1: 16, 2: 16, 3: 16}

    def test_transformed_schedule_meets_budget(self):
        result = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        from repro.hls.scheduling import schedule_fragments

        schedule = schedule_fragments(result.transformed, 3, result.chained_bits_per_cycle)
        depths = bit_level_cycle_depths(schedule)
        assert max(depths.values()) <= result.chained_bits_per_cycle
        timing = analyze_bit_level(schedule, default_library())
        assert timing.cycle_length_ns == pytest.approx(3.575, abs=0.05)
        assert timing.max_chained_bits == 6
