"""SchedulerPolicy, parameterized ready-queue priorities and the
beam/multi-start search layer.

The two contracts under test:

* ``policy="paper"`` is the pinned deterministic heuristic -- schedules,
  cycle maps and achieved periods are bit-identical to the historical
  ``schedule_conventional`` / ``schedule_fragments`` outputs;
* ``policy="search"`` never returns a schedule worse than the paper baseline
  in the real reported metrics (period, then allocated total area), because
  the baseline is always a candidate and only a strictly better cost
  replaces it.
"""

import pytest

from repro.core import TransformOptions, transform
from repro.hls.datapath import build_datapath
from repro.hls.flow import FlowMode, resolve_budget, run_schedule_with_policy
from repro.hls.scheduling import (
    PolicyError,
    ReadyQueuePriority,
    SchedulerPolicy,
    SchedulingError,
    alap_chained,
    asap_chained,
    draw_weights,
    list_schedule,
    minimize_clock_period,
    mobility_windows,
    policy_starts,
    schedule_conventional,
    schedule_fragments,
    search_conventional,
    search_fragmented,
    verify_budget,
)
from repro.hls.scheduling.search import conventional_cost, fragmented_cost
from repro.techlib import default_library
from repro.workloads import ALL_WORKLOADS, fig3_example, motivational_example


@pytest.fixture
def library():
    return default_library()


def transformed(spec_factory, latency):
    result = transform(spec_factory(), latency, TransformOptions(check_equivalence=False))
    return result.transformed, result.chained_bits_per_cycle


class TestSchedulerPolicy:
    def test_default_is_paper_surface(self):
        policy = SchedulerPolicy()
        assert policy.policy == "paper"
        assert policy.is_paper_search_surface()
        assert not policy.search_enabled

    def test_round_trip(self):
        policy = SchedulerPolicy(
            policy="search",
            beam_width=4,
            starts=8,
            criticality_weight=1.5,
            tie_break_seed=7,
        )
        assert SchedulerPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_key_rejected(self):
        with pytest.raises(PolicyError) as excinfo:
            SchedulerPolicy.from_dict({"beam": 3})
        assert "unknown" in str(excinfo.value)

    def test_search_knobs_require_search_policy(self):
        with pytest.raises(PolicyError):
            SchedulerPolicy(beam_width=2)
        with pytest.raises(PolicyError):
            SchedulerPolicy(starts=3)
        with pytest.raises(PolicyError):
            SchedulerPolicy(criticality_weight=1.0)
        with pytest.raises(PolicyError):
            SchedulerPolicy(tie_break_seed=1)
        with pytest.raises(PolicyError):
            SchedulerPolicy(seed=42)

    def test_bounds_enforced(self):
        with pytest.raises(PolicyError):
            SchedulerPolicy(policy="search", beam_width=0)
        with pytest.raises(PolicyError):
            SchedulerPolicy(policy="search", beam_width=65)
        with pytest.raises(PolicyError):
            SchedulerPolicy(policy="search", starts=0)
        with pytest.raises(PolicyError):
            SchedulerPolicy(policy="search", starts=257)
        with pytest.raises(PolicyError):
            SchedulerPolicy(policy="search", mobility_weight=-0.1)
        with pytest.raises(PolicyError):
            SchedulerPolicy(chained_bits_per_cycle=0)
        with pytest.raises(PolicyError):
            SchedulerPolicy(policy="asap")

    def test_budget_and_balance_legal_with_paper(self):
        policy = SchedulerPolicy(chained_bits_per_cycle=9, balance_fragments=False)
        assert policy.is_paper_search_surface()


class TestDrawWeights:
    def test_start_zero_is_the_policy_itself(self):
        policy = SchedulerPolicy(
            policy="search", criticality_weight=1.25, tie_break_seed=99
        )
        assert draw_weights(policy, 0) == (1.25, 0.0, 0.0, 99)

    def test_draws_are_deterministic_and_distinct(self):
        policy = SchedulerPolicy(policy="search", starts=8)
        draws = [draw_weights(policy, s) for s in range(8)]
        assert draws == [draw_weights(policy, s) for s in range(8)]
        assert len(set(draws)) == len(draws)

    def test_draws_depend_on_the_master_seed(self):
        a = SchedulerPolicy(policy="search", seed=263)
        b = SchedulerPolicy(policy="search", seed=264)
        assert draw_weights(a, 1) != draw_weights(b, 1)

    def test_policy_starts_materializes_every_draw(self):
        policy = SchedulerPolicy(policy="search", beam_width=2, starts=4)
        singles = policy_starts(policy)
        assert len(singles) == 4
        for start, single in enumerate(singles):
            crit, succ, mob, tie = draw_weights(policy, start)
            assert single.starts == 1
            assert single.weights() == (crit, succ, mob)
            assert single.tie_break_seed == tie


class TestPaperBitIdentity:
    def test_default_priority_is_the_paper_priority(self, library):
        spec = fig3_example()
        baseline, _search = schedule_conventional(spec, 4, library)
        explicit, _search = schedule_conventional(
            spec, 4, library, priority=ReadyQueuePriority()
        )
        assert baseline.cycle_of == explicit.cycle_of

    def test_paper_policy_matches_legacy_flow(self, library):
        for factory, latency, mode in (
            (motivational_example, 3, FlowMode.CONVENTIONAL),
            (fig3_example, 4, FlowMode.CONVENTIONAL),
        ):
            spec = factory()
            legacy, _search = schedule_conventional(spec, latency, library)
            schedule, _budget, provenance = run_schedule_with_policy(
                spec, latency, library, mode, policy=SchedulerPolicy()
            )
            assert provenance is None
            assert schedule.cycle_of == legacy.cycle_of

    def test_paper_policy_matches_legacy_fragmented_flow(self, library):
        spec, budget_hint = transformed(motivational_example, 3)
        legacy = schedule_fragments(spec, 3, resolve_budget(spec, 3, budget_hint))
        schedule, budget, provenance = run_schedule_with_policy(
            spec,
            3,
            library,
            FlowMode.FRAGMENTED,
            policy=SchedulerPolicy(),
            chained_bits_per_cycle=budget_hint,
        )
        assert provenance is None
        assert budget == resolve_budget(spec, 3, budget_hint)
        assert schedule.cycle_of == legacy.cycle_of


class TestNoCandidateFallback:
    def test_poisoned_window_raises_coded_error(self, library):
        spec = motivational_example()
        search = minimize_clock_period(spec, 3, library)
        graph = spec.dataflow_graph()
        asap = asap_chained(spec, search.clock_period_ns, library, graph)
        alap = alap_chained(spec, search.clock_period_ns, 3, library, graph)
        windows = dict(mobility_windows(asap, alap))
        victim = spec.operation_named("add_G")
        windows[victim] = (4, 4)
        with pytest.raises(SchedulingError) as excinfo:
            list_schedule(
                spec, 3, search.clock_period_ns, library, windows=windows
            )
        assert excinfo.value.code == "SCHED006"
        assert "add_G" in str(excinfo.value)

    def test_unpoisoned_windows_still_schedule(self, library):
        spec = motivational_example()
        search = minimize_clock_period(spec, 3, library)
        graph = spec.dataflow_graph()
        asap = asap_chained(spec, search.clock_period_ns, library, graph)
        alap = alap_chained(spec, search.clock_period_ns, 3, library, graph)
        schedule = list_schedule(
            spec,
            3,
            search.clock_period_ns,
            library,
            windows=dict(mobility_windows(asap, alap)),
        )
        assert len(schedule.cycle_of) == spec.operation_count()


class TestConventionalSearch:
    def test_never_worse_than_baseline(self, library):
        policy = SchedulerPolicy(policy="search", beam_width=2, starts=3)
        for name, latency in (("fig3", 4), ("motivational", 3), ("diffeq", 4)):
            spec = ALL_WORKLOADS[name]()
            baseline, _ = schedule_conventional(spec, latency, library)
            outcome = search_conventional(spec, latency, library, policy)
            assert conventional_cost(outcome.schedule, library) <= conventional_cost(
                baseline, library
            )
            provenance = outcome.provenance
            assert provenance.mode == "conventional"
            assert provenance.points_probed >= 1
            assert (provenance.best_objective, provenance.best_area) <= (
                provenance.baseline_objective,
                provenance.baseline_area,
            )
            assert provenance.improved == (
                (provenance.best_objective, provenance.best_area)
                < (provenance.baseline_objective, provenance.baseline_area)
            )

    def test_search_finds_a_strict_improvement(self, library):
        # fig3 at latency 5: the multi-start draws find a same-period
        # schedule whose allocation is strictly smaller than the paper's.
        spec = fig3_example()
        policy = SchedulerPolicy(policy="search", beam_width=4, starts=6)
        outcome = search_conventional(spec, 5, library, policy)
        provenance = outcome.provenance
        assert provenance.improved
        assert provenance.start_index >= 0
        assert provenance.best_objective == provenance.baseline_objective
        assert provenance.best_area < provenance.baseline_area

    def test_baseline_win_is_recorded_as_such(self, library):
        spec = motivational_example()
        policy = SchedulerPolicy(policy="search", beam_width=1, starts=1)
        outcome = search_conventional(spec, 3, library, policy)
        assert outcome.provenance.start_index == -1
        assert not outcome.provenance.improved

    def test_repeatable_in_process(self, library):
        spec = fig3_example()
        policy = SchedulerPolicy(policy="search", beam_width=3, starts=4)
        first = search_conventional(spec, 4, library, policy)
        second = search_conventional(spec, 4, library, policy)
        assert first.schedule.cycle_of == second.schedule.cycle_of
        assert first.provenance == second.provenance


class TestFragmentedSearch:
    def test_never_worse_and_in_budget(self, library):
        policy = SchedulerPolicy(policy="search", beam_width=2, starts=3)
        for name, latency in (("motivational", 3), ("fig3", 4)):
            spec, hint = transformed(ALL_WORKLOADS[name], latency)
            budget = resolve_budget(spec, latency, hint)
            baseline = schedule_fragments(spec, latency, budget)
            outcome = search_fragmented(spec, latency, budget, library, policy)
            verify_budget(outcome.schedule, budget)
            assert fragmented_cost(
                outcome.schedule, budget, library
            ) <= fragmented_cost(baseline, budget, library)
            assert outcome.provenance.mode == "fragmented"

    def test_search_improves_a_fragmented_point(self, library):
        # fig3 l3 fragmented: the weighted placements shave allocated area
        # at an unchanged bit-level period.
        spec, hint = transformed(fig3_example, 3)
        budget = resolve_budget(spec, 3, hint)
        policy = SchedulerPolicy(policy="search", beam_width=4, starts=6)
        outcome = search_fragmented(spec, 3, budget, library, policy)
        assert outcome.provenance.improved
        assert outcome.provenance.best_area < outcome.provenance.baseline_area

    def test_blc_mode_rejects_search(self, library):
        spec = motivational_example()
        with pytest.raises(ValueError) as excinfo:
            run_schedule_with_policy(
                spec,
                1,
                library,
                FlowMode.BLC,
                policy=SchedulerPolicy(policy="search"),
            )
        assert "blc" in str(excinfo.value)


class TestCostFunctions:
    def test_conventional_cost_uses_real_allocation(self, library):
        spec = fig3_example()
        schedule, _ = schedule_conventional(spec, 4, library)
        period, area = conventional_cost(schedule, library)
        assert area == round(build_datapath(schedule, library).total_area, 3)
        assert period > 0.0

    def test_fragmented_cost_flags_budget_overruns(self, library):
        spec, hint = transformed(motivational_example, 3)
        budget = resolve_budget(spec, 3, hint)
        schedule = schedule_fragments(spec, 3, budget)
        in_budget = fragmented_cost(schedule, budget, library)
        assert in_budget[0] == 0
        starved = fragmented_cost(schedule, 1, library)
        assert starved[0] == 1
        assert starved > in_budget
