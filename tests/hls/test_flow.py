"""Tests for the synthesize() facade and the HlsFlow helper."""

import pytest

from repro.core import TransformOptions, transform
from repro.hls import FlowMode, HlsFlow, synthesize
from repro.techlib import AdderStyle, default_library
from repro.workloads import addition_chain, fig3_example, motivational_example


class TestSynthesizeFacade:
    def test_default_mode_is_conventional(self):
        result = synthesize(motivational_example(), 3)
        assert result.mode is FlowMode.CONVENTIONAL
        assert result.chained_bits_per_cycle is None

    def test_fragmented_mode_derives_budget_when_missing(self):
        transformed = transform(
            motivational_example(), 3, TransformOptions(check_equivalence=False)
        ).transformed
        result = synthesize(transformed, 3, mode=FlowMode.FRAGMENTED)
        assert result.chained_bits_per_cycle is not None
        assert result.chained_bits_per_cycle >= 6

    def test_blc_mode_records_budget(self):
        result = synthesize(motivational_example(), 1, mode=FlowMode.BLC)
        assert result.chained_bits_per_cycle == 18

    def test_area_breakdown_keys(self):
        result = synthesize(motivational_example(), 3)
        breakdown = result.area_breakdown()
        assert set(breakdown) == {
            "functional_units",
            "registers",
            "routing",
            "controller",
            "datapath",
            "total",
        }

    def test_summary_text(self):
        result = synthesize(motivational_example(), 3)
        text = result.summary()
        assert "cycle length" in text and "total area" in text

    def test_custom_library_changes_results(self):
        ripple = synthesize(motivational_example(), 3, default_library())
        lookahead = synthesize(
            motivational_example(),
            3,
            default_library().with_adder_style(AdderStyle.CARRY_LOOKAHEAD),
        )
        assert lookahead.cycle_length_ns < ripple.cycle_length_ns
        assert lookahead.fu_area > ripple.fu_area

    def test_schedule_is_exposed_and_legal(self):
        result = synthesize(fig3_example(), 3)
        assert result.schedule.is_complete()
        result.schedule.check_precedence()

    def test_execution_time_is_latency_times_cycle(self):
        result = synthesize(motivational_example(), 3)
        assert result.execution_time_ns == pytest.approx(3 * result.cycle_length_ns)


class TestHlsFlowHelper:
    def test_three_flows(self):
        flow = HlsFlow()
        spec = motivational_example()
        conventional = flow.conventional(spec, 3)
        chained = flow.bit_level_chaining(spec)
        transformed = transform(spec, 3, TransformOptions(check_equivalence=False))
        fragmented = flow.fragmented(
            transformed.transformed, 3, transformed.chained_bits_per_cycle
        )
        assert conventional.mode is FlowMode.CONVENTIONAL
        assert chained.mode is FlowMode.BLC
        assert fragmented.mode is FlowMode.FRAGMENTED
        assert fragmented.cycle_length_ns < conventional.cycle_length_ns

    def test_flow_reuses_library(self):
        library = default_library().with_adder_style(AdderStyle.FAST_LOOKAHEAD)
        flow = HlsFlow(library)
        result = flow.conventional(addition_chain(4, 8), 4)
        assert result.library is library

    def test_latency_one_conventional_chains_everything(self):
        flow = HlsFlow()
        result = flow.conventional(motivational_example(), 1)
        assert result.schedule.used_cycles() == 1
        assert result.cycle_length_ns == pytest.approx(3 * 9.4 + 0.05, abs=0.2)


class TestCrossFlowProperties:
    @pytest.mark.parametrize("latency", [2, 3, 4, 6])
    def test_fragmented_never_slower_than_conventional(self, latency):
        spec = motivational_example()
        transformed = transform(spec, latency, TransformOptions(check_equivalence=False))
        conventional = synthesize(spec, latency)
        fragmented = synthesize(
            transformed.transformed,
            latency,
            mode=FlowMode.FRAGMENTED,
            chained_bits_per_cycle=transformed.chained_bits_per_cycle,
        )
        assert fragmented.cycle_length_ns <= conventional.cycle_length_ns + 1e-6
        assert fragmented.execution_time_ns <= conventional.execution_time_ns + 1e-6

    def test_blc_single_cycle_is_fastest_execution(self):
        spec = motivational_example()
        blc = synthesize(spec, 1, mode=FlowMode.BLC)
        conventional = synthesize(spec, 3)
        assert blc.execution_time_ns < conventional.execution_time_ns


class TestBudgetValidation:
    """chained_bits_per_cycle=0 must be rejected, not treated as unset."""

    def test_zero_budget_raises(self):
        transformed = transform(
            motivational_example(), 3, TransformOptions(check_equivalence=False)
        ).transformed
        with pytest.raises(ValueError) as excinfo:
            synthesize(
                transformed, 3, mode=FlowMode.FRAGMENTED, chained_bits_per_cycle=0
            )
        assert "positive" in str(excinfo.value)

    def test_negative_budget_raises(self):
        transformed = transform(
            motivational_example(), 3, TransformOptions(check_equivalence=False)
        ).transformed
        with pytest.raises(ValueError):
            synthesize(
                transformed, 3, mode=FlowMode.FRAGMENTED, chained_bits_per_cycle=-4
            )

    def test_none_budget_still_derives_default(self):
        transformed = transform(
            motivational_example(), 3, TransformOptions(check_equivalence=False)
        ).transformed
        result = synthesize(
            transformed, 3, mode=FlowMode.FRAGMENTED, chained_bits_per_cycle=None
        )
        assert result.chained_bits_per_cycle is not None
        assert result.chained_bits_per_cycle > 0


class TestFlowModeCoercion:
    """synthesize and FlowMode.coerce accept plain strings everywhere."""

    def test_string_mode_accepted(self):
        result = synthesize(motivational_example(), 3, mode="conventional")
        assert result.mode is FlowMode.CONVENTIONAL

    def test_string_mode_case_insensitive(self):
        result = synthesize(motivational_example(), 1, mode=" BLC ")
        assert result.mode is FlowMode.BLC

    def test_string_mode_matches_enum_result(self):
        by_enum = synthesize(motivational_example(), 3, mode=FlowMode.CONVENTIONAL)
        by_name = synthesize(motivational_example(), 3, mode="conventional")
        assert by_enum.cycle_length_ns == by_name.cycle_length_ns
        assert by_enum.total_area == by_name.total_area

    def test_invalid_mode_lists_valid_modes(self):
        with pytest.raises(ValueError) as excinfo:
            synthesize(motivational_example(), 3, mode="warp")
        message = str(excinfo.value)
        assert "conventional" in message
        assert "fragmented" in message
        assert "blc" in message

    def test_coerce_passthrough(self):
        assert FlowMode.coerce(FlowMode.FRAGMENTED) is FlowMode.FRAGMENTED
        assert FlowMode.coerce("fragmented") is FlowMode.FRAGMENTED

    def test_coerce_rejects_non_string(self):
        with pytest.raises(ValueError):
            FlowMode.coerce(3)
