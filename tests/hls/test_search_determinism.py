"""Seed-determinism of the search scheduler.

The policy docstring promises: two equal policies produce byte-identical
schedules, in any process, under any test sharding.  These tests hold the
layer to that -- same-process repeats, fresh subprocesses with *different*
hash randomization (the condition pytest-xdist workers run under), and a
property sweep over the seed-263 generated family.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.hls.scheduling import (
    SchedulerPolicy,
    schedule_conventional,
    search_conventional,
)
from repro.hls.scheduling.search import conventional_cost
from repro.techlib import default_library
from repro.workloads import random_suite

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: The workload/policy fingerprinted across process boundaries.
_FINGERPRINT_SCRIPT = """
import json
from repro.hls.scheduling import SchedulerPolicy, search_conventional
from repro.techlib import default_library
from repro.workloads import fig3_example

policy = SchedulerPolicy(policy="search", beam_width=3, starts=4)
outcome = search_conventional(fig3_example(), 4, default_library(), policy)
payload = {
    "cycles": {op.name: c for op, c in outcome.schedule.cycle_of.items()},
    "report": outcome.provenance.to_report(),
}
print(json.dumps(payload, sort_keys=True))
"""


def _fingerprint(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    result = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


class TestCrossProcess:
    def test_byte_identical_across_hash_randomization(self):
        # Two fresh interpreters with different PYTHONHASHSEED values -- the
        # exact condition distinct pytest-xdist workers (or a developer
        # machine vs CI) differ by.  The serialized schedule and provenance
        # must be byte-identical.
        first = _fingerprint("0")
        second = _fingerprint("424242")
        assert first == second
        payload = json.loads(first)
        assert payload["cycles"]
        assert payload["report"]["search_starts"] == 4

    def test_subprocess_matches_in_process(self):
        policy = SchedulerPolicy(policy="search", beam_width=3, starts=4)
        from repro.workloads import fig3_example

        outcome = search_conventional(fig3_example(), 4, default_library(), policy)
        local = {
            "cycles": {op.name: c for op, c in outcome.schedule.cycle_of.items()},
            "report": outcome.provenance.to_report(),
        }
        assert json.loads(_fingerprint("1")) == json.loads(
            json.dumps(local, sort_keys=True)
        )


class TestSeed263Family:
    @pytest.fixture(scope="class")
    def family(self):
        return random_suite(6, seed=263)

    def test_search_never_worse_across_the_family(self, family):
        library = default_library()
        policy = SchedulerPolicy(policy="search", beam_width=2, starts=3, seed=263)
        improved = 0
        for spec in family:
            baseline, _ = schedule_conventional(spec, 4, library)
            outcome = search_conventional(spec, 4, library, policy)
            base_cost = conventional_cost(baseline, library)
            best_cost = conventional_cost(outcome.schedule, library)
            assert best_cost <= base_cost, spec.name
            improved += int(best_cost < base_cost)
        # The family is additive-heavy with real mobility; the draws find at
        # least one strict improvement (deterministically -- same seeds).
        assert improved >= 1

    def test_family_results_are_repeatable(self, family):
        library = default_library()
        policy = SchedulerPolicy(policy="search", beam_width=2, starts=3, seed=263)
        for spec in family:
            first = search_conventional(spec, 4, library, policy)
            second = search_conventional(spec, 4, library, policy)
            assert first.schedule.cycle_of == second.schedule.cycle_of
            assert first.provenance == second.provenance
