"""Unit tests for allocation and binding: functional units, registers, muxes."""

import pytest

from repro.core import TransformOptions, transform
from repro.hls import (
    allocate_functional_units,
    allocate_registers,
    analyze_lifetimes,
    build_datapath,
    estimate_controller,
    estimate_interconnect,
    synthesize,
)
from repro.hls.flow import FlowMode
from repro.hls.schedule import Schedule
from repro.hls.scheduling import schedule_conventional, schedule_fragments
from repro.techlib import default_library
from repro.workloads import motivational_example


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def conventional_schedule(library):
    spec = motivational_example()
    schedule, _ = schedule_conventional(spec, 3, library)
    return schedule


@pytest.fixture
def optimized_schedule():
    result = transform(
        motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
    )
    schedule = schedule_fragments(result.transformed, 3, result.chained_bits_per_cycle)
    return schedule


class TestFunctionalUnitAllocation:
    def test_conventional_motivational_needs_one_16bit_adder(
        self, conventional_schedule, library
    ):
        allocation = allocate_functional_units(conventional_schedule, library)
        adders = allocation.instances_of("adder")
        assert len(adders) == 1
        assert adders[0].width == 16
        assert allocation.total_area == pytest.approx(162, abs=1)

    def test_optimized_motivational_needs_three_6bit_adders(
        self, optimized_schedule, library
    ):
        allocation = allocate_functional_units(optimized_schedule, library)
        adders = allocation.instances_of("adder")
        assert len(adders) == 3
        assert sorted(adder.width for adder in adders) == [6, 6, 6]

    def test_every_additive_operation_is_bound(self, optimized_schedule, library):
        allocation = allocate_functional_units(optimized_schedule, library)
        for operation in optimized_schedule.specification.operations:
            if operation.is_additive:
                assert allocation.instance_of(operation) is not None
            else:
                assert allocation.instance_of(operation) is None

    def test_same_cycle_operations_never_share(self, optimized_schedule, library):
        allocation = allocate_functional_units(optimized_schedule, library)
        for cycle in optimized_schedule.cycles():
            instances = [
                allocation.instance_of(op)
                for op in optimized_schedule.additive_operations_in_cycle(cycle)
            ]
            assert len(instances) == len(set(instances))

    def test_affinity_keeps_fragments_of_one_parent_together(
        self, optimized_schedule, library
    ):
        allocation = allocate_functional_units(optimized_schedule, library)
        by_parent = {}
        for operation in optimized_schedule.specification.operations:
            if operation.is_fragment:
                by_parent.setdefault(operation.attributes.get("parent"), set()).add(
                    allocation.instance_of(operation)
                )
        for parent, instances in by_parent.items():
            assert len(instances) == 1, f"fragments of {parent} use several adders"

    def test_affinity_can_be_disabled(self, optimized_schedule, library):
        allocation = allocate_functional_units(optimized_schedule, library, affinity=False)
        assert len(allocation.instances_of("adder")) >= 3

    def test_describe_lists_instances(self, optimized_schedule, library):
        allocation = allocate_functional_units(optimized_schedule, library)
        assert "adder0" in allocation.describe()


class TestRegisterAllocation:
    def test_conventional_motivational_needs_one_16bit_register(
        self, conventional_schedule, library
    ):
        allocation = allocate_registers(conventional_schedule, library)
        assert allocation.register_count == 1
        assert allocation.registers[0].width == 16
        assert allocation.stored_bits == 32  # C and E, sharing one register

    def test_optimized_motivational_needs_few_one_bit_registers(
        self, optimized_schedule, library
    ):
        allocation = allocate_registers(optimized_schedule, library)
        # The paper stores 5 one-bit values per cycle boundary (two data bits
        # plus three carries); the two boundaries share the same registers.
        assert allocation.stored_bits == 10
        assert sum(register.width for register in allocation.registers) == 5
        assert allocation.register_count <= 5
        assert allocation.total_area < 70

    def test_lifetimes_exclude_io_ports(self, conventional_schedule):
        groups = analyze_lifetimes(conventional_schedule)
        for group in groups:
            assert not group.variable.is_input()

    def test_values_consumed_same_cycle_need_no_storage(self, library):
        spec = motivational_example()
        schedule = Schedule(spec, 1)
        for operation in spec.operations:
            schedule.assign(operation, 1)
        allocation = allocate_registers(schedule, library)
        assert allocation.register_count == 0
        assert allocation.stored_bits == 0

    def test_left_edge_sharing(self, library):
        # With one operation per cycle over 3 cycles, C dies when E is born,
        # so both share a single register.
        spec = motivational_example()
        schedule = Schedule(spec, 3)
        for cycle, operation in enumerate(spec.operations, start=1):
            schedule.assign(operation, cycle)
        allocation = allocate_registers(schedule, library)
        assert allocation.register_count == 1
        assert len(allocation.registers[0].groups) == 2


class TestInterconnectAndController:
    def test_conventional_routing_counts_three_sources_per_port(
        self, conventional_schedule, library
    ):
        fus = allocate_functional_units(conventional_schedule, library)
        registers = allocate_registers(conventional_schedule, library)
        interconnect = estimate_interconnect(
            conventional_schedule, fus, registers, library
        )
        fan_ins = sorted(
            mux.fan_in for mux in interconnect.multiplexers if "adder" in mux.location
        )
        assert fan_ins[-1] == 3  # A / C / E on one port, B / D / F on the other
        assert interconnect.total_area > 0

    def test_optimized_routing_close_to_paper(self, optimized_schedule, library):
        fus = allocate_functional_units(optimized_schedule, library)
        registers = allocate_registers(optimized_schedule, library)
        interconnect = estimate_interconnect(optimized_schedule, fus, registers, library)
        # Paper: 6 three-to-one 6-bit muxes plus 5 two-to-one 1-bit muxes, 159 gates.
        assert interconnect.total_area == pytest.approx(159, rel=0.25)

    def test_controller_estimate_scales_with_signals(
        self, conventional_schedule, library
    ):
        fus = allocate_functional_units(conventional_schedule, library)
        registers = allocate_registers(conventional_schedule, library)
        interconnect = estimate_interconnect(conventional_schedule, fus, registers, library)
        controller = estimate_controller(
            conventional_schedule, registers, interconnect, library
        )
        assert controller.states == 3
        assert controller.control_signals > 0
        assert controller.area_gates > library.controller_area(3, 0)

    def test_datapath_breakdown_totals(self, optimized_schedule, library):
        datapath = build_datapath(optimized_schedule, library)
        breakdown = datapath.area_breakdown()
        assert breakdown["datapath"] == pytest.approx(
            breakdown["functional_units"] + breakdown["registers"] + breakdown["routing"]
        )
        assert breakdown["total"] == pytest.approx(
            breakdown["datapath"] + breakdown["controller"]
        )
        assert "adder" in datapath.describe()


class TestTableOneShape:
    """End-to-end Table I assertions through the synthesize() facade."""

    def test_original_flow_matches_table1(self, library):
        result = synthesize(motivational_example(), 3, library, FlowMode.CONVENTIONAL)
        assert result.cycle_length_ns == pytest.approx(9.45, abs=0.1)
        assert result.fu_area == pytest.approx(162, abs=2)
        assert result.register_area == pytest.approx(81, abs=2)

    def test_blc_flow_matches_table1(self, library):
        result = synthesize(motivational_example(), 1, library, FlowMode.BLC)
        assert result.fu_area == pytest.approx(486, abs=5)
        assert result.register_area == 0
        assert result.execution_time_ns < 11

    def test_optimized_flow_matches_table1(self, library):
        transformed = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        result = synthesize(
            transformed.transformed,
            3,
            library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=transformed.chained_bits_per_cycle,
        )
        assert result.cycle_length_ns == pytest.approx(3.575, abs=0.1)
        assert result.fu_area == pytest.approx(182, abs=5)
        assert result.total_area == pytest.approx(452, rel=0.1)

    def test_optimized_beats_original_execution_time(self, library):
        spec = motivational_example()
        original = synthesize(spec, 3, library)
        transformed = transform(spec, 3, TransformOptions(check_equivalence=False))
        optimized = synthesize(
            transformed.transformed,
            3,
            library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=transformed.chained_bits_per_cycle,
        )
        assert optimized.execution_time_ns < 0.45 * original.execution_time_ns
        assert optimized.total_area < 1.25 * original.total_area
