"""HTTP surface tests: routing, envelopes, negative SRV codes, metrics."""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import builtin_study


def http(server, method, path, payload=None):
    """Raw request helper returning (status, parsed-or-text body)."""
    host, port = server.server_address[:2]
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raw, content_type = response.read(), response.headers.get(
                "Content-Type", ""
            )
            status = response.status
    except urllib.error.HTTPError as error:
        raw, content_type = error.read(), error.headers.get("Content-Type", "")
        status = error.code
    if content_type.startswith("application/json"):
        return status, json.loads(raw.decode())
    return status, raw.decode()


class TestPositiveRoutes:
    def test_healthz(self, live_server):
        status, body = http(live_server, "GET", "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert "workspace" in body and "reattached_jobs" in body

    def test_submit_returns_202_with_job_id(self, live_server):
        status, body = http(
            live_server, "POST", "/v1/studies", {"study": "table1"}
        )
        assert status == 202
        assert body["job_id"].startswith("job-")
        assert body["total_points"] == 2

    def test_job_listing(self, live_server, client):
        submitted = client.submit("table1")
        client.wait(submitted["job_id"])
        status, body = http(live_server, "GET", "/v1/jobs")
        assert status == 200
        assert [job["job_id"] for job in body["jobs"]] == [submitted["job_id"]]

    def test_metrics_shape(self, live_server, client):
        submitted = client.submit("table1")
        client.wait(submitted["job_id"])
        status, body = http(live_server, "GET", "/v1/metrics")
        assert status == 200
        assert body["counters"]["jobs_submitted"] == 1
        assert body["counters"]["cache_misses"] == 2
        assert body["queue_depth"] == 0
        assert body["jobs"]["done"] == 1
        assert any(
            endpoint.startswith("POST /v1/studies") for endpoint in body["endpoints"]
        )
        histogram = body["endpoints"]["POST /v1/studies"]
        assert histogram["count"] == 1 and histogram["buckets"]["le_inf"] == 1

    def test_delete_cancels(self, live_server, client):
        submitted = client.submit("table1")
        status, body = http(
            live_server, "DELETE", f"/v1/jobs/{submitted['job_id']}"
        )
        assert status == 200
        assert body["job_id"] == submitted["job_id"]
        final = client.wait(submitted["job_id"])
        assert final["status"] in ("done", "cancelled")


class TestNegativeRoutes:
    """Every failure is the uniform envelope with a stable SRV code."""

    @staticmethod
    def assert_envelope(body, code):
        assert set(body) == {"error"}
        assert body["error"]["code"] == code
        assert body["error"]["title"]
        assert body["error"]["message"]

    def test_unknown_route_is_srv008(self, live_server):
        status, body = http(live_server, "GET", "/v1/nope")
        assert status == 404
        self.assert_envelope(body, "SRV008")

    def test_wrong_method_is_srv008(self, live_server):
        status, body = http(live_server, "PUT", "/v1/studies", {"study": "x"})
        assert status == 404
        self.assert_envelope(body, "SRV008")

    def test_missing_body_is_srv001(self, live_server):
        status, body = http(live_server, "POST", "/v1/studies")
        assert status == 400
        self.assert_envelope(body, "SRV001")

    def test_non_json_body_is_srv001(self, live_server):
        host, port = live_server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/v1/studies", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        body = json.loads(excinfo.value.read().decode())
        assert excinfo.value.code == 400
        self.assert_envelope(body, "SRV001")

    def test_missing_study_field_is_srv001(self, live_server):
        status, body = http(live_server, "POST", "/v1/studies", {"naem": "x"})
        assert status == 400
        self.assert_envelope(body, "SRV001")

    def test_unknown_study_is_srv003(self, live_server):
        status, body = http(
            live_server, "POST", "/v1/studies", {"study": "not-a-study"}
        )
        assert status == 404
        self.assert_envelope(body, "SRV003")

    def test_invalid_inline_study_is_srv002(self, live_server):
        status, body = http(
            live_server,
            "POST",
            "/v1/studies",
            {"study": {"name": "bad", "expansions": [["wat", {}]]}},
        )
        assert status == 422
        self.assert_envelope(body, "SRV002")

    def test_unknown_job_is_srv004(self, live_server):
        status, body = http(live_server, "GET", "/v1/jobs/job-missing")
        assert status == 404
        self.assert_envelope(body, "SRV004")

    def test_report_of_unknown_job_is_srv004(self, live_server):
        status, body = http(live_server, "GET", "/v1/jobs/job-missing/report")
        assert status == 404
        self.assert_envelope(body, "SRV004")

    def test_verilog_without_emit_is_srv007(self, live_server, client):
        submitted = client.submit("table1")
        client.wait(submitted["job_id"])
        point_id = builtin_study("table1").points()[0].point_id
        status, body = http(
            live_server,
            "GET",
            f"/v1/jobs/{submitted['job_id']}/verilog/{point_id}",
        )
        assert status == 404
        self.assert_envelope(body, "SRV007")

    def test_verilog_of_unknown_point_is_srv007(self, live_server, client):
        submitted = client.submit("table1")
        status, body = http(
            live_server, "GET", f"/v1/jobs/{submitted['job_id']}/verilog/nope"
        )
        assert status == 404
        self.assert_envelope(body, "SRV007")

    def test_errors_are_counted_in_metrics(self, live_server):
        http(live_server, "GET", "/v1/jobs/job-missing")
        _, body = http(live_server, "GET", "/v1/metrics")
        assert body["counters"]["errors_total"] >= 1
        assert body["endpoints"]["GET /v1/jobs/{id}"]["count"] >= 1
