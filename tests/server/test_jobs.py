"""JobManager unit tests: queueing, dedup, cancel, persistence, re-attach."""

import json
import time

import pytest

from repro.api import Study, Workspace, builtin_study, fig4_study
from repro.server import ApiError, JobManager, study_digest
from repro.server.jobs import JOBS_FILE_NAME, resolve_study


def tiny_study():
    return builtin_study("table1")


def slow_study(name="jobs-slow"):
    """A many-point sweep: long enough to still be active while we poke."""
    return fig4_study("chain:3:16", latencies=range(3, 11), name=name)


def wait_for(job, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while job.status in ("queued", "running"):
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job.job_id} stuck {job.status}")
        time.sleep(0.005)
    return job


@pytest.fixture
def manager(tmp_path):
    manager = JobManager(Workspace(tmp_path / "ws"), workers=1, queue_size=8)
    yield manager
    manager.shutdown()


class TestResolveStudy:
    def test_builtin_name(self):
        assert resolve_study("table1").name == "table1"

    def test_unknown_name_is_srv003(self):
        with pytest.raises(ApiError) as excinfo:
            resolve_study("not-a-study")
        assert excinfo.value.code == "SRV003"
        assert excinfo.value.http_status == 404

    def test_inline_dict(self):
        study = resolve_study(tiny_study().to_dict())
        assert study.name == "table1" and len(study) == 2

    def test_malformed_dict_is_srv002(self):
        with pytest.raises(ApiError) as excinfo:
            resolve_study({"name": "x", "expansions": [["wat", {}]]})
        assert excinfo.value.code == "SRV002"

    def test_invalid_config_fields_fail_at_submit_time(self):
        spec = {
            "name": "bad-config",
            "base": {"workload": "motivational", "latency": 3},
            "expansions": [["grid", {"mode": ["no-such-mode"]}]],
        }
        with pytest.raises(ApiError) as excinfo:
            resolve_study(spec)
        assert excinfo.value.code == "SRV002"

    def test_wrong_type_is_srv002(self):
        with pytest.raises(ApiError) as excinfo:
            resolve_study(42)
        assert excinfo.value.code == "SRV002"


class TestDigest:
    def test_digest_is_stable(self):
        assert study_digest(tiny_study()) == study_digest(tiny_study())

    def test_digest_distinguishes_studies(self):
        assert study_digest(tiny_study()) != study_digest(slow_study())


class TestLifecycle:
    def test_submit_runs_to_done(self, manager):
        body = manager.submit("table1")
        assert body["deduplicated"] is False
        job = wait_for(manager.get(body["job_id"]))
        assert job.status == "done"
        public = job.to_public_dict()
        assert public["summary"]["complete"] is True
        assert public["done_points"] == public["total_points"] == 2

    def test_resubmit_after_done_loads_everything(self, manager):
        first = manager.submit("table1")
        wait_for(manager.get(first["job_id"]))
        second = manager.submit("table1")
        assert second["job_id"] != first["job_id"]
        job = wait_for(manager.get(second["job_id"]))
        summary = job.to_public_dict()["summary"]
        assert summary["loaded"] == 2 and summary["ran"] == 0

    def test_active_duplicate_coalesces(self, manager):
        manager.submit(slow_study("blocker").to_dict())  # occupies the worker
        first = manager.submit("table1")
        second = manager.submit("table1")
        assert second["deduplicated"] is True
        assert second["job_id"] == first["job_id"]
        wait_for(manager.get(first["job_id"]))

    def test_unknown_job_is_srv004(self, manager):
        with pytest.raises(ApiError) as excinfo:
            manager.get("job-nope")
        assert excinfo.value.code == "SRV004"

    def test_report_before_done_is_srv006(self, manager):
        body = manager.submit(slow_study("early-report").to_dict())
        with pytest.raises(ApiError) as excinfo:
            manager.report(body["job_id"])
        assert excinfo.value.code == "SRV006"
        wait_for(manager.get(body["job_id"]))
        report = manager.report(body["job_id"])
        assert len(report["reports"]) == len(slow_study("early-report"))

    def test_cancel_queued_job(self, manager):
        manager.submit(slow_study("cancel-blocker").to_dict())
        victim = manager.submit(slow_study("cancel-victim").to_dict())
        body = manager.cancel(victim["job_id"])
        assert body["cancelling"] is True
        job = wait_for(manager.get(victim["job_id"]))
        assert job.status == "cancelled"

    def test_cross_study_dedup_via_adoption(self, manager):
        wait_for(manager.get(manager.submit("table1")["job_id"]))
        twin = Study.from_dict({**tiny_study().to_dict(), "name": "table1-twin"})
        body = manager.submit(twin.to_dict())
        job = wait_for(manager.get(body["job_id"]))
        summary = job.to_public_dict()["summary"]
        assert summary["loaded"] == 2 and summary["ran"] == 0


class TestNestedPolicySubmission:
    """Studies with nested SchedulerPolicy axes through the job API."""

    def test_digest_is_stable_for_nested_policies(self):
        a = study_digest(builtin_study("scheduler-tuning"))
        b = study_digest(builtin_study("scheduler-tuning"))
        assert a == b

    def test_inline_dict_submission_resolves_identical_points(self):
        study = builtin_study("scheduler-tuning")
        resolved = resolve_study(study.to_dict())
        assert study_digest(resolved) == study_digest(study)
        assert [p.point_id for p in resolved.points()] == [
            p.point_id for p in study.points()
        ]

    def test_tuning_study_runs_and_search_rows_beat_baseline(self, manager):
        body = manager.submit("scheduler-tuning")
        job = wait_for(manager.get(body["job_id"]))
        assert job.status == "done"
        report = manager.report(body["job_id"])
        rows = report["reports"]
        assert len(rows) == len(builtin_study("scheduler-tuning"))
        search_rows = [r for r in rows if "search_objective" in r]
        paper_rows = [r for r in rows if "search_objective" not in r]
        assert search_rows and paper_rows
        for row in search_rows:
            assert (row["search_objective"], row["search_area"]) <= (
                row["search_baseline_objective"],
                row["search_baseline_area"],
            )


class TestQueueBounds:
    def test_full_queue_rejects_with_srv005(self, tmp_path):
        manager = JobManager(Workspace(tmp_path / "ws"), workers=1, queue_size=1)
        try:
            manager.submit(slow_study("q-blocker").to_dict())
            # Drive distinct digests until the bounded queue overflows.
            with pytest.raises(ApiError) as excinfo:
                for n in range(10):
                    manager.submit(slow_study(f"q-filler-{n}").to_dict())
            assert excinfo.value.code == "SRV005"
            assert excinfo.value.http_status == 429
        finally:
            manager.shutdown()


class TestPersistence:
    def test_jobs_file_written_and_reloaded(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        manager = JobManager(workspace, workers=1)
        body = manager.submit("table1")
        wait_for(manager.get(body["job_id"]))
        manager.shutdown()
        records = json.loads((workspace.root / JOBS_FILE_NAME).read_text())
        assert records["jobs"][0]["status"] == "done"

        reborn = JobManager(Workspace(tmp_path / "ws"), workers=1)
        try:
            assert reborn.reattached_jobs == 0
            job = reborn.get(body["job_id"])
            assert job.status == "done"
            assert len(reborn.report(body["job_id"])["reports"]) == 2
        finally:
            reborn.shutdown()

    def test_unfinished_job_reattaches_and_completes(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        study = tiny_study()
        # Simulate a server killed mid-job: a records file whose job never
        # finished.  Boot must re-enqueue it.
        (workspace.root / JOBS_FILE_NAME).write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "jobs": [
                        {
                            "job_id": "job-interrupted",
                            "digest": study_digest(study),
                            "status": "running",
                            "study_description": study.to_dict(),
                        }
                    ],
                }
            )
        )
        manager = JobManager(Workspace(tmp_path / "ws"), workers=1)
        try:
            assert manager.reattached_jobs == 1
            job = wait_for(manager.get("job-interrupted"))
            assert job.status == "done"
        finally:
            manager.shutdown()

    def test_corrupt_records_file_is_ignored(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        (workspace.root / JOBS_FILE_NAME).write_text("not json")
        manager = JobManager(Workspace(tmp_path / "ws"), workers=1)
        try:
            assert manager.reattached_jobs == 0
            assert manager.list_jobs() == []
        finally:
            manager.shutdown()
