"""The SRV error registry and the uniform JSON envelope."""

import pytest

from repro.api import RUN_CODE_REGISTRY
from repro.server import (
    SERVER_CODE_REGISTRY,
    ApiError,
    error_envelope,
    server_error_title,
)


class TestRegistry:
    def test_codes_are_srv_prefixed_and_sequential(self):
        codes = sorted(SERVER_CODE_REGISTRY)
        assert codes == [f"SRV{n:03d}" for n in range(1, len(codes) + 1)]

    def test_titles_are_nonempty_one_liners(self):
        for title in SERVER_CODE_REGISTRY.values():
            assert title and "\n" not in title

    def test_namespace_is_disjoint_from_run_codes(self):
        assert not set(SERVER_CODE_REGISTRY) & set(RUN_CODE_REGISTRY)

    def test_title_lookup(self):
        assert server_error_title("SRV004") == "unknown job id"

    def test_unknown_code_fails_loudly(self):
        with pytest.raises(ValueError, match="unregistered"):
            server_error_title("SRV999")
        with pytest.raises(ValueError, match="unregistered"):
            ApiError("RUN001", "wrong namespace")


class TestEnvelope:
    def test_envelope_shape(self):
        error = ApiError("SRV005", "queue full", http_status=429)
        body = error_envelope(error)
        assert body == {
            "error": {
                "code": "SRV005",
                "title": "job queue full",
                "message": "queue full",
            }
        }

    def test_detail_is_optional(self):
        error = ApiError("SRV002", "bad", detail={"field": "latency"})
        assert error_envelope(error)["error"]["detail"] == {"field": "latency"}

    def test_http_status_defaults_to_400(self):
        assert ApiError("SRV001", "nope").http_status == 400
