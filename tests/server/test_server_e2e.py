"""End-to-end acceptance: real HTTP, bit-identical rows, zero recompute,
and crash-restart durability of a subprocess server."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.api import Workspace, builtin_study, fig4_study
from repro.server import SynthesisClient

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestInProcessEndToEnd:
    def test_http_rows_bit_identical_to_direct_run(self, client, tmp_path):
        """Submit over HTTP -> rows == a direct run_study of the same Study."""
        study = builtin_study("table1")
        submitted = client.submit(study)
        final = client.wait(submitted["job_id"])
        assert final["status"] == "done"
        via_http = client.report(submitted["job_id"])

        direct_ws = Workspace(tmp_path / "direct")
        direct = direct_ws.run_study(study)
        assert via_http["reports"] == direct.reports()
        assert via_http["rows"] == direct.rows()

    def test_resubmit_is_zero_recompute_by_counters(self, client):
        """The dedup contract, asserted via the workspace load counters."""
        first = client.wait(client.submit("table1")["job_id"])
        assert first["summary"]["ran"] == 2 and first["summary"]["loaded"] == 0
        second = client.wait(client.submit("table1")["job_id"])
        assert second["summary"]["ran"] == 0
        assert second["summary"]["loaded"] == 2
        metrics = client.metrics()
        assert metrics["counters"]["cache_hits"] == 2
        assert metrics["counters"]["cache_misses"] == 2
        assert metrics["cache_hit_ratio"] == 0.5

    def test_concurrent_clients_share_one_computation(self, client):
        """N identical submissions while active coalesce onto one job."""
        study = fig4_study("chain:3:16", latencies=range(3, 9), name="e2e-share")
        bodies = [client.submit(study) for _ in range(5)]
        job_ids = {body["job_id"] for body in bodies}
        # All five submissions resolved to at most a couple of live jobs
        # (coalescing is timing-dependent), and in aggregate the engine
        # computed each point exactly once.
        for job_id in job_ids:
            assert client.wait(job_id)["status"] == "done"
        metrics = client.metrics()
        assert metrics["counters"]["cache_misses"] == len(study)


class TestSubprocessCrashRestart:
    def _spawn(self, workspace, ready):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--workspace", str(workspace),
                "--port", "0",
                "--workers", "1",
                "--ready-file", str(ready),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    @staticmethod
    def _await_ready(ready, process, timeout_s=30.0):
        deadline = time.monotonic() + timeout_s
        while not ready.exists():
            assert process.poll() is None, "server died during boot"
            assert time.monotonic() < deadline, "server never became ready"
            time.sleep(0.02)
        host, port = ready.read_text().split()
        return SynthesisClient(f"http://{host}:{port}", timeout_s=30.0)

    def test_kill_mid_job_restart_loses_no_completed_rows(self, tmp_path):
        workspace = tmp_path / "ws"
        study = fig4_study("chain:3:16", latencies=range(3, 16), name="e2e-crash")

        ready1 = tmp_path / "ready1"
        process = self._spawn(workspace, ready1)
        try:
            client = self._await_ready(ready1, process)
            submitted = client.submit(study)
            job_id = submitted["job_id"]
            # Let some points complete, then SIGKILL mid-job (no cleanup,
            # no flush -- the journal and per-point saves must carry it).
            observed_done = 0
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                body = client.job(job_id)
                observed_done = body["done_points"]
                if observed_done >= 2 or body["status"] not in (
                    "queued",
                    "running",
                ):
                    break
                time.sleep(0.002)
        finally:
            process.kill()
            process.wait(timeout=30)

        # Restart over the same workspace: the unfinished job re-attaches,
        # completed rows replay from the store, the remainder computes.
        ready2 = tmp_path / "ready2"
        process = self._spawn(workspace, ready2)
        try:
            client = self._await_ready(ready2, process)
            health = client.healthz()
            jobs = client.jobs()["jobs"]
            assert [job["job_id"] for job in jobs] == [job_id]
            if jobs[0]["status"] in ("queued", "running"):
                assert health["reattached_jobs"] == 1
                final = client.wait(job_id, timeout_s=120.0)
            else:
                final = jobs[0]
            assert final["status"] == "done"
            summary = final["summary"]
            assert summary["total"] == len(study)
            # Nothing completed before the kill was recomputed.
            assert summary["loaded"] >= observed_done
            assert summary["loaded"] + summary["ran"] == len(study)
            # And the rows are the complete study, regenerated with zero
            # further recompute on a fresh resubmission.
            again = client.wait(client.submit(study)["job_id"], timeout_s=60.0)
            assert again["summary"]["loaded"] == len(study)
            assert again["summary"]["ran"] == 0
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10)
