"""Shared fixtures: a live in-process server over a temp workspace."""

import threading

import pytest

from repro.server import SynthesisClient, create_server


@pytest.fixture
def live_server(tmp_path):
    """A bound, serving repro server; yields (server, workspace_path)."""
    server = create_server(tmp_path / "ws", port=0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.manager.shutdown()
    server.server_close()


@pytest.fixture
def client(live_server):
    host, port = live_server.server_address[:2]
    return SynthesisClient(f"http://{host}:{port}", timeout_s=30.0)
