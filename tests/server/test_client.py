"""The urllib client and the submit/poll CLI verbs against a live server."""

import json

import pytest

from repro.api import Study, builtin_study, study_from_dict
from repro.api.cli import main
from repro.server import ClientError


def run_cli(*argv):
    return main(list(argv))


def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


class TestClient:
    def test_submit_name_and_wait(self, client):
        submitted = client.submit("table1")
        final = client.wait(submitted["job_id"])
        assert final["status"] == "done"
        assert final["summary"]["complete"] is True

    def test_submit_study_object(self, client):
        study = builtin_study("table1")
        final = client.wait(client.submit(study)["job_id"])
        assert final["summary"]["total"] == len(study)

    def test_report_rows(self, client):
        submitted = client.submit("table1")
        client.wait(submitted["job_id"])
        report = client.report(submitted["job_id"])
        assert report["row_kind"] == "table"
        assert len(report["rows"]) == 1
        assert report["rows"][0]["benchmark"] == "motivational"

    def test_verilog_roundtrip(self, client):
        study = Study(
            "client-emit",
            base={"workload": "motivational", "latency": 3, "emit": True},
        ).grid(mode=["fragmented"])
        submitted = client.submit(study)
        client.wait(submitted["job_id"])
        text = client.verilog(submitted["job_id"], study.points()[0].point_id)
        assert "module" in text
        # Second fetch is served from the workspace cache, byte-identical.
        assert client.verilog(
            submitted["job_id"], study.points()[0].point_id
        ) == text

    def test_errors_surface_codes(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.job("job-missing")
        assert excinfo.value.code == "SRV004"
        assert excinfo.value.http_status == 404

    def test_wait_timeout(self, client):
        submitted = client.submit("table2")
        with pytest.raises((TimeoutError, ClientError)):
            client.wait(submitted["job_id"], timeout_s=0.0, poll_s=0.001)


class TestCliVerbs:
    def test_submit_wait(self, live_server, capsys):
        code = run_cli(
            "submit", "table1", "--url", base_url(live_server), "--wait"
        )
        assert code == 0
        assert "done" in capsys.readouterr().out

    def test_submit_json_then_poll_report(self, live_server, capsys):
        assert (
            run_cli("submit", "table1", "--url", base_url(live_server), "--json")
            == 0
        )
        job_id = json.loads(capsys.readouterr().out)["job_id"]
        assert (
            run_cli(
                "poll",
                job_id,
                "--url",
                base_url(live_server),
                "--wait",
                "--report",
                "--json",
            )
            == 0
        )
        body = json.loads(capsys.readouterr().out)
        assert body["status"] == "done"
        assert len(body["report"]["rows"]) == 1

    def test_submit_scheduler_tuning(self, live_server, capsys):
        # The tuning study's nested SchedulerPolicy axes survive the CLI
        # submit -> HTTP -> digest -> resolve -> run round trip, and every
        # search row honours the never-worse contract.
        assert (
            run_cli(
                "submit",
                "scheduler-tuning",
                "--url",
                base_url(live_server),
                "--json",
            )
            == 0
        )
        job_id = json.loads(capsys.readouterr().out)["job_id"]
        assert (
            run_cli(
                "poll",
                job_id,
                "--url",
                base_url(live_server),
                "--wait",
                "--report",
                "--json",
            )
            == 0
        )
        body = json.loads(capsys.readouterr().out)
        assert body["status"] == "done"
        search_rows = [
            row for row in body["report"]["rows"] if "search_objective" in row
        ]
        assert search_rows
        for row in search_rows:
            assert (row["search_objective"], row["search_area"]) <= (
                row["search_baseline_objective"],
                row["search_baseline_area"],
            )

    def test_submit_inline_study_file(self, live_server, tmp_path, capsys):
        spec = tmp_path / "study.json"
        spec.write_text(json.dumps(builtin_study("table1").to_dict()))
        code = run_cli(
            "submit", f"@{spec}", "--url", base_url(live_server), "--wait"
        )
        assert code == 0
        assert "done" in capsys.readouterr().out

    def test_submit_unreadable_file_exits_2(self, live_server, capsys):
        code = run_cli(
            "submit", "@/no/such/file.json", "--url", base_url(live_server)
        )
        assert code == 2  # ValueError -> usage-style exit

    def test_submit_unknown_study_exits_1(self, live_server, capsys):
        code = run_cli(
            "submit", "not-a-study", "--url", base_url(live_server)
        )
        assert code == 1
        assert "SRV003" in capsys.readouterr().err

    def test_poll_unknown_job_exits_1(self, live_server, capsys):
        code = run_cli("poll", "job-missing", "--url", base_url(live_server))
        assert code == 1
        assert "SRV004" in capsys.readouterr().err


class TestJsonRoundTrips:
    """`study status/list --json` output is machine-readable: the documented
    contract the server client builds on (inline submissions are
    Study.to_dict() payloads; status JSON mirrors the job progress rows)."""

    def test_status_json_round_trips_through_server_submission(
        self, live_server, client, tmp_path, capsys
    ):
        submitted = client.submit("table1")
        client.wait(submitted["job_id"])
        workspace = str(live_server.manager.workspace.root)
        assert (
            run_cli(
                "study", "status", "table1", "--workspace", workspace, "--json"
            )
            == 0
        )
        status = json.loads(capsys.readouterr().out)
        assert status["completed"] == status["total"] == 2
        assert {row["status"] for row in status["points"]} == {"completed"}
        # The CLI's view and the server's view agree point-for-point.
        job = client.job(submitted["job_id"])
        assert job["done_points"] == status["completed"]

    def test_list_json_names_resolve_as_submissions(self, client, capsys):
        assert run_cli("study", "list", "--json") == 0
        entries = json.loads(capsys.readouterr().out)
        names = [entry["study"] for entry in entries]
        assert "table1" in names
        submitted = client.submit(names[names.index("table1")])
        assert client.wait(submitted["job_id"])["status"] == "done"

    def test_study_to_dict_round_trip(self):
        for name in ("table1", "table2", "fig4-chain", "emission"):
            study = builtin_study(name)
            clone = study_from_dict(json.loads(json.dumps(study.to_dict())))
            assert [p.point_id for p in clone.points()] == [
                p.point_id for p in study.points()
            ]
            assert clone.row_kind == study.row_kind
            assert clone.stop_after == study.stop_after
            assert clone.retry == study.retry
