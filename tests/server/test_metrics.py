"""Latency histograms and the metrics snapshot."""

from repro.server import LatencyHistogram, ServerMetrics
from repro.server.metrics import LATENCY_BUCKETS_S


class TestLatencyHistogram:
    def test_buckets_are_cumulative(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0005)
        histogram.observe(0.004)
        histogram.observe(0.02)
        body = histogram.to_dict()
        assert body["count"] == 3
        assert body["buckets"]["le_0.001"] == 1
        assert body["buckets"]["le_0.005"] == 2
        assert body["buckets"]["le_0.025"] == 3
        assert body["buckets"]["le_inf"] == 3

    def test_overflow_lands_in_inf(self):
        histogram = LatencyHistogram()
        histogram.observe(max(LATENCY_BUCKETS_S) * 10)
        body = histogram.to_dict()
        assert body["buckets"][f"le_{max(LATENCY_BUCKETS_S):g}"] == 0
        assert body["buckets"]["le_inf"] == 1

    def test_mean_and_max(self):
        histogram = LatencyHistogram()
        histogram.observe(0.1)
        histogram.observe(0.3)
        body = histogram.to_dict()
        assert abs(body["mean_s"] - 0.2) < 1e-9
        assert abs(body["max_s"] - 0.3) < 1e-9

    def test_negative_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.observe(-1.0)
        assert histogram.to_dict()["buckets"]["le_0.001"] == 1


class TestServerMetrics:
    def test_requests_metered_per_template(self):
        metrics = ServerMetrics()
        metrics.observe_request("GET /v1/jobs/{id}", 0.002)
        metrics.observe_request("GET /v1/jobs/{id}", 0.004, error=True)
        metrics.observe_request("POST /v1/studies", 0.01)
        body = metrics.snapshot()
        assert body["counters"]["requests_total"] == 3
        assert body["counters"]["errors_total"] == 1
        assert set(body["endpoints"]) == {"GET /v1/jobs/{id}", "POST /v1/studies"}
        assert body["endpoints"]["GET /v1/jobs/{id}"]["count"] == 2

    def test_cache_hit_ratio(self):
        metrics = ServerMetrics()
        assert metrics.snapshot()["cache_hit_ratio"] is None
        metrics.inc("cache_hits", 3)
        metrics.inc("cache_misses", 1)
        assert metrics.snapshot()["cache_hit_ratio"] == 0.75

    def test_snapshot_includes_job_states_when_given(self):
        metrics = ServerMetrics()
        body = metrics.snapshot(jobs_by_state={"done": 2}, queue_depth=5)
        assert body["jobs"] == {"done": 2}
        assert body["queue_depth"] == 5
