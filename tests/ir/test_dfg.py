"""Unit tests for the operation-level and bit-level dataflow graphs."""

import pytest

from repro.ir.builder import SpecBuilder
from repro.ir.dfg import BitDependencyGraph, DataFlowGraph
from repro.ir.operations import OpKind
from repro.workloads import fig3_example, motivational_example
from repro.workloads.fig3 import FIG3_BCE_PATH_BITS, FIG3_CRITICAL_PATH_BITS


@pytest.fixture
def motivational():
    return motivational_example()


@pytest.fixture
def motivational_dfg(motivational):
    return DataFlowGraph(motivational)


class TestDataFlowGraph:
    def test_edge_structure(self, motivational, motivational_dfg):
        add_c = motivational.operation_named("add_C")
        add_e = motivational.operation_named("add_E")
        add_g = motivational.operation_named("add_G")
        assert motivational_dfg.predecessors(add_c) == []
        assert motivational_dfg.predecessors(add_e) == [add_c]
        assert motivational_dfg.successors(add_e) == [add_g]

    def test_edge_bit_ranges(self, motivational, motivational_dfg):
        add_e = motivational.operation_named("add_E")
        edges = motivational_dfg.in_edges(add_e)
        assert len(edges) == 1
        assert edges[0].bits.width == 16

    def test_sources_and_sinks(self, motivational, motivational_dfg):
        assert motivational_dfg.sources() == [motivational.operation_named("add_C")]
        assert motivational_dfg.sinks() == [motivational.operation_named("add_G")]

    def test_topological_order_respects_dependencies(self, motivational_dfg):
        order = motivational_dfg.topological_order()
        names = [op.name for op in order]
        assert names.index("add_C") < names.index("add_E") < names.index("add_G")

    def test_longest_path(self, motivational_dfg):
        path = motivational_dfg.longest_path_operations()
        assert [op.name for op in path] == ["add_C", "add_E", "add_G"]
        assert motivational_dfg.depth() == 3

    def test_all_paths_chain(self, motivational_dfg):
        paths = motivational_dfg.all_paths()
        assert len(paths) == 1
        assert len(paths[0]) == 3

    def test_fig3_paths(self):
        spec = fig3_example()
        graph = DataFlowGraph(spec)
        assert graph.depth() == 3  # B -> C -> E
        h = spec.operation_named("H")
        assert {op.name for op in graph.predecessors(h)} == {"F", "G"}

    def test_slice_edges_identify_partial_producers(self):
        builder = SpecBuilder("slices")
        a = builder.input("a", 8)
        out = builder.output("out", 4)
        low = builder.add(a.slice(3, 0), a.slice(3, 0), name="low", width=4)
        high = builder.add(a.slice(7, 4), a.slice(7, 4), name="high", width=4)
        combined = builder.add(low, high, name="combined", width=4)
        builder.move(combined, dest=out, name="expose")
        spec = builder.build()
        graph = DataFlowGraph(spec)
        combined_op = spec.operation_named("combined")
        assert {op.name for op in graph.predecessors(combined_op)} == {"low", "high"}
        expose = spec.operation_named("expose")
        assert graph.predecessors(expose) == [combined_op]


class TestBitDependencyGraph:
    def test_node_count(self, motivational):
        graph = BitDependencyGraph(motivational)
        assert len(graph) == 3 * 16

    def test_critical_depth_matches_paper(self, motivational):
        # Fig. 1 e: three chained 16-bit additions take 18 chained 1-bit adds.
        assert BitDependencyGraph(motivational).critical_depth() == 18

    def test_fig3_critical_depth(self):
        assert BitDependencyGraph(fig3_example()).critical_depth() == FIG3_CRITICAL_PATH_BITS

    def test_fig3_bce_path_depth(self):
        spec = fig3_example()
        graph = BitDependencyGraph(spec)
        depths = graph.arrival_depths()
        e = spec.operation_named("E")
        e_msb = graph.node(e, e.width - 1)
        assert depths[e_msb] == FIG3_BCE_PATH_BITS

    def test_ripple_dependency(self, motivational):
        spec = motivational
        graph = BitDependencyGraph(spec)
        add_c = spec.operation_named("add_C")
        node = graph.node(add_c, 5)
        assert graph.node(add_c, 4) in graph.predecessors(node)

    def test_cross_operation_dependency_same_position(self, motivational):
        spec = motivational
        graph = BitDependencyGraph(spec)
        add_c = spec.operation_named("add_C")
        add_e = spec.operation_named("add_E")
        node = graph.node(add_e, 7)
        assert graph.node(add_c, 7) in graph.predecessors(node)

    def test_arrival_diagonal(self, motivational):
        # Bits i of C, i-1 of E, i-2 of G are computed simultaneously (Fig 1 e).
        spec = motivational
        graph = BitDependencyGraph(spec)
        depths = graph.arrival_depths()
        add_c = spec.operation_named("add_C")
        add_e = spec.operation_named("add_E")
        add_g = spec.operation_named("add_G")
        for i in range(2, 16):
            d = depths[graph.node(add_c, i)]
            assert depths[graph.node(add_e, i - 1)] == d
            assert depths[graph.node(add_g, i - 2)] == d

    def test_carry_out_bit_costs_nothing(self):
        builder = SpecBuilder("carry")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        out = builder.output("out", 9)
        builder.add(a, b, dest=out, width=9, name="wide_add")
        spec = builder.build()
        graph = BitDependencyGraph(spec)
        op = spec.operation_named("wide_add")
        assert graph.node_cost(graph.node(op, 8)) == 0
        assert graph.node_cost(graph.node(op, 7)) == 1
        assert graph.critical_depth() == 8

    def test_glue_is_traced_through(self):
        builder = SpecBuilder("glue")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        out = builder.output("out", 8)
        first = builder.add(a, b, name="first")
        inverted = builder.bit_not(first, name="invert")
        builder.add(inverted, a, dest=out, name="second")
        spec = builder.build()
        graph = BitDependencyGraph(spec)
        second = spec.operation_named("second")
        first_op = spec.operation_named("first")
        predecessors = graph.predecessors(graph.node(second, 3))
        assert graph.node(first_op, 3) in predecessors

    def test_shift_glue_offsets_positions(self):
        builder = SpecBuilder("shift")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        out = builder.output("out", 12)
        first = builder.add(a, b, name="first")
        shifted = builder.shl(first, 4, name="shift")
        builder.add(shifted, shifted, dest=out, width=12, name="second")
        spec = builder.build()
        graph = BitDependencyGraph(spec)
        second = spec.operation_named("second")
        first_op = spec.operation_named("first")
        # Bit 4 of the shifted operand is bit 0 of the first addition.
        predecessors = graph.predecessors(graph.node(second, 4))
        assert graph.node(first_op, 0) in predecessors
        # Bits below the shift amount have no cross-operation producer.
        low_preds = graph.predecessors(graph.node(second, 0))
        assert all(p.operation is second for p in low_preds) or low_preds == ()

    def test_glue_source_bits_concat(self):
        builder = SpecBuilder("concat_map")
        a = builder.input("a", 4)
        b = builder.input("b", 4)
        out = builder.output("out", 8)
        from repro.ir.operations import Operation
        from repro.ir.values import Destination

        concat = Operation(
            kind=OpKind.CONCAT,
            operands=(a.whole(), b.whole()),
            destination=Destination(builder.variable("cat", 8), builder.specification.variable("cat").full_range()),
            name="cat_op",
        )
        builder.raw_operation(concat)
        builder.add(builder.specification.variable("cat"), builder.specification.variable("cat"), dest=out, name="use")
        pairs_low = BitDependencyGraph.glue_source_bits(concat, 1)
        pairs_high = BitDependencyGraph.glue_source_bits(concat, 5)
        assert pairs_low == [(a.whole(), 1)]
        assert pairs_high == [(b.whole(), 1)]

    def test_topological_order_covers_all_nodes(self, motivational):
        graph = BitDependencyGraph(motivational)
        assert len(graph.topological_order()) == len(graph)
