"""Unit tests for bit-vector types and bit-range arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import (
    BitRange,
    BitVectorType,
    IRTypeError,
    bits_of,
    extract_bits,
    from_bits,
    insert_bits,
    sign_extend,
    signed,
    unsigned,
    zero_extend,
)


class TestBitRange:
    def test_width_single_bit(self):
        assert BitRange(3, 3).width == 1

    def test_width_multi_bit(self):
        assert BitRange(0, 15).width == 16

    def test_len_matches_width(self):
        assert len(BitRange(2, 9)) == 8

    def test_iteration_yields_all_bits(self):
        assert list(BitRange(4, 7)) == [4, 5, 6, 7]

    def test_contains_bit(self):
        rng = BitRange(2, 5)
        assert 2 in rng and 5 in rng
        assert 1 not in rng and 6 not in rng

    def test_negative_low_rejected(self):
        with pytest.raises(IRTypeError):
            BitRange(-1, 3)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(IRTypeError):
            BitRange(5, 2)

    def test_overlaps(self):
        assert BitRange(0, 5).overlaps(BitRange(5, 9))
        assert not BitRange(0, 4).overlaps(BitRange(5, 9))

    def test_contains_range(self):
        assert BitRange(0, 15).contains_range(BitRange(3, 7))
        assert not BitRange(0, 7).contains_range(BitRange(3, 9))

    def test_intersection(self):
        assert BitRange(0, 7).intersection(BitRange(4, 12)) == BitRange(4, 7)
        assert BitRange(0, 3).intersection(BitRange(4, 12)) is None

    def test_shifted(self):
        assert BitRange(0, 5).shifted(6) == BitRange(6, 11)

    def test_adjacent_above(self):
        assert BitRange(6, 11).adjacent_above(BitRange(0, 5))
        assert not BitRange(7, 11).adjacent_above(BitRange(0, 5))

    def test_full(self):
        assert BitRange.full(16) == BitRange(0, 15)

    def test_full_rejects_non_positive(self):
        with pytest.raises(IRTypeError):
            BitRange.full(0)

    def test_ordering(self):
        assert BitRange(0, 3) < BitRange(1, 2)

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_width_property(self, lo, span):
        rng = BitRange(lo, lo + span)
        assert rng.width == span + 1
        assert list(rng)[0] == lo
        assert list(rng)[-1] == lo + span


class TestBitVectorType:
    def test_unsigned_bounds(self):
        t = unsigned(8)
        assert t.min_value == 0
        assert t.max_value == 255

    def test_signed_bounds(self):
        t = signed(8)
        assert t.min_value == -128
        assert t.max_value == 127

    def test_mask(self):
        assert unsigned(4).mask == 0xF

    def test_zero_width_rejected(self):
        with pytest.raises(IRTypeError):
            BitVectorType(0)

    def test_contains(self):
        assert unsigned(4).contains(15)
        assert not unsigned(4).contains(16)
        assert signed(4).contains(-8)
        assert not signed(4).contains(-9)

    def test_wrap_unsigned(self):
        assert unsigned(4).wrap(16) == 0
        assert unsigned(4).wrap(17) == 1

    def test_wrap_signed(self):
        assert signed(4).wrap(8) == -8
        assert signed(4).wrap(-9) == 7

    def test_bit_pattern_round_trip_signed(self):
        t = signed(8)
        for value in (-128, -1, 0, 1, 127):
            assert t.from_unsigned_bits(t.to_unsigned_bits(value)) == value

    def test_to_unsigned_bits_rejects_out_of_range(self):
        with pytest.raises(IRTypeError):
            unsigned(4).to_unsigned_bits(16)

    def test_full_range(self):
        assert unsigned(6).full_range() == BitRange(0, 5)

    @given(st.integers(1, 32), st.integers())
    def test_wrap_always_representable(self, width, value):
        for type_ in (unsigned(width), signed(width)):
            wrapped = type_.wrap(value)
            assert type_.contains(wrapped)

    @given(st.integers(1, 32), st.integers())
    def test_wrap_is_congruent_modulo_width(self, width, value):
        t = signed(width)
        assert (t.wrap(value) - value) % (1 << width) == 0


class TestBitHelpers:
    def test_bits_of_lsb_first(self):
        assert bits_of(0b1011, 4) == [1, 1, 0, 1]

    def test_from_bits_round_trip(self):
        assert from_bits(bits_of(0xABCD, 16)) == 0xABCD

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(IRTypeError):
            from_bits([0, 2, 1])

    def test_sign_extend_negative(self):
        assert sign_extend(0b1000, 4, 8) == 0b11111000

    def test_sign_extend_positive(self):
        assert sign_extend(0b0111, 4, 8) == 0b0111

    def test_sign_extend_rejects_narrowing(self):
        with pytest.raises(IRTypeError):
            sign_extend(3, 8, 4)

    def test_zero_extend(self):
        assert zero_extend(0b1111, 4, 8) == 0b1111

    def test_extract_bits(self):
        assert extract_bits(0b110101, BitRange(2, 4)) == 0b101

    def test_insert_bits(self):
        assert insert_bits(0, BitRange(4, 7), 0xF) == 0xF0
        assert insert_bits(0xFF, BitRange(0, 3), 0) == 0xF0

    @given(st.integers(0, 2**16 - 1), st.integers(0, 11), st.integers(0, 4))
    def test_extract_insert_round_trip(self, value, lo, span):
        rng = BitRange(lo, lo + span)
        extracted = extract_bits(value, rng)
        assert insert_bits(value, rng, extracted) == value

    @given(st.integers(1, 24), st.integers(0, 2**24 - 1))
    def test_bits_round_trip(self, width, value):
        value &= (1 << width) - 1
        assert from_bits(bits_of(value, width)) == value
