"""Unit tests for variables, constants, operands and destinations."""

import pytest

from repro.ir.types import BitRange, BitVectorType, IRTypeError
from repro.ir.values import (
    Constant,
    Destination,
    Operand,
    PortDirection,
    Variable,
    destination_of,
    operand_of,
)


@pytest.fixture
def port_a():
    return Variable("A", BitVectorType(16), PortDirection.INPUT)


@pytest.fixture
def internal_c():
    return Variable("C", BitVectorType(16), PortDirection.INTERNAL)


class TestVariable:
    def test_width_and_signedness(self):
        v = Variable("x", BitVectorType(12, signed=True))
        assert v.width == 12
        assert v.signed is True

    def test_direction_predicates(self, port_a, internal_c):
        assert port_a.is_input() and not port_a.is_output()
        assert not internal_c.is_input() and not internal_c.is_output()

    def test_identity_equality(self):
        a = Variable("same", BitVectorType(4))
        b = Variable("same", BitVectorType(4))
        assert a != b
        assert a == a
        assert len({a, b}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(IRTypeError):
            Variable("", BitVectorType(4))

    def test_slice_produces_operand(self, port_a):
        operand = port_a.slice(5, 0)
        assert isinstance(operand, Operand)
        assert operand.range == BitRange(0, 5)

    def test_slice_single_bit(self, port_a):
        assert port_a.slice(7).range == BitRange(7, 7)
        assert port_a.bit(7).range == BitRange(7, 7)

    def test_slice_out_of_bounds_rejected(self, port_a):
        with pytest.raises(IRTypeError):
            port_a.slice(16, 0)

    def test_whole(self, port_a):
        assert port_a.whole().range == BitRange(0, 15)


class TestConstant:
    def test_bits_of_negative_constant(self):
        c = Constant(-1, BitVectorType(4, signed=True))
        assert c.bits == 0xF

    def test_out_of_range_rejected(self):
        with pytest.raises(IRTypeError):
            Constant(16, BitVectorType(4))

    def test_of_helper(self):
        c = Constant.of(5, 4)
        assert c.value == 5 and c.width == 4 and not c.signed


class TestOperand:
    def test_width(self, port_a):
        assert Operand(port_a, BitRange(4, 11)).width == 8

    def test_out_of_bounds_rejected(self, port_a):
        with pytest.raises(IRTypeError):
            Operand(port_a, BitRange(10, 16))

    def test_constant_operand(self):
        operand = operand_of(Constant.of(3, 4))
        assert operand.is_constant and not operand.is_variable
        assert operand.constant.value == 3

    def test_variable_accessor_raises_for_constant(self):
        operand = operand_of(Constant.of(3, 4))
        with pytest.raises(IRTypeError):
            _ = operand.variable

    def test_covers_whole_source(self, port_a):
        assert port_a.whole().covers_whole_source()
        assert not port_a.slice(7, 0).covers_whole_source()

    def test_subrange_relative(self, port_a):
        operand = port_a.slice(11, 4)
        sub = operand.subrange(BitRange(0, 3))
        assert sub.range == BitRange(4, 7)

    def test_subrange_out_of_bounds(self, port_a):
        operand = port_a.slice(7, 0)
        with pytest.raises(IRTypeError):
            operand.subrange(BitRange(0, 8))

    def test_describe(self, port_a):
        assert port_a.whole().describe() == "A"
        assert "downto" in port_a.slice(5, 0).describe()


class TestDestination:
    def test_whole_variable(self, internal_c):
        destination = destination_of(internal_c)
        assert destination.covers_whole_variable()
        assert destination.width == 16

    def test_slice_destination(self, internal_c):
        destination = Destination(internal_c, BitRange(6, 12))
        assert destination.width == 7
        assert not destination.covers_whole_variable()

    def test_out_of_bounds_rejected(self, internal_c):
        with pytest.raises(IRTypeError):
            Destination(internal_c, BitRange(10, 16))

    def test_describe(self, internal_c):
        assert destination_of(internal_c).describe() == "C"
