"""Unit tests for the Specification container and its bit-level analysis."""

import pytest

from repro.ir.builder import SpecBuilder
from repro.ir.operations import OpKind, make_binary
from repro.ir.spec import Specification, SpecificationError
from repro.ir.types import BitRange, BitVectorType
from repro.ir.values import Destination, PortDirection, Variable
from repro.workloads import motivational_example


@pytest.fixture
def simple_spec():
    builder = SpecBuilder("simple")
    a = builder.input("a", 8)
    b = builder.input("b", 8)
    out = builder.output("out", 8)
    t = builder.add(a, b, name="add1")
    builder.add(t, a, dest=out, name="add2")
    return builder.build()


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(SpecificationError):
            Specification("")

    def test_duplicate_variable_rejected(self):
        spec = Specification("s")
        spec.add_variable(Variable("x", BitVectorType(4)))
        with pytest.raises(SpecificationError):
            spec.add_variable(Variable("x", BitVectorType(8)))

    def test_unregistered_read_rejected(self):
        spec = Specification("s")
        a = Variable("a", BitVectorType(4), PortDirection.INPUT)
        out = spec.add_variable(Variable("out", BitVectorType(4), PortDirection.OUTPUT))
        with pytest.raises(SpecificationError):
            spec.add_operation(
                make_binary(OpKind.ADD, a.whole(), a.whole(), Destination(out, out.full_range()))
            )

    def test_write_to_input_rejected(self):
        spec = Specification("s")
        a = spec.add_variable(Variable("a", BitVectorType(4), PortDirection.INPUT))
        with pytest.raises(SpecificationError):
            spec.add_operation(
                make_binary(OpKind.ADD, a.whole(), a.whole(), Destination(a, a.full_range()))
            )

    def test_double_write_rejected(self, simple_spec):
        out = simple_spec.variable("out")
        a = simple_spec.variable("a")
        with pytest.raises(SpecificationError):
            simple_spec.add_operation(
                make_binary(OpKind.ADD, a.whole(), a.whole(), Destination(out, out.full_range()))
            )

    def test_disjoint_slice_writes_allowed(self):
        spec = Specification("s")
        a = spec.add_variable(Variable("a", BitVectorType(8), PortDirection.INPUT))
        out = spec.add_variable(Variable("out", BitVectorType(8), PortDirection.OUTPUT))
        spec.add_operation(
            make_binary(OpKind.ADD, a.slice(3, 0), a.slice(3, 0), Destination(out, BitRange(0, 3)))
        )
        spec.add_operation(
            make_binary(OpKind.ADD, a.slice(7, 4), a.slice(7, 4), Destination(out, BitRange(4, 7)))
        )
        assert len(spec) == 2


class TestIntrospection:
    def test_port_queries(self, simple_spec):
        assert [v.name for v in simple_spec.inputs()] == ["a", "b"]
        assert [v.name for v in simple_spec.outputs()] == ["out"]
        assert len(simple_spec.internals()) == 1

    def test_variable_lookup(self, simple_spec):
        assert simple_spec.variable("a").name == "a"
        assert simple_spec.has_variable("out")
        assert not simple_spec.has_variable("missing")
        with pytest.raises(SpecificationError):
            simple_spec.variable("missing")

    def test_operation_lookup(self, simple_spec):
        assert simple_spec.operation_named("add1").name == "add1"
        with pytest.raises(SpecificationError):
            simple_spec.operation_named("nope")

    def test_operations_of_origin(self, simple_spec):
        assert len(simple_spec.operations_of_origin("add1")) == 1

    def test_counts(self, simple_spec):
        assert simple_spec.operation_count() == 2
        assert simple_spec.additive_operation_count() == 2
        assert simple_spec.total_additive_bits() == 16

    def test_describe_mentions_everything(self, simple_spec):
        text = simple_spec.describe()
        assert "out" in text and "a + b" in text
        assert "input" in text and "output" in text


class TestBitAnalysis:
    def test_bit_writer_for_internal(self, simple_spec):
        t = simple_spec.operation_named("add1").destination.variable
        definition = simple_spec.bit_writer(t, 3)
        assert definition is not None
        assert definition.operation.name == "add1"
        assert definition.result_bit == 3

    def test_bit_writer_for_input_is_none(self, simple_spec):
        assert simple_spec.bit_writer(simple_spec.variable("a"), 0) is None

    def test_bit_readers(self, simple_spec):
        a = simple_spec.variable("a")
        readers = simple_spec.bit_readers(a, 0)
        assert {op.name for op, _ in readers} == {"add1", "add2"}
        assert all(position == 0 for _, position in readers)

    def test_written_bits(self, simple_spec):
        out = simple_spec.variable("out")
        assert simple_spec.written_bits(out) == list(range(8))

    def test_undriven_output_bits(self):
        spec = Specification("s")
        a = spec.add_variable(Variable("a", BitVectorType(4), PortDirection.INPUT))
        out = spec.add_variable(Variable("out", BitVectorType(4), PortDirection.OUTPUT))
        spec.add_operation(
            make_binary(OpKind.ADD, a.slice(1, 0), a.slice(1, 0), Destination(out, BitRange(0, 1)))
        )
        missing = spec.undriven_output_bits()
        assert {ref.bit for ref in missing} == {2, 3}

    def test_motivational_example_has_no_undriven_outputs(self):
        assert motivational_example().undriven_output_bits() == []
