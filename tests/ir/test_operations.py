"""Unit tests for operation kinds and operation nodes."""

import pytest

from repro.ir.operations import (
    ADDITIVE_KINDS,
    COMMUTATIVE_KINDS,
    COMPARISON_KINDS,
    GLUE_KINDS,
    Operation,
    OpKind,
    is_additive,
    is_comparison,
    is_glue,
    make_binary,
    make_unary,
)
from repro.ir.types import BitRange, BitVectorType, IRTypeError
from repro.ir.values import Constant, Destination, Variable, operand_of


@pytest.fixture
def variables():
    a = Variable("a", BitVectorType(8))
    b = Variable("b", BitVectorType(8))
    c = Variable("c", BitVectorType(8))
    return a, b, c


class TestKindClassification:
    def test_additive_and_glue_partition_all_kinds(self):
        assert ADDITIVE_KINDS | GLUE_KINDS == set(OpKind)
        assert not ADDITIVE_KINDS & GLUE_KINDS

    def test_add_is_additive(self):
        assert is_additive(OpKind.ADD)
        assert is_additive(OpKind.MUL)
        assert is_additive(OpKind.MAX)

    def test_logic_is_glue(self):
        assert is_glue(OpKind.AND)
        assert is_glue(OpKind.MOVE)
        assert is_glue(OpKind.SHL)

    def test_comparisons(self):
        assert is_comparison(OpKind.LT)
        assert not is_comparison(OpKind.ADD)
        assert COMPARISON_KINDS <= ADDITIVE_KINDS

    def test_commutativity(self):
        assert OpKind.ADD in COMMUTATIVE_KINDS
        assert OpKind.SUB not in COMMUTATIVE_KINDS


class TestOperation:
    def test_binary_construction(self, variables):
        a, b, c = variables
        op = make_binary(OpKind.ADD, a.whole(), b.whole(), Destination(c, c.full_range()))
        assert op.width == 8
        assert op.is_additive and not op.is_glue
        assert op.max_operand_width() == 8
        assert op.result_variable is c

    def test_requires_at_least_one_operand(self, variables):
        _, _, c = variables
        with pytest.raises(IRTypeError):
            Operation(kind=OpKind.ADD, operands=(), destination=Destination(c, c.full_range()))

    def test_carry_in_must_be_one_bit(self, variables):
        a, b, c = variables
        with pytest.raises(IRTypeError):
            make_binary(
                OpKind.ADD,
                a.whole(),
                b.whole(),
                Destination(c, c.full_range()),
                carry_in=a.slice(3, 0),
            )

    def test_carry_in_accepted(self, variables):
        a, b, c = variables
        op = make_binary(
            OpKind.ADD,
            a.whole(),
            b.whole(),
            Destination(c, c.full_range()),
            carry_in=operand_of(Constant.of(1, 1)),
        )
        assert op.carry_in is not None
        assert len(op.all_read_operands()) == 3

    def test_default_name_and_origin(self, variables):
        a, b, c = variables
        op = make_binary(OpKind.ADD, a.whole(), b.whole(), Destination(c, c.full_range()))
        assert op.name
        assert op.origin == op.name

    def test_explicit_origin_preserved(self, variables):
        a, b, c = variables
        op = make_binary(
            OpKind.ADD,
            a.whole(),
            b.whole(),
            Destination(c, c.full_range()),
            name="frag0",
            origin="original_add",
            fragment_index=0,
        )
        assert op.origin == "original_add"
        assert op.is_fragment

    def test_unfragmented_operation(self, variables):
        a, _, c = variables
        op = make_unary(OpKind.NOT, a.whole(), Destination(c, c.full_range()))
        assert not op.is_fragment
        assert op.is_glue

    def test_read_variables_unique(self, variables):
        a, _, c = variables
        op = make_binary(OpKind.ADD, a.slice(3, 0), a.slice(7, 4), Destination(c, BitRange(0, 3)))
        assert op.read_variables() == [a]

    def test_identity_semantics(self, variables):
        a, b, c = variables
        op1 = make_binary(OpKind.ADD, a.whole(), b.whole(), Destination(c, c.full_range()))
        op2 = make_binary(OpKind.ADD, a.whole(), b.whole(), Destination(c, BitRange(0, 7)))
        assert op1 != op2
        assert len({op1, op2}) == 2

    def test_describe_infix(self, variables):
        a, b, c = variables
        op = make_binary(OpKind.ADD, a.whole(), b.whole(), Destination(c, c.full_range()))
        assert "a + b" in op.describe()

    def test_describe_with_carry(self, variables):
        a, b, c = variables
        op = make_binary(
            OpKind.ADD,
            a.whole(),
            b.whole(),
            Destination(c, c.full_range()),
            carry_in=operand_of(Constant.of(1, 1)),
        )
        assert op.describe().count("+") == 2
