"""Unit tests for structural validation of specifications."""

import pytest

from repro.ir.builder import SpecBuilder
from repro.ir.operations import OpKind, make_binary
from repro.ir.spec import Specification
from repro.ir.types import BitRange, BitVectorType
from repro.ir.values import Destination, PortDirection, Variable
from repro.ir.validate import ValidationError, require_valid, validate
from repro.workloads import fig3_example, motivational_example


def _spec_with_partial_output():
    spec = Specification("partial")
    a = spec.add_variable(Variable("a", BitVectorType(8), PortDirection.INPUT))
    out = spec.add_variable(Variable("out", BitVectorType(8), PortDirection.OUTPUT))
    spec.add_operation(
        make_binary(OpKind.ADD, a.slice(3, 0), a.slice(3, 0), Destination(out, BitRange(0, 3)))
    )
    return spec


class TestValidation:
    def test_motivational_example_is_valid(self):
        report = validate(motivational_example())
        assert report.ok
        assert report.errors == []

    def test_fig3_example_is_valid(self):
        assert validate(fig3_example()).ok

    def test_undriven_output_is_error(self):
        report = validate(_spec_with_partial_output())
        assert not report.ok
        assert any("never written" in issue.message for issue in report.errors)

    def test_require_valid_raises(self):
        with pytest.raises(ValidationError):
            require_valid(_spec_with_partial_output())

    def test_require_valid_returns_specification(self):
        spec = motivational_example()
        assert require_valid(spec) is spec

    def test_missing_outputs_is_error(self):
        builder = SpecBuilder("no_outputs")
        a = builder.input("a", 4)
        builder.add(a, a, name="add")
        report = validate(builder.build())
        assert any("no output ports" in issue.message for issue in report.errors)

    def test_empty_specification_is_error(self):
        builder = SpecBuilder("empty")
        builder.input("a", 4)
        builder.output("o", 4)
        report = validate(builder.build())
        assert not report.ok

    def test_no_inputs_is_only_warning(self):
        builder = SpecBuilder("const_only")
        out = builder.output("o", 4)
        builder.add(builder.constant(1, 4), builder.constant(2, 4), dest=out)
        report = validate(builder.build())
        assert report.ok
        assert any("no input ports" in issue.message for issue in report.warnings)

    def test_comparison_width_error(self):
        builder = SpecBuilder("badcmp")
        a = builder.input("a", 8)
        out = builder.output("o", 4)
        builder.binary(OpKind.LT, a, a, dest=out, width=4, name="cmp")
        report = validate(builder.build())
        assert any("1-bit result" in issue.message for issue in report.errors)

    def test_truncating_addition_is_warning(self):
        builder = SpecBuilder("truncadd")
        a = builder.input("a", 8)
        out = builder.output("o", 4)
        builder.add(a, a, dest=out, width=4, name="narrow")
        report = validate(builder.build())
        assert report.ok
        assert any("truncated" in issue.message for issue in report.warnings)

    def test_carry_on_non_additive_is_error(self):
        spec = Specification("badcarry")
        a = spec.add_variable(Variable("a", BitVectorType(4), PortDirection.INPUT))
        c = spec.add_variable(Variable("c", BitVectorType(1), PortDirection.INPUT))
        out = spec.add_variable(Variable("o", BitVectorType(4), PortDirection.OUTPUT))
        spec.add_operation(
            make_binary(
                OpKind.AND, a.whole(), a.whole(), Destination(out, out.full_range()),
                carry_in=c.whole(),
            )
        )
        report = validate(spec)
        assert any("cannot take a carry-in" in issue.message for issue in report.errors)

    def test_report_summary_counts(self):
        report = validate(_spec_with_partial_output())
        summary = report.summary()
        assert "error(s)" in summary and "partial" in summary

    def test_transformed_specification_validates(self):
        from repro.core import transform, TransformOptions

        result = transform(
            motivational_example(), latency=3, options=TransformOptions(check_equivalence=False)
        )
        assert validate(result.transformed).ok
