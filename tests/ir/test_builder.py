"""Unit tests for the fluent specification builder."""

import pytest

from repro.ir.builder import BuildError, SpecBuilder
from repro.ir.operations import OpKind


class TestPorts:
    def test_input_output_variable(self):
        builder = SpecBuilder("ports")
        a = builder.input("a", 8)
        out = builder.output("out", 8, signed=True)
        tmp = builder.variable("tmp", 4)
        spec = builder.specification
        assert a.is_input()
        assert out.is_output() and out.signed
        assert tmp in spec.internals()

    def test_constant_signedness_inferred(self):
        builder = SpecBuilder("c")
        assert builder.constant(-3, 4).signed
        assert not builder.constant(3, 4).signed


class TestResultWidths:
    def test_add_takes_widest_operand(self):
        assert SpecBuilder.result_width(OpKind.ADD, 8, 12) == 12

    def test_mul_sums_widths(self):
        assert SpecBuilder.result_width(OpKind.MUL, 8, 12) == 20

    def test_comparison_is_one_bit(self):
        assert SpecBuilder.result_width(OpKind.LT, 8, 12) == 1

    def test_builder_applies_widths(self):
        builder = SpecBuilder("widths")
        a = builder.input("a", 8)
        b = builder.input("b", 6)
        product = builder.mul(a, b)
        comparison = builder.lt(a, b)
        assert product.width == 14
        assert comparison.width == 1


class TestOperationEmission:
    def test_add_creates_temporary(self):
        builder = SpecBuilder("emit")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        result = builder.add(a, b)
        spec = builder.specification
        assert result in spec.internals()
        assert spec.operations[-1].kind is OpKind.ADD

    def test_dest_variable_used_directly(self):
        builder = SpecBuilder("emit")
        a = builder.input("a", 8)
        out = builder.output("out", 8)
        result = builder.add(a, a, dest=out)
        assert result is out

    def test_narrow_destination_rejected(self):
        builder = SpecBuilder("emit")
        a = builder.input("a", 8)
        narrow = builder.output("narrow", 4)
        with pytest.raises(BuildError):
            builder.add(a, a, dest=narrow)

    def test_integer_operands_become_constants(self):
        builder = SpecBuilder("emit")
        a = builder.input("a", 8)
        out = builder.output("out", 8)
        builder.add(a, 5, dest=out, name="plus5")
        operation = builder.specification.operation_named("plus5")
        assert operation.operands[1].is_constant
        assert operation.operands[1].constant.value == 5

    def test_every_binary_helper_emits_expected_kind(self):
        builder = SpecBuilder("kinds")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        helpers = {
            OpKind.ADD: builder.add,
            OpKind.SUB: builder.sub,
            OpKind.MUL: builder.mul,
            OpKind.LT: builder.lt,
            OpKind.LE: builder.le,
            OpKind.GT: builder.gt,
            OpKind.GE: builder.ge,
            OpKind.EQ: builder.eq,
            OpKind.NE: builder.ne,
            OpKind.MAX: builder.max,
            OpKind.MIN: builder.min,
            OpKind.AND: builder.bit_and,
            OpKind.OR: builder.bit_or,
            OpKind.XOR: builder.bit_xor,
        }
        for kind, helper in helpers.items():
            helper(a, b, name=f"op_{kind.value}")
        emitted = {op.kind for op in builder.specification.operations}
        assert emitted == set(helpers)

    def test_shift_helpers_record_amount(self):
        builder = SpecBuilder("shift")
        a = builder.input("a", 8)
        shifted_left = builder.shl(a, 3, name="left")
        shifted_right = builder.shr(a, 2, name="right")
        spec = builder.specification
        assert spec.operation_named("left").attributes["shift"] == 3
        assert shifted_left.width == 11
        assert spec.operation_named("right").attributes["shift"] == 2
        assert shifted_right.width == 6

    def test_select_requires_single_bit_condition(self):
        builder = SpecBuilder("select")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        wide_condition = builder.input("cond", 2)
        with pytest.raises(BuildError):
            builder.select(wide_condition, a, b)

    def test_select_emits_three_operand_operation(self):
        builder = SpecBuilder("select")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        condition = builder.input("cond", 1)
        builder.select(condition, a, b, name="choose")
        operation = builder.specification.operation_named("choose")
        assert operation.kind is OpKind.SELECT
        assert len(operation.operands) == 3

    def test_carry_in_forwarded(self):
        builder = SpecBuilder("carry")
        a = builder.input("a", 8)
        b = builder.input("b", 8)
        carry = builder.input("cin", 1)
        builder.add(a, b, carry_in=carry, name="add_c")
        operation = builder.specification.operation_named("add_c")
        assert operation.carry_in is not None

    def test_fresh_names_do_not_collide(self):
        builder = SpecBuilder("fresh")
        a = builder.input("a", 4)
        for _ in range(10):
            builder.add(a, a)
        names = [v.name for v in builder.specification.variables]
        assert len(names) == len(set(names))

    def test_unknown_operand_type_rejected(self):
        builder = SpecBuilder("bad")
        a = builder.input("a", 4)
        with pytest.raises(BuildError):
            builder.add(a, object())
