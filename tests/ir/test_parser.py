"""Unit tests for the textual specification language."""

import pytest

from repro.ir.operations import OpKind
from repro.ir.parser import ParseError, parse_specification
from repro.simulation import simulate


MOTIVATIONAL_TEXT = """
# The paper's Fig. 1 a example
spec example
input A, B, D, F : unsigned 16
output G : unsigned 16
var C, E : unsigned 16
C = A + B
E = C + D
G = E + F
"""


class TestParsing:
    def test_motivational_text_parses(self):
        spec = parse_specification(MOTIVATIONAL_TEXT)
        assert spec.name == "example"
        assert len(spec.inputs()) == 4
        assert len(spec.outputs()) == 1
        assert spec.additive_operation_count() == 3

    def test_parsed_spec_simulates_correctly(self):
        spec = parse_specification(MOTIVATIONAL_TEXT)
        result = simulate(spec, {"A": 1, "B": 2, "D": 3, "F": 4})
        assert result.output("G") == 10

    def test_declarations_support_signed(self):
        spec = parse_specification(
            "spec s\ninput a : signed 8\noutput o : signed 8\no = a + a\n"
        )
        assert spec.variable("a").signed

    def test_comments_and_blank_lines_ignored(self):
        spec = parse_specification(
            "\n# header\nspec s\ninput a : unsigned 4\noutput o : unsigned 4\n\no = a + 1 # trailing\n"
        )
        assert spec.operation_count() >= 1

    def test_subtraction_and_multiplication(self):
        spec = parse_specification(
            "spec s\ninput a, b : unsigned 8\noutput o : unsigned 8\no = a * b - a\n"
        )
        kinds = {op.kind for op in spec.operations}
        assert OpKind.MUL in kinds and OpKind.SUB in kinds

    def test_precedence_multiplication_before_addition(self):
        spec = parse_specification(
            "spec s\ninput a, b, c : unsigned 4\noutput o : unsigned 12\no = a + b * c\n"
        )
        result = simulate(spec, {"a": 2, "b": 3, "c": 4})
        assert result.output("o") == 14

    def test_parentheses_override_precedence(self):
        spec = parse_specification(
            "spec s\ninput a, b, c : unsigned 4\noutput o : unsigned 12\no = (a + b) * c\n"
        )
        result = simulate(spec, {"a": 2, "b": 3, "c": 4})
        assert result.output("o") == 20

    def test_slices_in_expressions(self):
        spec = parse_specification(
            "spec s\ninput a : unsigned 8\noutput o : unsigned 4\no = a[3:0] + a[7:4]\n"
        )
        result = simulate(spec, {"a": 0x21})
        assert result.output("o") == 3

    def test_destination_slice(self):
        text = (
            "spec s\ninput a : unsigned 4\noutput o : unsigned 8\n"
            "o[3:0] = a + 0\no[7:4] = a + 1\n"
        )
        spec = parse_specification(text)
        result = simulate(spec, {"a": 2})
        assert result.output("o") == 0x32

    def test_shift_operators(self):
        spec = parse_specification(
            "spec s\ninput a : unsigned 4\noutput o : unsigned 8\no = (a << 2) + (a >> 1)\n"
        )
        result = simulate(spec, {"a": 5})
        assert result.output("o") == 20 + 2

    def test_max_min_functions(self):
        spec = parse_specification(
            "spec s\ninput a, b : unsigned 8\noutput o : unsigned 8\no = max(a, b) + min(a, b)\n"
        )
        result = simulate(spec, {"a": 10, "b": 3})
        assert result.output("o") == 13

    def test_comparison_expression(self):
        spec = parse_specification(
            "spec s\ninput a, b : unsigned 8\noutput o : unsigned 1\no = a < b\n"
        )
        assert simulate(spec, {"a": 1, "b": 2}).output("o") == 1
        assert simulate(spec, {"a": 3, "b": 2}).output("o") == 0


class TestParseErrors:
    def test_missing_spec_header(self):
        with pytest.raises(ParseError):
            parse_specification("input a : unsigned 4\n")

    def test_duplicate_spec_header(self):
        with pytest.raises(ParseError):
            parse_specification("spec a\nspec b\n")

    def test_empty_text(self):
        with pytest.raises(ParseError):
            parse_specification("   \n  # nothing\n")

    def test_undeclared_variable_read(self):
        with pytest.raises(ParseError):
            parse_specification("spec s\noutput o : unsigned 4\no = missing + 1\n")

    def test_undeclared_assignment_target(self):
        with pytest.raises(ParseError):
            parse_specification("spec s\ninput a : unsigned 4\nmissing = a + 1\n")

    def test_malformed_statement(self):
        with pytest.raises(ParseError):
            parse_specification("spec s\ninput a : unsigned 4\nthis is not valid\n")

    def test_bad_slice_bounds(self):
        with pytest.raises(ParseError):
            parse_specification(
                "spec s\ninput a : unsigned 8\noutput o : unsigned 8\no = a[0:7] + 1\n"
            )

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_specification(
                "spec s\ninput a : unsigned 8\noutput o : unsigned 8\no = a + 1 )\n"
            )

    def test_error_reports_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_specification("spec s\ninput a : unsigned 4\nbad line here\n")
        assert "line 3" in str(excinfo.value)
