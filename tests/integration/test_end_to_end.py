"""Integration tests: the full transform-and-synthesize pipeline."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.analysis import compare_flows
from repro.core import TransformOptions, transform
from repro.hls import FlowMode, synthesize
from repro.hls.timing import bit_level_cycle_depths
from repro.simulation import check_equivalence
from repro.workloads import (
    ALL_WORKLOADS,
    GeneratorConfig,
    fig3_example,
    inverse_adaptive_quantizer,
    motivational_example,
    random_specification,
)

#: benchmark -> latency used for the smoke-level integration sweep
INTEGRATION_LATENCIES = {
    "motivational": 3,
    "fig3": 3,
    "fir2": 3,
    "iir4": 5,
    "adpcm_iaq": 3,
    "adpcm_ttd": 5,
}


class TestPipeline:
    @pytest.mark.parametrize("name", sorted(INTEGRATION_LATENCIES))
    def test_benchmarks_improve_cycle_length(self, name):
        latency = INTEGRATION_LATENCIES[name]
        spec = ALL_WORKLOADS[name]()
        comparison = compare_flows(spec, latency)
        assert comparison.optimized.cycle_length_ns < comparison.original.cycle_length_ns
        assert comparison.cycle_saving > 0.3
        assert comparison.optimized.total_area > 0

    @pytest.mark.parametrize("name", ["motivational", "fig3", "adpcm_iaq"])
    def test_transformation_preserves_behaviour(self, name):
        spec = ALL_WORKLOADS[name]()
        result = transform(
            spec,
            latency=INTEGRATION_LATENCIES.get(name, 3),
            options=TransformOptions(equivalence_vectors=25),
        )
        assert result.equivalence is not None
        assert result.equivalence.equivalent

    def test_fig3_reproduces_paper_numbers(self):
        """Fig. 3: budget of 3 chained bits, large cycle reduction."""
        comparison = compare_flows(fig3_example(), latency=3)
        assert comparison.transform_result.critical_path_bits == 9
        assert comparison.transform_result.chained_bits_per_cycle == 3
        # Fig. 3 h reports a 62% cycle reduction.
        assert comparison.cycle_saving > 0.5

    def test_optimized_schedule_respects_budget(self):
        spec = inverse_adaptive_quantizer()
        result = transform(spec, latency=3, options=TransformOptions(check_equivalence=False))
        synthesis = synthesize(
            result.transformed,
            3,
            mode=FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        depths = bit_level_cycle_depths(synthesis.schedule)
        assert max(depths.values()) <= result.chained_bits_per_cycle

    def test_execution_time_never_worse_than_original(self):
        for name in ("motivational", "fig3", "fir2"):
            comparison = compare_flows(ALL_WORKLOADS[name](), INTEGRATION_LATENCIES[name])
            assert (
                comparison.optimized.execution_time_ns
                <= comparison.original.execution_time_ns * 1.01
            )

    def test_blc_is_fastest_but_largest_fu(self):
        comparison = compare_flows(motivational_example(), 3, include_blc=True)
        blc = comparison.bit_level_chained
        assert blc.execution_time_ns <= comparison.optimized.execution_time_ns * 1.05
        assert blc.fu_area > comparison.optimized.fu_area

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5000))
    @example(seed=263)  # historical falsifier of the old 1e-6 tolerance
    def test_random_specifications_full_pipeline(self, seed):
        config = GeneratorConfig(operation_count=7, input_count=3, maximum_width=10)
        spec = random_specification(seed, config)
        latency = 3
        result = transform(spec, latency, TransformOptions(check_equivalence=False))
        report = check_equivalence(spec, result.transformed, random_count=15)
        assert report.equivalent, report.summary()
        optimized = synthesize(
            result.transformed,
            latency,
            mode=FlowMode.FRAGMENTED,
            chained_bits_per_cycle=result.chained_bits_per_cycle,
        )
        original = synthesize(spec, latency)
        # The fragmented cycle is quantized to whole chained-bit units
        # (the phase-2 budget is an integer number of delta), while the
        # conventional schedule chains real ns functional-unit delays, so
        # the fragmented flow can lose up to one delta to quantization on
        # specs whose comparison/max/min bit costs overestimate their ns
        # delays (e.g. generator seed 263).  The guarantee is therefore
        # "no worse than one chained-bit delay", not strict dominance.
        delta_ns = optimized.library.delta_ns
        assert optimized.cycle_length_ns <= original.cycle_length_ns + delta_ns
