"""Tests for flow comparison, the latency sweep and table formatting."""

import pytest

from repro.analysis import (
    LatencySweep,
    compare_flows,
    format_records,
    format_table,
    latency_sweep,
    percentage,
)
from repro.core import TransformOptions
from repro.workloads import addition_chain, fig3_example, motivational_example


class TestCompareFlows:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_flows(motivational_example(), latency=3, include_blc=True)

    def test_cycle_saving_matches_paper_band(self, comparison):
        # The paper reports roughly 62% cycle-length reduction on Table I.
        assert 0.55 <= comparison.cycle_saving <= 0.70

    def test_execution_time_saving(self, comparison):
        assert comparison.execution_time_saving > 0.5

    def test_area_increment_is_slight(self, comparison):
        assert abs(comparison.area_increment) < 0.25
        assert abs(comparison.total_area_increment) < 0.25

    def test_operation_growth_positive(self, comparison):
        assert comparison.operation_growth > 0

    def test_blc_included(self, comparison):
        assert comparison.bit_level_chained is not None
        assert comparison.bit_level_chained.fu_area > comparison.original.fu_area

    def test_as_row_keys(self, comparison):
        row = comparison.as_row()
        for key in (
            "benchmark",
            "latency",
            "original_cycle_ns",
            "optimized_cycle_ns",
            "cycle_saving_pct",
            "area_increment_pct",
        ):
            assert key in row

    def test_summary_text(self, comparison):
        assert "cycle" in comparison.summary()

    def test_equivalence_can_be_requested(self):
        comparison = compare_flows(
            fig3_example(),
            latency=3,
            transform_options=TransformOptions(check_equivalence=True, equivalence_vectors=15),
        )
        assert comparison.transform_result.equivalence.equivalent


class TestLatencySweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        # Fig. 4 sweeps the latency of a fixed behavioural description from 3
        # upward: the conventional schedule saturates at the delay of the
        # slowest operation while the optimized one keeps shrinking its cycle.
        return latency_sweep(lambda: addition_chain(3, 16), latencies=range(3, 10))

    def test_point_count(self, sweep):
        assert sweep.latencies() == list(range(3, 10))

    def test_optimized_cycle_shrinks_with_latency(self, sweep):
        optimized = sweep.optimized_series()
        assert optimized == sorted(optimized, reverse=True)

    def test_optimized_always_at_most_original(self, sweep):
        for point in sweep.points:
            assert point.optimized_cycle_ns <= point.original_cycle_ns + 1e-9

    def test_curves_diverge(self, sweep):
        # Fig. 4: the gap between the curves grows with the latency.
        assert sweep.divergence() > 0

    def test_savings_grow_with_latency(self, sweep):
        savings = sweep.savings_series()
        assert savings[-1] > savings[0]

    def test_rows_and_ascii_rendering(self, sweep):
        rows = sweep.as_rows()
        assert len(rows) == len(sweep.points)
        art = sweep.render_ascii(width=30)
        assert "lambda= 3" in art or "lambda=3" in art.replace(" ", "")

    def test_empty_sweep_renders(self):
        assert "empty" in LatencySweep("nothing").render_ascii()


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["beta", 20]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_records(self):
        records = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.25}]
        text = format_records(records)
        assert "2.50" in text and "4.25" in text

    def test_format_records_empty(self):
        assert format_records([], title="nothing") == "nothing"

    def test_format_records_column_subset(self):
        records = [{"a": 1, "b": 2}]
        text = format_records(records, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_percentage(self):
        assert percentage(0.625) == "62.50 %"

    def test_boolean_cells(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text
