"""Unit tests for primitive gate costs, registers and multiplexers."""

import pytest
from hypothesis import given, strategies as st

from repro.techlib import (
    DEFAULT_GATES,
    GateCosts,
    build_multiplexer,
    build_register,
    multiplexer_area,
    register_area,
    register_setup_ns,
    routing_area,
)


class TestCalibration:
    """The default constants reproduce the component costs of Table I."""

    def test_sixteen_bit_register_is_81_gates(self):
        assert register_area(16) == pytest.approx(81, abs=1.0)

    def test_one_bit_register_is_11_gates(self):
        assert register_area(1) == pytest.approx(11, abs=0.5)

    def test_five_one_bit_registers_are_55_gates(self):
        assert 5 * register_area(1) == pytest.approx(55, abs=2.0)

    def test_table1_routing_mix(self):
        # 2 three-to-one and 1 two-to-one 16-bit multiplexers: 176 gates.
        total = 2 * multiplexer_area(3, 16) + multiplexer_area(2, 16)
        assert total == pytest.approx(176, rel=0.02)


class TestRegisters:
    def test_register_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            build_register(0)

    def test_register_setup_positive(self):
        assert register_setup_ns() > 0

    @given(st.integers(1, 63))
    def test_register_area_monotonic(self, width):
        assert register_area(width + 1) > register_area(width)


class TestMultiplexers:
    def test_fan_in_one_costs_nothing(self):
        assert multiplexer_area(1, 16) == 0.0
        assert multiplexer_area(0, 16) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            build_multiplexer(-1, 4)
        with pytest.raises(ValueError):
            build_multiplexer(2, 0)

    def test_delay_grows_with_fan_in(self):
        assert build_multiplexer(4, 8).delay_ns > build_multiplexer(2, 8).delay_ns

    @given(st.integers(2, 10), st.integers(1, 32))
    def test_area_monotonic_in_fan_in_and_width(self, fan_in, width):
        assert multiplexer_area(fan_in + 1, width) > multiplexer_area(fan_in, width)
        assert multiplexer_area(fan_in, width + 1) > multiplexer_area(fan_in, width)

    def test_routing_area_sums_requirements(self):
        mix = [(3, 16), (3, 16), (2, 16)]
        assert routing_area(mix) == pytest.approx(
            2 * multiplexer_area(3, 16) + multiplexer_area(2, 16)
        )

    def test_routing_area_skips_trivial_fan_in(self):
        assert routing_area([(1, 16), (0, 8)]) == 0.0


class TestGateCosts:
    def test_default_instance_is_shared(self):
        assert isinstance(DEFAULT_GATES, GateCosts)

    def test_mux_tree_area_helper(self):
        assert DEFAULT_GATES.mux_area_per_bit(1) == 0.0
        assert DEFAULT_GATES.mux_area_per_bit(3) == pytest.approx(2 * 2.2)

    def test_mux_tree_delay_levels(self):
        assert DEFAULT_GATES.mux_delay_ns(2) == pytest.approx(0.1)
        assert DEFAULT_GATES.mux_delay_ns(5) >= DEFAULT_GATES.mux_delay_ns(2)

    def test_custom_costs_propagate(self):
        expensive = GateCosts(flip_flop_area=10.0, register_overhead_area=0.0)
        assert register_area(4, expensive) == pytest.approx(40.0)
