"""Unit tests for adder and multiplier area/delay models."""

import pytest
from hypothesis import given, strategies as st

from repro.techlib import (
    AdderStyle,
    MultiplierStyle,
    adder_area,
    adder_delay,
    build_adder,
    build_multiplier,
    chained_bits_delay,
    multiplier_area,
    multiplier_delay,
)


class TestRippleCarryCalibration:
    """Ripple-carry constants reproduce the Table I adder figures."""

    def test_sixteen_bit_adder_area(self):
        assert adder_area(16) == pytest.approx(162, abs=1.0)

    def test_sixteen_bit_adder_delay(self):
        assert adder_delay(16) == pytest.approx(9.4, abs=0.05)

    def test_six_bit_adder_matches_optimized_cycle(self):
        # The optimized cycle of Table I is six chained bits: about 3.5 ns.
        assert adder_delay(6) == pytest.approx(3.525, abs=0.01)

    def test_three_six_bit_adders_cost_about_176_gates(self):
        assert 3 * adder_area(6) == pytest.approx(182, abs=5)

    def test_chained_bits_delay_is_linear(self):
        assert chained_bits_delay(18) == pytest.approx(18 * 0.5875)

    def test_chained_bits_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            chained_bits_delay(-1)


class TestAdderStyles:
    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            build_adder(0)

    @pytest.mark.parametrize("style", list(AdderStyle))
    def test_every_style_builds(self, style):
        model = build_adder(16, style)
        assert model.width == 16
        assert model.area_gates > 0
        assert model.delay_ns > 0
        assert len(model.bit_arrival_ns) == 16

    def test_faster_adders_cost_more_area(self):
        ripple = build_adder(16, AdderStyle.RIPPLE_CARRY)
        lookahead = build_adder(16, AdderStyle.CARRY_LOOKAHEAD)
        fast = build_adder(16, AdderStyle.FAST_LOOKAHEAD)
        assert lookahead.area_gates > ripple.area_gates
        assert fast.area_gates > ripple.area_gates

    def test_lookahead_is_faster_than_ripple_for_wide_adders(self):
        ripple = build_adder(32, AdderStyle.RIPPLE_CARRY)
        lookahead = build_adder(32, AdderStyle.CARRY_LOOKAHEAD)
        fast = build_adder(32, AdderStyle.FAST_LOOKAHEAD)
        assert lookahead.delay_ns < ripple.delay_ns
        assert fast.delay_ns < lookahead.delay_ns

    def test_ripple_arrivals_are_monotonic(self):
        model = build_adder(24, AdderStyle.RIPPLE_CARRY)
        arrivals = model.bit_arrival_ns
        assert all(later > earlier for earlier, later in zip(arrivals, arrivals[1:]))

    @given(st.integers(1, 64))
    def test_area_monotonic_in_width(self, width):
        for style in AdderStyle:
            assert adder_area(width + 1, style) > adder_area(width, style)

    @given(st.integers(1, 64))
    def test_delay_never_decreases_with_width(self, width):
        for style in AdderStyle:
            assert adder_delay(width + 1, style) >= adder_delay(width, style) - 1e-9


class TestMultipliers:
    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            build_multiplier(0, 8)
        with pytest.raises(ValueError):
            build_multiplier(8, -1)

    def test_result_width(self):
        assert build_multiplier(8, 6).result_width == 14

    @pytest.mark.parametrize("style", list(MultiplierStyle))
    def test_every_style_builds(self, style):
        model = build_multiplier(16, 16, style)
        assert model.area_gates > 0 and model.delay_ns > 0

    def test_array_multiplier_delay_tracks_ripple_depth(self):
        # An m x n array multiplier ripples through roughly m + n stages.
        from repro.techlib import DEFAULT_GATES

        model = build_multiplier(16, 16, MultiplierStyle.ARRAY)
        expected = (16 + 16 - 2) * 0.5875 + DEFAULT_GATES.and_gate_delay_ns
        assert model.delay_ns == pytest.approx(expected, abs=0.1)

    def test_wallace_is_faster_than_array_for_wide_operands(self):
        array = build_multiplier(24, 24, MultiplierStyle.ARRAY)
        wallace = build_multiplier(24, 24, MultiplierStyle.WALLACE)
        assert wallace.delay_ns < array.delay_ns

    def test_multiplier_much_larger_than_adder(self):
        assert multiplier_area(16, 16) > 10 * adder_area(16)

    @given(st.integers(1, 24), st.integers(1, 24))
    def test_area_monotonic(self, m, n):
        assert multiplier_area(m + 1, n) > multiplier_area(m, n)
        assert multiplier_area(m, n + 1) > multiplier_area(m, n)

    @given(st.integers(2, 24), st.integers(2, 24))
    def test_delay_positive_and_bounded(self, m, n):
        delay = multiplier_delay(m, n)
        assert 0 < delay < (m + n) * 1.0
