"""Unit tests for the TechnologyLibrary facade."""

import pytest

from repro.ir.builder import SpecBuilder
from repro.techlib import AdderStyle, MultiplierStyle, default_library


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def sample_operations():
    builder = SpecBuilder("ops")
    a = builder.input("a", 16)
    b = builder.input("b", 16)
    out = builder.output("o", 33)
    builder.add(a, b, name="add")
    builder.sub(a, b, name="sub")
    builder.mul(a, b, name="mul")
    builder.lt(a, b, name="lt")
    builder.max(a, b, name="max")
    builder.bit_and(a, b, name="and")
    builder.shl(a, 2, name="shl")
    builder.move(builder.mul(a, b, name="mul2"), dest=out, name="move")
    return builder.specification


class TestDelayUnits:
    def test_delta_matches_full_adder(self, library):
        assert library.delta_ns == pytest.approx(0.5875)

    def test_cycle_length_includes_overhead(self, library):
        assert library.cycle_length_ns(6) == pytest.approx(6 * 0.5875 + 0.05)

    def test_round_trip_conversion(self, library):
        assert library.ns_to_chained_bits(library.chained_bits_to_ns(12)) == pytest.approx(12)


class TestFunctionalUnits:
    def test_add_maps_to_adder(self, library, sample_operations):
        spec = library.functional_unit_for(sample_operations.operation_named("add"))
        assert spec.category == "adder" and spec.width == 16

    def test_comparison_maps_to_comparator(self, library, sample_operations):
        spec = library.functional_unit_for(sample_operations.operation_named("lt"))
        assert spec.category == "comparator"

    def test_max_maps_to_maxmin(self, library, sample_operations):
        assert library.functional_unit_for(sample_operations.operation_named("max")).category == "maxmin"

    def test_mul_maps_to_multiplier(self, library, sample_operations):
        assert library.functional_unit_for(sample_operations.operation_named("mul")).category == "multiplier"

    def test_glue_maps_to_none(self, library, sample_operations):
        assert library.functional_unit_for(sample_operations.operation_named("and")) is None
        assert library.functional_unit_for(sample_operations.operation_named("shl")) is None
        assert library.functional_unit_for(sample_operations.operation_named("move")) is None

    def test_unit_areas_ordered(self, library, sample_operations):
        adder = library.functional_unit_for(sample_operations.operation_named("add"))
        comparator = library.functional_unit_for(sample_operations.operation_named("lt"))
        maxmin = library.functional_unit_for(sample_operations.operation_named("max"))
        multiplier = library.functional_unit_for(sample_operations.operation_named("mul"))
        areas = [
            library.functional_unit_area(unit)
            for unit in (adder, comparator, maxmin, multiplier)
        ]
        assert areas[0] < areas[1] < areas[2] < areas[3]

    def test_controller_area_linear(self, library):
        small = library.controller_area(3, 10)
        bigger_states = library.controller_area(6, 10)
        bigger_signals = library.controller_area(3, 20)
        assert bigger_states > small and bigger_signals > small

    def test_controller_rejects_negative(self, library):
        with pytest.raises(ValueError):
            library.controller_area(-1, 0)


class TestOperationTiming:
    def test_add_delay_matches_adder(self, library, sample_operations):
        assert library.operation_delay_ns(
            sample_operations.operation_named("add")
        ) == pytest.approx(9.4, abs=0.05)

    def test_glue_delay_is_zero(self, library, sample_operations):
        assert library.operation_delay_ns(sample_operations.operation_named("and")) == 0.0

    def test_chained_bits_of_add(self, library, sample_operations):
        assert library.operation_chained_bits(sample_operations.operation_named("add")) == 16

    def test_chained_bits_of_mul(self, library, sample_operations):
        assert library.operation_chained_bits(sample_operations.operation_named("mul")) == 31

    def test_chained_bits_of_glue(self, library, sample_operations):
        assert library.operation_chained_bits(sample_operations.operation_named("shl")) == 0

    def test_chained_bits_of_maxmin(self, library, sample_operations):
        assert library.operation_chained_bits(sample_operations.operation_named("max")) == 17


class TestVariants:
    def test_with_adder_style_returns_new_library(self, library):
        variant = library.with_adder_style(AdderStyle.CARRY_LOOKAHEAD)
        assert variant is not library
        assert variant.adder_style is AdderStyle.CARRY_LOOKAHEAD
        assert library.adder_style is AdderStyle.RIPPLE_CARRY

    def test_with_multiplier_style(self, library):
        variant = library.with_multiplier_style(MultiplierStyle.WALLACE)
        assert variant.multiplier_style is MultiplierStyle.WALLACE

    def test_faster_adder_changes_operation_delay(self, sample_operations):
        ripple = default_library()
        lookahead = ripple.with_adder_style(AdderStyle.CARRY_LOOKAHEAD)
        operation = sample_operations.operation_named("add")
        assert lookahead.operation_delay_ns(operation) < ripple.operation_delay_ns(operation)
