"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-build-isolation --no-use-pep517`` works on
offline machines that lack the ``wheel`` package (the CI container used for
the reproduction is one of them).
"""

from setuptools import setup

setup()
