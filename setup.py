"""Setuptools configuration.

Kept as an executable ``setup.py`` (rather than ``pyproject.toml``) so that
``pip install -e . --no-build-isolation --no-use-pep517`` works on offline
machines that lack the ``wheel`` package (the CI container used for the
reproduction is one of them).
"""

from setuptools import find_packages, setup

setup(
    name="repro-ruiz-sautua-date2005",
    version="1.2.0",
    description=(
        "Reproduction of Ruiz-Sautua et al. (DATE 2005): behavioural "
        "transformation to improve circuit performance in high-level synthesis"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    extras_require={
        # Optional numpy plane backend of repro.engine: `pip install
        # repro[fast]`.  The core stays dependency-free; without numpy the
        # engine runs on the bit-identical big-int backend.
        "fast": ["numpy"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.api.cli:main",
        ],
    },
)
