"""The worked example of Fig. 3 of the paper.

Fig. 3 a shows a dataflow graph with four 6-bit additions (B, C, D, E), three
8-bit additions (F, G, H) and one 5-bit addition (A), where B feeds C, C feeds
E, and F and G feed H.  Its key numbers, reproduced by the tests:

* the B-C-E path takes 8 chained 1-bit additions (rippling effect),
* the critical path is F-H / G-H with 9 chained 1-bit additions,
* for a latency of 3 cycles the estimated budget is 3 chained bits per cycle,
* operation F fragments into F2..0 / F5..3 / F7..6 and operation B into
  B1..0 / B2 / B4..3 / B5,
* the optimized implementation is reported 62% faster with 28% less area
  (Fig. 3 h).
"""

from __future__ import annotations

from ..ir.builder import SpecBuilder
from ..ir.spec import Specification


def fig3_example() -> Specification:
    """The eight-addition DFG of Fig. 3 a."""
    builder = SpecBuilder("fig3")
    # Primary inputs: two per source operation.
    in_a0 = builder.input("IA0", 5)
    in_a1 = builder.input("IA1", 5)
    in_b0 = builder.input("IB0", 6)
    in_b1 = builder.input("IB1", 6)
    in_c1 = builder.input("IC1", 6)
    in_d0 = builder.input("ID0", 6)
    in_d1 = builder.input("ID1", 6)
    in_e1 = builder.input("IE1", 6)
    in_f0 = builder.input("IF0", 8)
    in_f1 = builder.input("IF1", 8)
    in_g0 = builder.input("IG0", 8)
    in_g1 = builder.input("IG1", 8)
    out_a = builder.output("OA", 5)
    out_d = builder.output("OD", 6)
    out_e = builder.output("OE", 6)
    out_h = builder.output("OH", 8)

    builder.add(in_a0, in_a1, dest=out_a, name="A")
    b = builder.add(in_b0, in_b1, name="B")
    c = builder.add(b, in_c1, name="C")
    builder.add(c, in_e1, dest=out_e, name="E")
    builder.add(in_d0, in_d1, dest=out_d, name="D")
    f = builder.add(in_f0, in_f1, name="F")
    g = builder.add(in_g0, in_g1, name="G")
    builder.add(f, g, dest=out_h, name="H")
    return builder.build()


#: The per-operation widths of Fig. 3 a, used by tests as a cross-check.
FIG3_WIDTHS = {
    "A": 5,
    "B": 6,
    "C": 6,
    "D": 6,
    "E": 6,
    "F": 8,
    "G": 8,
    "H": 8,
}

#: Reference values read off the paper's Fig. 3 text.
FIG3_CRITICAL_PATH_BITS = 9
FIG3_BCE_PATH_BITS = 8
FIG3_LATENCY = 3
FIG3_CYCLE_BUDGET = 3
