"""Benchmark specifications used by the experiments.

* :mod:`~repro.workloads.motivational` -- Fig. 1 a and parametric chains/trees;
* :mod:`~repro.workloads.fig3` -- the worked example of Fig. 3;
* :mod:`~repro.workloads.classical` -- Table II's classical HLS benchmarks
  (elliptic, diffeq, iir4, fir2);
* :mod:`~repro.workloads.adpcm` -- Table III's ADPCM G.721 decoder modules;
* :mod:`~repro.workloads.generator` -- random DFGs for property tests.
"""

from .adpcm import (
    ADPCM_MODULES,
    TABLE3_LATENCIES,
    inverse_adaptive_quantizer,
    output_pcm_and_sync,
    tone_transition_detector,
)
from .classical import (
    CLASSICAL_BENCHMARKS,
    TABLE2_LATENCIES,
    diffeq,
    elliptic,
    fir2,
    iir4,
)
from .fig3 import (
    FIG3_BCE_PATH_BITS,
    FIG3_CRITICAL_PATH_BITS,
    FIG3_CYCLE_BUDGET,
    FIG3_LATENCY,
    FIG3_WIDTHS,
    fig3_example,
)
from .generator import GeneratorConfig, random_specification, random_suite
from .motivational import addition_chain, addition_tree, motivational_example

#: Every named workload of the repository, for discovery by harnesses.
ALL_WORKLOADS = {
    "motivational": motivational_example,
    "fig3": fig3_example,
    "elliptic": elliptic,
    "diffeq": diffeq,
    "iir4": iir4,
    "fir2": fir2,
    "adpcm_iaq": inverse_adaptive_quantizer,
    "adpcm_ttd": tone_transition_detector,
    "adpcm_opfc_sca": output_pcm_and_sync,
}

__all__ = [
    "ADPCM_MODULES",
    "ALL_WORKLOADS",
    "CLASSICAL_BENCHMARKS",
    "FIG3_BCE_PATH_BITS",
    "FIG3_CRITICAL_PATH_BITS",
    "FIG3_CYCLE_BUDGET",
    "FIG3_LATENCY",
    "FIG3_WIDTHS",
    "GeneratorConfig",
    "TABLE2_LATENCIES",
    "TABLE3_LATENCIES",
    "addition_chain",
    "addition_tree",
    "diffeq",
    "elliptic",
    "fig3_example",
    "fir2",
    "iir4",
    "inverse_adaptive_quantizer",
    "motivational_example",
    "output_pcm_and_sync",
    "random_specification",
    "random_suite",
    "tone_transition_detector",
]
