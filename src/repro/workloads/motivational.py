"""The paper's motivational example (Fig. 1 a) and generalisations of it.

The motivational example is a chain of three data-dependent 16-bit additions::

    C := A + B;   E := C + D;   G <= E + F;

Its conventional schedule needs a 9.4 ns cycle (one 16-bit ripple-carry
addition); the fully chained schedule needs a single 9.57 ns cycle and three
adders; the transformed specification runs in three 3.55 ns cycles on three
6-bit adders (Table I).  :func:`addition_chain` generalises the example to an
arbitrary chain length and width, which the latency-sweep experiment (Fig. 4)
and several property tests use.
"""

from __future__ import annotations

from ..ir.builder import SpecBuilder
from ..ir.spec import Specification


def motivational_example(width: int = 16) -> Specification:
    """The three-addition chain of Fig. 1 a."""
    builder = SpecBuilder("example")
    a = builder.input("A", width)
    b = builder.input("B", width)
    d = builder.input("D", width)
    f = builder.input("F", width)
    g = builder.output("G", width)
    c = builder.add(a, b, name="add_C")
    e = builder.add(c, d, name="add_E")
    builder.add(e, f, dest=g, name="add_G")
    return builder.build()


def addition_chain(length: int, width: int = 16, name: str = "addition_chain") -> Specification:
    """A chain of *length* data-dependent additions of the given width.

    ``addition_chain(3, 16)`` is structurally identical to
    :func:`motivational_example`; longer chains give the latency sweep of
    Fig. 4 enough depth to show the divergence between the original and the
    optimized cycle lengths as the latency grows.
    """
    if length <= 0:
        raise ValueError(f"chain length must be positive, got {length}")
    builder = SpecBuilder(f"{name}_{length}x{width}")
    accumulator = builder.input("IN0", width)
    result = builder.output("OUT", width)
    for index in range(length):
        operand = builder.input(f"IN{index + 1}", width)
        if index == length - 1:
            builder.add(accumulator, operand, dest=result, name=f"add_{index}")
        else:
            accumulator = builder.add(accumulator, operand, name=f"add_{index}")
    return builder.build()


def addition_tree(leaves: int, width: int = 16, name: str = "addition_tree") -> Specification:
    """A balanced reduction tree of additions (a high-parallelism contrast case).

    Trees have much shorter critical paths than chains for the same operation
    count, so they exercise the transformation in the regime where fewer
    operations need to be fragmented.
    """
    if leaves < 2:
        raise ValueError(f"an addition tree needs at least 2 leaves, got {leaves}")
    builder = SpecBuilder(f"{name}_{leaves}x{width}")
    level = [builder.input(f"IN{i}", width) for i in range(leaves)]
    result = builder.output("OUT", width)
    counter = 0
    while len(level) > 1:
        next_level = []
        for index in range(0, len(level) - 1, 2):
            is_last = len(level) == 2
            if is_last:
                builder.add(level[index], level[index + 1], dest=result, name=f"add_{counter}")
            else:
                next_level.append(
                    builder.add(level[index], level[index + 1], name=f"add_{counter}")
                )
            counter += 1
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        if len(level) == 2:
            level = []
            break
        level = next_level
    return builder.build()
