"""ADPCM decoder modules (CCITT Recommendation G.721), used in Table III.

The paper synthesizes four modules of the G.721 ADPCM decoding algorithm:
the Inverse Adaptive Quantizer (IAQ), the Tone & Transition Detector (TTD),
the Output PCM Format Conversion (OPFC) and the Synchronous Coding Adjustment
(SCA); OPFC and SCA are synthesized together.

The reference C sources of the recommendation are not redistributable, so the
dataflow graphs below are reconstructed from the published structure of the
algorithm blocks (the signal names follow the recommendation): fixed-point
additive/compare-heavy kernels of the documented widths, with shifts and
masking as glue logic.  The reconstructions preserve what drives the paper's
result -- the operation mix (additions, subtractions, comparisons), the
operand widths (11 to 16 bits) and the dependency depth -- while the exact
table lookups of the recommendation are replaced by small linear fixed-point
approximations, which a presynthesis transformation sees as the same kind of
additive kernel.  This substitution is recorded in DESIGN.md.

Latencies used by Table III: IAQ at 3 cycles, TTD at 5, OPFC+SCA at 12 (the
latencies Behavioral Compiler selected for the conventional schedules in the
paper).
"""

from __future__ import annotations

from typing import Dict

from ..ir.builder import SpecBuilder
from ..ir.spec import Specification


def inverse_adaptive_quantizer(width: int = 16) -> Specification:
    """IAQ: reconstruct the quantized difference signal DQ from I and Y.

    Structure (G.721 block RECONST + ADDA + ANTILOG):  the log-domain value
    ``DQLN`` is obtained from the received code ``I`` (linear approximation of
    the inverse quantizer table), added to the scale factor ``Y >> 2``, and the
    antilog is approximated with a mantissa addition and a shift; the sign is
    applied with a final conditional negation (an addition after kernel
    extraction).
    """
    builder = SpecBuilder("adpcm_iaq")
    code = builder.input("I", 4)
    scale = builder.input("Y", 13)
    dq = builder.output("DQ", width)

    # RECONST: DQLN ~= a*I + b (linear fit of the quantizer table, 12 bits).
    slope = builder.constant(409, 10)
    offset = builder.constant(1865, 12)
    scaled_code = builder.mul(code, slope, name="iaq_mul_tab", width=12)
    dqln = builder.add(scaled_code, offset, name="iaq_add_tab", width=12)

    # ADDA: DQL = DQLN + (Y >> 2).
    y_scaled = builder.shr(scale, 2, name="iaq_shr_y")
    dql = builder.add(dqln, y_scaled, name="iaq_add_dql", width=12)

    # ANTILOG: DQ = (1 + mantissa) << exponent, approximated with an addition
    # of the implicit leading one followed by a fixed normalising shift.
    mantissa = builder.bit_and(dql, builder.constant(0x7F, 7), name="iaq_and_man", width=7)
    implicit_one = builder.constant(128, 8)
    magnitude = builder.add(mantissa, implicit_one, name="iaq_add_man", width=width)
    shifted = builder.shl(magnitude, 3, name="iaq_shl_mag", width=width)

    # Sign handling: DQ = SIGN ? -magnitude : magnitude.
    sign = builder.gt(dql, builder.constant(2048, 12), name="iaq_cmp_sign")
    negated = builder.neg(shifted, name="iaq_neg", width=width)
    builder.select(sign, negated, shifted, dest=dq, name="iaq_sel_sign", width=width)
    return builder.build()


def tone_transition_detector(width: int = 16) -> Specification:
    """TTD: partially banded tone and transition detection (blocks TONE + TRANS).

    ``TDP`` is set when the partially reconstructed signal indicates a tone
    (``A2P < -0.71875`` in the recommendation, a comparison against a
    constant); the transition detector compares the magnitude of ``DQ``
    against a threshold derived from ``YL`` (additions, shifts and a final
    comparison).
    """
    builder = SpecBuilder("adpcm_ttd")
    a2p = builder.input("A2P", width, signed=True)
    dq = builder.input("DQ", width)
    yl = builder.input("YL", width)
    tdp = builder.output("TDP", 1)
    tr = builder.output("TR", 1)

    # TONE: TDP = 1 when A2P < -0.71875 (Q15 constant -23552).
    threshold = builder.constant(-23552, width, signed=True)
    builder.lt(a2p, threshold, dest=tdp, name="ttd_cmp_tone")

    # TRANS: TR = 1 when TDP and |DQ| > 24 + (YL >> 5)  (thresholding of the
    # quantized difference magnitude against the slow scale factor).
    dq_mag = builder.bit_and(dq, builder.constant((1 << (width - 1)) - 1, width - 1),
                             name="ttd_and_mag", width=width)
    yl_scaled = builder.shr(yl, 5, name="ttd_shr_yl")
    base = builder.constant(24, 6)
    threshold2 = builder.add(yl_scaled, base, name="ttd_add_thr", width=width)
    scaled_threshold = builder.shl(threshold2, 1, name="ttd_shl_thr", width=width)
    exceeds = builder.gt(dq_mag, scaled_threshold, name="ttd_cmp_mag")
    tone_again = builder.lt(a2p, threshold, name="ttd_cmp_tone2")
    builder.bit_and(exceeds, tone_again, dest=tr, name="ttd_and_tr", width=1)
    return builder.build()


def output_pcm_and_sync(width: int = 14) -> Specification:
    """OPFC + SCA: output PCM format conversion and synchronous coding adjustment.

    The reconstructed signal ``SR`` is compressed to log-PCM (segment search by
    repeated comparisons against segment boundaries plus a mantissa
    subtraction), and the synchronous coding adjustment re-quantizes the
    compressed value and compares it with the received code to decide whether
    to step the PCM value up or down (a chain of comparisons, additions and
    subtractions).  This is the deepest of the three module groups, which is
    why the paper synthesizes it at latency 12.
    """
    builder = SpecBuilder("adpcm_opfc_sca")
    sr = builder.input("SR", width)
    se = builder.input("SE", width)
    y = builder.input("Y", 13)
    i_code = builder.input("I", 4)
    sp = builder.output("SP", 8)
    sd = builder.output("SD", 8)

    # --- OPFC: segment search over the compression boundaries -------------
    seg1 = builder.constant(31, 6)
    seg2 = builder.constant(95, 7)
    seg3 = builder.constant(223, 8)
    seg4 = builder.constant(479, 9)
    in_seg1 = builder.le(sr, seg1, name="opfc_cmp_s1")
    in_seg2 = builder.le(sr, seg2, name="opfc_cmp_s2")
    in_seg3 = builder.le(sr, seg3, name="opfc_cmp_s3")
    in_seg4 = builder.le(sr, seg4, name="opfc_cmp_s4")
    segment_low = builder.add(in_seg1, in_seg2, name="opfc_add_seg_a", width=3)
    segment_high = builder.add(in_seg3, in_seg4, name="opfc_add_seg_b", width=3)
    segment = builder.add(segment_low, segment_high, name="opfc_add_seg", width=3)

    # Mantissa: subtract the segment base and keep four bits.
    base = builder.mul(segment, builder.constant(32, 6), name="opfc_mul_base", width=width)
    mantissa_full = builder.sub(sr, base, name="opfc_sub_base", width=width)
    mantissa = builder.shr(mantissa_full, 1, name="opfc_shr_man")
    segment_bits = builder.shl(segment, 4, name="opfc_shl_seg", width=7)
    builder.add(segment_bits, mantissa, dest=sp, name="opfc_add_sp", width=8)

    # --- SCA: re-quantize SP and compare against the received code --------
    dx = builder.sub(sr, se, name="sca_sub_dx", width=width)
    y_scaled = builder.shr(y, 2, name="sca_shr_y")
    dlx = builder.add(dx, y_scaled, name="sca_add_dlx", width=width)
    is_low = builder.lt(dlx, builder.constant(261, 10), name="sca_cmp_low")
    is_high = builder.gt(dlx, builder.constant(1122, 11), name="sca_cmp_high")
    code_ext = builder.add(i_code, builder.constant(0, 1), name="sca_ext_code", width=8)
    sp_plus = builder.add(code_ext, builder.constant(1, 2), name="sca_add_up", width=8)
    sp_minus = builder.sub(code_ext, builder.constant(1, 2), name="sca_sub_down", width=8)
    stepped_up = builder.select(is_low, sp_plus, code_ext, name="sca_sel_up", width=8)
    builder.select(is_high, sp_minus, stepped_up, dest=sd, name="sca_sel_down", width=8)
    return builder.build()


#: Latencies used by Table III (as selected by Behavioral Compiler in the paper).
TABLE3_LATENCIES: Dict[str, int] = {
    "iaq": 3,
    "ttd": 5,
    "opfc_sca": 12,
}

#: Factory registry used by the benchmark harnesses.
ADPCM_MODULES = {
    "iaq": inverse_adaptive_quantizer,
    "ttd": tone_transition_detector,
    "opfc_sca": output_pcm_and_sync,
}
