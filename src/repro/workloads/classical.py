"""Classical HLS benchmarks used in Table II of the paper.

The paper synthesizes four specifications from the 1992 UCI High-Level
Synthesis Workshop benchmark suite [Dutt 1992]: the fifth-order elliptic wave
filter (``elliptic``), the differential-equation solver (``diffeq``), a
fourth-order IIR filter (``iir4``) and a second-order FIR filter (``fir2``).
The original VHDL sources are not distributed with the paper, so the
dataflow graphs are reconstructed here from their published structure:

* **elliptic** -- the well-known 34-operation wave filter (26 additions and
  8 multiplications by constant coefficients) operating on the input sample
  and seven state variables;
* **diffeq** -- the HAL differential equation solver (the Euler step
  ``y' = y + u*dx``, ``u' = u - 3*x*u*dx - 3*y*dx``, ``x' = x + dx`` plus the
  loop-exit comparison ``x' < a``): 6 multiplications, 2 subtractions,
  2 additions and 1 comparison;
* **iir4** -- a fourth-order IIR filter realised as two cascaded direct-form
  biquad sections (9 coefficient multiplications, 8 additions/subtractions);
* **fir2** -- a second-order FIR filter (3 coefficient multiplications,
  2 additions).

All datapaths are 16 bits wide, the width conventionally used for these
benchmarks.  Coefficients are fixed-point constants, so the operative kernel
extraction strength-reduces the constant multiplications into a few shifted
additions, exactly as a synthesis tool would.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.builder import SpecBuilder
from ..ir.spec import Specification

#: Default datapath width of the classical benchmarks.
DEFAULT_WIDTH = 16

#: Fixed-point filter coefficients (arbitrary but fixed, so runs are
#: reproducible and constant-multiplier strength reduction has work to do).
ELLIPTIC_COEFFICIENTS = (29, 83, 117, 21, 67, 45, 99, 53)
IIR4_COEFFICIENTS = {
    "b10": 77, "b11": 41, "b12": 19, "a11": 35, "a12": 11,
    "b20": 63, "b21": 29, "a21": 47, "a22": 9,
}
FIR2_COEFFICIENTS = (37, 85, 23)


def diffeq(width: int = DEFAULT_WIDTH) -> Specification:
    """The HAL differential-equation solver (11 operations)."""
    builder = SpecBuilder("diffeq")
    x = builder.input("x", width)
    y = builder.input("y", width)
    u = builder.input("u", width)
    dx = builder.input("dx", width)
    a = builder.input("a", width)
    x1 = builder.output("x1", width)
    y1 = builder.output("y1", width)
    u1 = builder.output("u1", width)
    c = builder.output("c", 1)

    three = builder.constant(3, 3)
    # u' = u - 3*x*u*dx - 3*y*dx
    t1 = builder.mul(three, x, name="mul_3x", width=width)
    t2 = builder.mul(u, dx, name="mul_udx", width=width)
    t3 = builder.mul(t1, t2, name="mul_3xudx", width=width)
    t4 = builder.mul(three, y, name="mul_3y", width=width)
    t5 = builder.mul(t4, dx, name="mul_3ydx", width=width)
    t6 = builder.sub(u, t3, name="sub_u3xudx", width=width)
    builder.sub(t6, t5, dest=u1, name="sub_u1", width=width)
    # y' = y + u*dx
    t7 = builder.mul(u, dx, name="mul_udx2", width=width)
    builder.add(y, t7, dest=y1, name="add_y1", width=width)
    # x' = x + dx, and the loop-exit test x' < a
    x_next = builder.add(x, dx, name="add_x1", width=width)
    builder.move(x_next, dest=x1, name="move_x1")
    builder.lt(x_next, a, dest=c, name="cmp_xa")
    return builder.build()


def elliptic(
    width: int = DEFAULT_WIDTH, coefficient_ports: bool = False
) -> Specification:
    """Fifth-order elliptic wave filter (34 operations: 26 add, 8 mul).

    Reconstructed from the published structure of the UCI/Kung elliptic wave
    filter: the input sample and seven state variables feed a network of
    additions with eight coefficient multiplications on internal
    nodes, and the filter produces the output sample plus the updated state.
    The reconstruction preserves the operation counts (26 additions, 8
    coefficient multiplications), the widths and a comparable dependency depth
    (around 14 operations on the critical path).

    ``coefficient_ports=True`` turns the coefficient multiplications into full
    variable-by-variable multiplications (coefficients arriving on ports),
    which is the heavier configuration the multiplier-decomposition ablation
    uses; by default the coefficients are the fixed-point constants of the
    published filter, which the operative kernel extraction strength-reduces.
    """
    builder = SpecBuilder("elliptic")
    inp = builder.input("inp", width)
    sv = [builder.input(f"sv{i}", width) for i in range(2, 9)]
    outp = builder.output("outp", width)
    sv_out = [builder.output(f"sv{i}_n", width) for i in range(2, 9)]
    if coefficient_ports:
        c = [
            builder.input(f"c{i}", width)
            for i in range(len(ELLIPTIC_COEFFICIENTS))
        ]
    else:
        c = [
            builder.constant(coefficient, 8)
            for coefficient in ELLIPTIC_COEFFICIENTS
        ]

    # First adder column: combine the input with the stored state.
    n1 = builder.add(inp, sv[0], name="add1", width=width)
    n2 = builder.add(n1, sv[1], name="add2", width=width)
    n3 = builder.add(n2, sv[2], name="add3", width=width)
    m1 = builder.mul(n3, c[0], name="mul1", width=width)
    n4 = builder.add(m1, sv[3], name="add4", width=width)
    m2 = builder.mul(n4, c[1], name="mul2", width=width)
    n5 = builder.add(m2, sv[4], name="add5", width=width)
    n6 = builder.add(n5, n2, name="add6", width=width)

    # Second column: the two centre multiplications of the lattice.
    m3 = builder.mul(n6, c[2], name="mul3", width=width)
    n7 = builder.add(m3, sv[5], name="add7", width=width)
    n8 = builder.add(n7, n5, name="add8", width=width)
    m4 = builder.mul(n8, c[3], name="mul4", width=width)
    n9 = builder.add(m4, n7, name="add9", width=width)
    n10 = builder.add(n9, sv[6], name="add10", width=width)

    # Third column: feedback towards the state updates.
    m5 = builder.mul(n10, c[4], name="mul5", width=width)
    n11 = builder.add(m5, n9, name="add11", width=width)
    n12 = builder.add(n11, n6, name="add12", width=width)
    m6 = builder.mul(n12, c[5], name="mul6", width=width)
    n13 = builder.add(m6, n11, name="add13", width=width)
    n14 = builder.add(n13, n3, name="add14", width=width)

    # Fourth column: output section.
    m7 = builder.mul(n14, c[6], name="mul7", width=width)
    n15 = builder.add(m7, n13, name="add15", width=width)
    n16 = builder.add(n15, n1, name="add16", width=width)
    m8 = builder.mul(n16, c[7], name="mul8", width=width)
    n17 = builder.add(m8, n15, name="add17", width=width)
    n18 = builder.add(n17, n14, name="add18", width=width)
    builder.add(n18, n16, dest=outp, name="add19", width=width)

    # State updates: one addition per state variable (seven additions).
    builder.add(n1, n17, dest=sv_out[0], name="add_sv2", width=width)
    builder.add(n2, n15, dest=sv_out[1], name="add_sv3", width=width)
    builder.add(n4, n13, dest=sv_out[2], name="add_sv4", width=width)
    builder.add(n5, n11, dest=sv_out[3], name="add_sv5", width=width)
    builder.add(n7, n10, dest=sv_out[4], name="add_sv6", width=width)
    builder.add(n9, n18, dest=sv_out[5], name="add_sv7", width=width)
    builder.add(n10, n12, dest=sv_out[6], name="add_sv8", width=width)
    return builder.build()


def _biquad(
    builder: SpecBuilder,
    x,
    w1,
    w2,
    coefficients: Dict[str, object],
    prefix: str,
    width: int,
):
    """One direct-form-II biquad section: w = x - a1*w1 - a2*w2, y = b0*w + b1*w1 + b2*w2."""
    a1 = coefficients[f"a{prefix}1"]
    a2 = coefficients[f"a{prefix}2"]
    b0 = coefficients[f"b{prefix}0"]
    b1 = coefficients[f"b{prefix}1"]
    t1 = builder.mul(w1, a1, name=f"mul_a{prefix}1", width=width)
    t2 = builder.mul(w2, a2, name=f"mul_a{prefix}2", width=width)
    t3 = builder.sub(x, t1, name=f"sub_{prefix}a", width=width)
    w = builder.sub(t3, t2, name=f"sub_{prefix}b", width=width)
    t4 = builder.mul(w, b0, name=f"mul_b{prefix}0", width=width)
    t5 = builder.mul(w1, b1, name=f"mul_b{prefix}1", width=width)
    y_partial = builder.add(t4, t5, name=f"add_{prefix}a", width=width)
    return w, y_partial


def iir4(
    width: int = DEFAULT_WIDTH, coefficient_ports: bool = False
) -> Specification:
    """Fourth-order IIR filter: two cascaded direct-form-II biquad sections.

    As for :func:`elliptic`, coefficients are fixed-point constants by default
    and become input ports (full multiplications) with
    ``coefficient_ports=True``.
    """
    builder = SpecBuilder("iir4")
    x = builder.input("x", width)
    w11 = builder.input("w11", width)
    w12 = builder.input("w12", width)
    w21 = builder.input("w21", width)
    w22 = builder.input("w22", width)
    y = builder.output("y", width)
    w1_new = builder.output("w1_new", width)
    w2_new = builder.output("w2_new", width)

    if coefficient_ports:
        coefficients = {
            name: builder.input(name, 8) for name in sorted(IIR4_COEFFICIENTS)
        }
    else:
        coefficients = {
            name: builder.constant(value, 8)
            for name, value in IIR4_COEFFICIENTS.items()
        }
    w1, y1_partial = _biquad(builder, x, w11, w12, coefficients, "1", width)
    b12 = coefficients["b12"]
    t = builder.mul(w12, b12, name="mul_b12", width=width)
    stage1 = builder.add(y1_partial, t, name="add_stage1", width=width)

    w2, y2_partial = _biquad(builder, stage1, w21, w22, coefficients, "2", width)
    builder.add(y2_partial, w22, dest=y, name="add_out", width=width)
    builder.move(w1, dest=w1_new, name="move_w1")
    builder.move(w2, dest=w2_new, name="move_w2")
    return builder.build()


def fir2(width: int = DEFAULT_WIDTH) -> Specification:
    """Second-order FIR filter: ``y = c0*x0 + c1*x1 + c2*x2``."""
    builder = SpecBuilder("fir2")
    x0 = builder.input("x0", width)
    x1 = builder.input("x1", width)
    x2 = builder.input("x2", width)
    y = builder.output("y", width)
    c0 = builder.constant(FIR2_COEFFICIENTS[0], 8)
    c1 = builder.constant(FIR2_COEFFICIENTS[1], 8)
    c2 = builder.constant(FIR2_COEFFICIENTS[2], 8)
    t0 = builder.mul(x0, c0, name="mul_c0", width=width)
    t1 = builder.mul(x1, c1, name="mul_c1", width=width)
    t2 = builder.mul(x2, c2, name="mul_c2", width=width)
    partial = builder.add(t0, t1, name="add_p0", width=width)
    builder.add(partial, t2, dest=y, name="add_p1", width=width)
    return builder.build()


#: Latencies Table II evaluates each classical benchmark at.
TABLE2_LATENCIES: Dict[str, List[int]] = {
    "elliptic": [11, 6, 4],
    "diffeq": [6, 5, 4],
    "iir4": [6, 5],
    "fir2": [5, 3],
}

#: Factory registry used by the benchmark harnesses.
CLASSICAL_BENCHMARKS = {
    "elliptic": elliptic,
    "diffeq": diffeq,
    "iir4": iir4,
    "fir2": fir2,
}
