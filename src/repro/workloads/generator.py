"""Random dataflow-graph generator.

Property-based tests and the scalability benchmarks need a supply of
well-formed behavioural specifications with controllable size, width mix and
dependency depth.  The generator builds layered DAGs of additive operations:
each operation draws its operands from earlier layers (or the primary
inputs), so the result is always a valid single-assignment specification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..ir.builder import SpecBuilder
from ..ir.operations import OpKind
from ..ir.spec import Specification


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape of the random specifications."""

    operation_count: int = 12
    minimum_width: int = 4
    maximum_width: int = 16
    input_count: int = 4
    #: probability of drawing each operation kind (renormalised internally).
    add_weight: float = 0.6
    sub_weight: float = 0.2
    mul_weight: float = 0.0
    compare_weight: float = 0.1
    maxmin_weight: float = 0.1
    #: probability that an operand comes from a previous result rather than an
    #: input port (controls the dependency depth).
    chaining_probability: float = 0.6

    def validate(self) -> None:
        if self.operation_count <= 0:
            raise ValueError("operation_count must be positive")
        if not (1 <= self.minimum_width <= self.maximum_width):
            raise ValueError("width bounds must satisfy 1 <= min <= max")
        if self.input_count <= 0:
            raise ValueError("input_count must be positive")


def random_specification(
    seed: int,
    config: Optional[GeneratorConfig] = None,
    name: Optional[str] = None,
) -> Specification:
    """Generate a random, valid, additive-heavy specification."""
    config = config or GeneratorConfig()
    config.validate()
    rng = random.Random(seed)
    builder = SpecBuilder(name or f"random_{seed}")

    inputs = [
        builder.input(f"in{i}", rng.randint(config.minimum_width, config.maximum_width))
        for i in range(config.input_count)
    ]
    produced = []

    kinds = [
        (OpKind.ADD, config.add_weight),
        (OpKind.SUB, config.sub_weight),
        (OpKind.MUL, config.mul_weight),
        (OpKind.LT, config.compare_weight),
        (OpKind.MAX, config.maxmin_weight),
    ]
    total_weight = sum(weight for _kind, weight in kinds) or 1.0

    def pick_kind() -> OpKind:
        target = rng.uniform(0, total_weight)
        accumulated = 0.0
        for kind, weight in kinds:
            accumulated += weight
            if target <= accumulated:
                return kind
        return OpKind.ADD

    def pick_operand():
        if produced and rng.random() < config.chaining_probability:
            return rng.choice(produced)
        return rng.choice(inputs)

    for index in range(config.operation_count):
        kind = pick_kind()
        left = pick_operand()
        right = pick_operand()
        width = rng.randint(config.minimum_width, config.maximum_width)
        if kind is OpKind.LT:
            result = builder.binary(kind, left, right, name=f"op{index}")
        elif kind is OpKind.MUL:
            result = builder.binary(
                kind, left, right, name=f"op{index}",
                width=min(left.width + right.width, config.maximum_width * 2),
            )
        else:
            result = builder.binary(
                kind, left, right, name=f"op{index}",
                width=max(width, 1),
            )
        produced.append(result)

    # Expose the sink results (values nobody consumes) as outputs so that the
    # specification is valid and nothing is dead code.
    consumed = set()
    spec = builder.specification
    for operation in spec.operations:
        for operand in operation.all_read_operands():
            if operand.is_variable:
                consumed.add(operand.variable.uid)
    sink_index = 0
    for variable in list(spec.internals()):
        if variable.uid in consumed:
            continue
        output = builder.output(f"out{sink_index}", variable.width)
        builder.move(variable, dest=output, name=f"expose{sink_index}")
        sink_index += 1
    if sink_index == 0:
        last = produced[-1]
        output = builder.output("out0", last.width)
        builder.move(last, dest=output, name="expose0")
    return builder.build()


def random_suite(
    count: int, seed: int = 2005, config: Optional[GeneratorConfig] = None
) -> List[Specification]:
    """A reproducible list of random specifications."""
    return [random_specification(seed + index, config) for index in range(count)]
