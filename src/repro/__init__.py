"""repro -- reproduction of "Behavioural Transformation to Improve Circuit
Performance in High-Level Synthesis" (Ruiz-Sautua et al., DATE 2005).

The package is organised in layers:

* :mod:`repro.ir` -- behavioural intermediate representation (types, values,
  operations, specifications, dataflow graphs, parser, validation);
* :mod:`repro.techlib` -- gate-level area/delay models replacing the Synopsys
  library used in the paper;
* :mod:`repro.core` -- the paper's contribution: operative kernel extraction,
  clock-cycle estimation and bit-level fragmentation of operations;
* :mod:`repro.hls` -- a conventional HLS substrate (scheduling, allocation,
  binding, controller and datapath assembly) replacing Synopsys Behavioral
  Compiler;
* :mod:`repro.simulation` -- a bit-accurate interpreter and equivalence
  checker used as the functional oracle;
* :mod:`repro.rtl` -- bit-level netlists and event-driven simulation of adder
  structures, validating the chained-bit delay model;
* :mod:`repro.workloads` -- the benchmark specifications of the paper's
  evaluation (motivational example, Fig. 3 DFG, classical HLS benchmarks,
  ADPCM G.721 decoder modules) plus a random DFG generator;
* :mod:`repro.analysis` -- area/timing reports, comparison tables and the
  latency sweep behind Fig. 4.

Quick start::

    from repro import transform, synthesize, default_library
    from repro.workloads import motivational_example

    spec = motivational_example()
    result = transform(spec, latency=3)
    original = synthesize(spec, latency=3)
    optimized = synthesize(result.transformed, latency=3,
                           chained_bits_per_cycle=result.chained_bits_per_cycle)
    print(original.cycle_length_ns, optimized.cycle_length_ns)
"""

from .core import (
    BehaviouralTransformer,
    TransformOptions,
    TransformResult,
    transform,
)
from .ir import (
    BitRange,
    OpKind,
    Operation,
    SpecBuilder,
    Specification,
    parse_specification,
)
from .simulation import assert_equivalent, check_equivalence, simulate
from .techlib import AdderStyle, TechnologyLibrary, default_library

__version__ = "1.0.0"

__all__ = [
    "AdderStyle",
    "BehaviouralTransformer",
    "BitRange",
    "OpKind",
    "Operation",
    "SpecBuilder",
    "Specification",
    "TechnologyLibrary",
    "TransformOptions",
    "TransformResult",
    "assert_equivalent",
    "check_equivalence",
    "default_library",
    "parse_specification",
    "simulate",
    "transform",
    "__version__",
]


def __getattr__(name):
    """Lazy access to the HLS layer to avoid import cycles at package load."""
    if name in ("synthesize", "SynthesisResult", "HlsFlow"):
        from . import hls

        return getattr(hls, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
