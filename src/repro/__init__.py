"""repro -- reproduction of "Behavioural Transformation to Improve Circuit
Performance in High-Level Synthesis" (Ruiz-Sautua et al., DATE 2005).

The package is organised in layers (lowest first):

* :mod:`repro.ir` -- behavioural intermediate representation (types, values,
  operations, specifications, dataflow graphs, parser, validation);
* :mod:`repro.techlib` -- gate-level area/delay models replacing the Synopsys
  library used in the paper;
* :mod:`repro.core` -- the paper's contribution: operative kernel extraction,
  clock-cycle estimation and bit-level fragmentation of operations;
* :mod:`repro.hls` -- a conventional HLS substrate (scheduling, allocation,
  binding, controller and datapath assembly) replacing Synopsys Behavioral
  Compiler;
* :mod:`repro.simulation` -- a bit-accurate interpreter and equivalence
  checker used as the functional oracle;
* :mod:`repro.rtl` -- bit-level netlists and event-driven simulation of adder
  structures, validating the chained-bit delay model;
* :mod:`repro.workloads` -- the benchmark specifications of the paper's
  evaluation (motivational example, Fig. 3 DFG, classical HLS benchmarks,
  ADPCM G.721 decoder modules) plus a random DFG generator;
* :mod:`repro.api` -- the canonical entry point: declarative
  :class:`~repro.api.FlowConfig` objects, the composable pass
  :class:`~repro.api.Pipeline`, the content-hash keyed
  :class:`~repro.api.ResultCache`, the parallel
  :class:`~repro.api.SweepEngine` and the ``python -m repro`` CLI;
* :mod:`repro.analysis` -- area/timing reports, comparison tables and the
  latency sweep behind Fig. 4, built on :mod:`repro.api`.

Quick start (pipeline API)::

    from repro import FlowConfig, Pipeline

    pipeline = Pipeline()
    original = pipeline.run(FlowConfig(latency=3, mode="conventional",
                                       workload="motivational"))
    optimized = pipeline.run(FlowConfig(latency=3, mode="fragmented",
                                        workload="motivational"))
    print(original.synthesis.cycle_length_ns,
          optimized.synthesis.cycle_length_ns)

or, from a shell::

    python -m repro run motivational --latency 3 --mode fragmented

The pre-pipeline free functions remain as thin backward-compatible wrappers::

    from repro import transform, synthesize
    from repro.workloads import motivational_example

    spec = motivational_example()
    result = transform(spec, latency=3)
    optimized = synthesize(result.transformed, latency=3, mode="fragmented",
                           chained_bits_per_cycle=result.chained_bits_per_cycle)
"""

from .core import (
    BehaviouralTransformer,
    TransformOptions,
    TransformResult,
    transform,
)
from .ir import (
    BitRange,
    OpKind,
    Operation,
    SpecBuilder,
    Specification,
    parse_specification,
)
from .simulation import assert_equivalent, check_equivalence, simulate
from .techlib import AdderStyle, TechnologyLibrary, default_library

# The HLS facade sits above core/ir/techlib; importing it eagerly is safe now
# that the api layer (below) owns the cross-layer wiring that used to force a
# lazy __getattr__ hook here.
from .hls import FlowMode, HlsFlow, SynthesisResult, synthesize

# The api layer imports every other layer, so it must come last.
from .api import (
    FlowConfig,
    Pipeline,
    ResultCache,
    RunArtifact,
    Study,
    SweepEngine,
    SweepOutcome,
    Workspace,
    builtin_study,
)

__version__ = "1.2.0"

__all__ = [
    "AdderStyle",
    "BehaviouralTransformer",
    "BitRange",
    "FlowConfig",
    "FlowMode",
    "HlsFlow",
    "OpKind",
    "Operation",
    "Pipeline",
    "ResultCache",
    "RunArtifact",
    "SpecBuilder",
    "Specification",
    "Study",
    "SweepEngine",
    "SweepOutcome",
    "Workspace",
    "SynthesisResult",
    "TechnologyLibrary",
    "TransformOptions",
    "TransformResult",
    "assert_equivalent",
    "builtin_study",
    "check_equivalence",
    "default_library",
    "parse_specification",
    "simulate",
    "synthesize",
    "transform",
    "__version__",
]
