"""Performance harness of the reproduction.

``repro.perf`` times the hot path of the flow -- the
``parse -> transform -> schedule -> time -> allocate`` pipeline stages per
workload, the Fig. 4 latency-sweep wall-clock, and the functional oracle
(batch equivalence throughput, netlist elaboration) -- over repeated runs,
and tracks the numbers in ``BENCH_sched.json`` at the repository root so
every PR can show (and CI can guard) the perf trajectory.  Each run is also
appended to the bench file's ``history`` list, so the trajectory accumulates
across PRs.

Entry points:

* :func:`repro.perf.harness.run_benchmarks` -- measure the current tree;
* :func:`repro.perf.report.write_bench` / :func:`repro.perf.report.check_regressions`
  -- persist and compare against the recorded baseline;
* ``python -m repro perf`` -- the CLI front end (``--quick`` for the CI smoke
  job, ``--max-regression`` to fail on slowdowns, ``--min-speedup`` to
  require a speedup over the recorded anchor).
"""

from .harness import (
    DEFAULT_REPEATS,
    PIPELINE_STAGES,
    VERIFY_RANDOM_VECTORS,
    run_benchmarks,
    time_check,
    time_emission,
    time_engine,
    time_faults,
    time_server,
    time_stages,
    time_study,
    time_sweep,
    time_verification,
)
from .report import (
    BENCH_FILENAME,
    HISTORY_LIMIT,
    build_bench_payload,
    check_min_speedups,
    check_regressions,
    compute_speedups,
    format_bench_text,
    history_entry,
    load_bench,
    write_bench,
)

__all__ = [
    "BENCH_FILENAME",
    "DEFAULT_REPEATS",
    "HISTORY_LIMIT",
    "PIPELINE_STAGES",
    "VERIFY_RANDOM_VECTORS",
    "build_bench_payload",
    "check_min_speedups",
    "check_regressions",
    "compute_speedups",
    "format_bench_text",
    "history_entry",
    "load_bench",
    "run_benchmarks",
    "time_check",
    "time_emission",
    "time_engine",
    "time_faults",
    "time_server",
    "time_stages",
    "time_study",
    "time_sweep",
    "time_verification",
    "write_bench",
]
