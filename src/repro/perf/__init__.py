"""Performance harness of the reproduction.

``repro.perf`` times the hot path of the flow -- the
``parse -> transform -> schedule -> time -> allocate`` pipeline stages per
workload and the Fig. 4 latency-sweep wall-clock -- over repeated runs, and
tracks the numbers in ``BENCH_sched.json`` at the repository root so every PR
can show (and CI can guard) the perf trajectory.

Entry points:

* :func:`repro.perf.harness.run_benchmarks` -- measure the current tree;
* :func:`repro.perf.report.write_bench` / :func:`repro.perf.report.check_regressions`
  -- persist and compare against the recorded baseline;
* ``python -m repro perf`` -- the CLI front end (``--quick`` for the CI smoke
  job, ``--max-regression`` to fail on slowdowns).
"""

from .harness import (
    DEFAULT_REPEATS,
    PIPELINE_STAGES,
    run_benchmarks,
    time_stages,
    time_sweep,
)
from .report import (
    BENCH_FILENAME,
    check_regressions,
    compute_speedups,
    format_bench_text,
    load_bench,
    write_bench,
)

__all__ = [
    "BENCH_FILENAME",
    "DEFAULT_REPEATS",
    "PIPELINE_STAGES",
    "check_regressions",
    "compute_speedups",
    "format_bench_text",
    "load_bench",
    "run_benchmarks",
    "time_stages",
    "time_sweep",
]
