"""Persistence and comparison of harness results (``BENCH_sched.json``).

The bench file keeps two measurement sets side by side:

* ``baseline`` -- the timings recorded when the fast-path scheduling core
  landed (or the last time ``--update-baseline`` was run); the perf
  trajectory is always expressed against it;
* ``current`` -- the latest measurement of the working tree, refreshed by
  every ``python -m repro perf`` run;

plus a derived ``speedup`` section (baseline seconds / current seconds, so
bigger is better) recomputed on every write.

The comparison helpers are deliberately tolerant: stages or sweeps present in
only one measurement set are skipped rather than treated as regressions, so
the harness can grow new benchmarks without invalidating old baselines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Canonical name of the bench file at the repository root.
BENCH_FILENAME = "BENCH_sched.json"

#: Format marker of the bench file.  Version 2 added the ``verify`` section
#: and the append-only ``history`` list.
SCHEMA_VERSION = 2

#: Oldest history entries are dropped beyond this length.
HISTORY_LIMIT = 50


def _flatten(measurement: Optional[Dict]) -> Dict[str, float]:
    """``{"stages": ..., "sweeps": ..., "verify": ...}`` -> flat ``{key: t}``.

    Stage keys are ``"<workload>/<stage>"``, sweep keys are
    ``"sweep/<name>"``, verification keys are ``"verify/<workload>/<metric>"``,
    emission keys are ``"emit/<workload>/<metric>"``, static-verification
    keys are ``"check/<workload>/<metric>"``, study keys are
    ``"study/<name>/<metric>"``, scheduler-search keys are
    ``"search/<workload>/<metric>"``, fault-machinery keys are
    ``"faults/<metric>"``, evaluation-core keys are ``"engine/<metric>"``
    and HTTP-service keys are ``"server/<metric>"``;
    the flat view drives both the speedup table and the regression check.
    Only seconds-valued metrics are flattened -- derived bigger-is-better
    numbers (``equivalence_vectors_per_s``) and plain counts would invert
    the regression logic, so they stay in the raw sections.
    """
    flat: Dict[str, float] = {}
    if not measurement:
        return flat
    for workload, stage_times in (measurement.get("stages") or {}).items():
        for stage, seconds in stage_times.items():
            flat[f"{workload}/{stage}"] = float(seconds)
    for name, seconds in (measurement.get("sweeps") or {}).items():
        flat[f"sweep/{name}"] = float(seconds)
    for workload, metrics in (measurement.get("verify") or {}).items():
        for metric, value in metrics.items():
            if metric.endswith("_s") and not metric.endswith("_per_s"):
                flat[f"verify/{workload}/{metric}"] = float(value)
    for workload, metrics in (measurement.get("emit") or {}).items():
        for metric, value in metrics.items():
            if metric.endswith("_s") and not metric.endswith("_per_s"):
                flat[f"emit/{workload}/{metric}"] = float(value)
    for workload, metrics in (measurement.get("check") or {}).items():
        for metric, value in metrics.items():
            if metric.endswith("_s") and not metric.endswith("_per_s"):
                flat[f"check/{workload}/{metric}"] = float(value)
    for study, metrics in (measurement.get("studies") or {}).items():
        for metric, value in metrics.items():
            if metric.endswith("_s") and not metric.endswith("_per_s"):
                flat[f"study/{study}/{metric}"] = float(value)
    for workload, metrics in (measurement.get("search") or {}).items():
        for metric, value in metrics.items():
            if metric.endswith("_s") and not metric.endswith("_per_s"):
                flat[f"search/{workload}/{metric}"] = float(value)
    for metric, value in (measurement.get("faults") or {}).items():
        if metric.endswith("_s") and not metric.endswith("_per_s"):
            flat[f"faults/{metric}"] = float(value)
    for metric, value in (measurement.get("engine") or {}).items():
        if metric.endswith("_s") and not metric.endswith("_per_s"):
            flat[f"engine/{metric}"] = float(value)
    for metric, value in (measurement.get("server") or {}).items():
        if metric.endswith("_s") and not metric.endswith("_per_s"):
            flat[f"server/{metric}"] = float(value)
    return flat


def compute_speedups(baseline: Optional[Dict], current: Optional[Dict]) -> Dict[str, float]:
    """Per-key speedup factors: baseline seconds over current seconds."""
    base = _flatten(baseline)
    cur = _flatten(current)
    speedups: Dict[str, float] = {}
    for key, base_seconds in base.items():
        current_seconds = cur.get(key)
        if current_seconds is None or current_seconds <= 0.0:
            continue
        speedups[key] = base_seconds / current_seconds
    return speedups


#: Regression complaints are suppressed while the *current* time stays under
#: this floor: sub-millisecond stages (a memo-hit transform pass runs in
#: ~10 us) double on scheduler noise alone, and a ratio gate on microseconds
#: is pure flake.  A genuine regression that matters lifts the stage back
#: over the floor and is caught by the ratio as usual.
REGRESSION_FLOOR_S = 0.0005


def check_regressions(
    baseline: Optional[Dict],
    current: Optional[Dict],
    max_regression: float,
    min_seconds: float = REGRESSION_FLOOR_S,
) -> List[str]:
    """Keys whose current time exceeds ``baseline * max_regression``.

    Returns human-readable complaint strings (empty list = no regression).
    A ``max_regression`` of 2.0 means "fail when anything got more than twice
    as slow as the recorded baseline", the CI smoke-job contract.  Keys whose
    current time is below *min_seconds* are never flagged (see
    :data:`REGRESSION_FLOOR_S`).
    """
    if max_regression <= 0:
        raise ValueError(f"max_regression must be positive, got {max_regression}")
    base = _flatten(baseline)
    cur = _flatten(current)
    complaints: List[str] = []
    for key, base_seconds in sorted(base.items()):
        current_seconds = cur.get(key)
        if current_seconds is None or base_seconds <= 0.0:
            continue
        if current_seconds < min_seconds:
            continue
        ratio = current_seconds / base_seconds
        if ratio > max_regression:
            complaints.append(
                f"{key}: {current_seconds * 1000:.2f} ms vs baseline "
                f"{base_seconds * 1000:.2f} ms ({ratio:.2f}x slower, "
                f"limit {max_regression:.2f}x)"
            )
    return complaints


def check_min_speedups(
    baseline: Optional[Dict],
    current: Dict,
    requirements: Dict[str, float],
) -> List[str]:
    """Keys whose speedup over *baseline* falls short of the required factor.

    The inverse gate of :func:`check_regressions`: ``{"adpcm_iaq/allocate":
    2.0}`` demands that the current ``allocate`` stage run at least twice as
    fast as the baseline's.  A required key missing from either measurement
    is itself a complaint -- a silently skipped gate is not a passing gate.
    Returns human-readable complaint strings (empty list = all gates met).
    """
    base = _flatten(baseline)
    cur = _flatten(current)
    complaints: List[str] = []
    for key, factor in sorted(requirements.items()):
        if factor <= 0:
            raise ValueError(f"minimum speedup for {key!r} must be positive")
        base_seconds = base.get(key)
        current_seconds = cur.get(key)
        if base_seconds is None or current_seconds is None:
            complaints.append(
                f"{key}: not present in both measurements "
                f"(baseline={'yes' if base_seconds is not None else 'no'}, "
                f"current={'yes' if current_seconds is not None else 'no'})"
            )
            continue
        if current_seconds <= 0.0:
            continue
        achieved = base_seconds / current_seconds
        if achieved < factor:
            complaints.append(
                f"{key}: {achieved:.2f}x speedup vs baseline "
                f"({current_seconds * 1000:.2f} ms vs "
                f"{base_seconds * 1000:.2f} ms), required {factor:.2f}x"
            )
    return complaints


def load_bench(path: Union[str, Path]) -> Optional[Dict]:
    """Read a bench file; ``None`` when absent or unreadable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def history_entry(current: Dict, label: Optional[str] = None) -> Dict:
    """The compact history record of one measurement run."""
    meta = current.get("meta") or {}
    entry: Dict = {
        "timestamp": meta.get("timestamp"),
        "python": meta.get("python"),
        "quick": meta.get("quick"),
        "flat": _flatten(current),
    }
    if label:
        entry["label"] = label
    return entry


def build_bench_payload(
    current: Dict,
    baseline: Optional[Dict] = None,
    existing: Optional[Dict] = None,
    label: Optional[str] = None,
) -> Dict:
    """Assemble a bench-file payload (the single source of its schema).

    ``baseline`` defaults to the baseline recorded in *existing* (the
    previously loaded bench file, if any) and falls back to ``current``
    itself -- the first run anchors the trajectory.  The run is appended to
    the inherited ``history`` list (newest last, capped at
    :data:`HISTORY_LIMIT` entries) tagged with ``label``.
    """
    if baseline is None and existing is not None:
        baseline = existing.get("baseline")
    if baseline is None:
        baseline = current
    history: List[Dict] = []
    if existing is not None and isinstance(existing.get("history"), list):
        history = list(existing["history"])
    history.append(history_entry(current, label))
    history = history[-HISTORY_LIMIT:]
    return {
        "schema": SCHEMA_VERSION,
        "paper": "conf_date_Ruiz-SautuaMMH05",
        "baseline": baseline,
        "current": current,
        "speedup": compute_speedups(baseline, current),
        "history": history,
    }


def write_bench(
    path: Union[str, Path],
    current: Dict,
    baseline: Optional[Dict] = None,
    label: Optional[str] = None,
) -> Dict:
    """Write the bench file and return the payload written.

    ``baseline`` defaults to the baseline already recorded in the file (so
    routine runs refresh ``current`` without touching the anchor), and falls
    back to ``current`` itself when the file carries none -- the first run
    after a clone anchors the trajectory.

    Every write also *appends* the run to the file's ``history`` list (see
    :func:`build_bench_payload`), so the perf trajectory accumulates across
    PRs instead of only ever holding the anchor and the latest run.
    """
    path = Path(path)
    payload = build_bench_payload(current, baseline, load_bench(path), label)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def format_bench_text(payload: Dict) -> str:
    """Readable rendering of a bench payload (the CLI's non-JSON output)."""
    baseline = payload.get("baseline")
    current = payload.get("current")
    speedups = payload.get("speedup") or compute_speedups(baseline, current)
    base = _flatten(baseline)
    cur = _flatten(current)
    keys = sorted(set(base) | set(cur))
    if not keys:
        return "(no measurements)"
    width = max(len(key) for key in keys)
    lines = [f"{'benchmark'.ljust(width)}   baseline     current   speedup"]
    for key in keys:
        base_text = f"{base[key] * 1000:9.2f}ms" if key in base else "         -"
        cur_text = f"{cur[key] * 1000:9.2f}ms" if key in cur else "         -"
        speed = speedups.get(key)
        speed_text = f"{speed:6.2f}x" if speed is not None else "      -"
        lines.append(f"{key.ljust(width)}  {base_text}  {cur_text}  {speed_text}")
    return "\n".join(lines)
