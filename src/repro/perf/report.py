"""Persistence and comparison of harness results (``BENCH_sched.json``).

The bench file keeps two measurement sets side by side:

* ``baseline`` -- the timings recorded when the fast-path scheduling core
  landed (or the last time ``--update-baseline`` was run); the perf
  trajectory is always expressed against it;
* ``current`` -- the latest measurement of the working tree, refreshed by
  every ``python -m repro perf`` run;

plus a derived ``speedup`` section (baseline seconds / current seconds, so
bigger is better) recomputed on every write.

The comparison helpers are deliberately tolerant: stages or sweeps present in
only one measurement set are skipped rather than treated as regressions, so
the harness can grow new benchmarks without invalidating old baselines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Canonical name of the bench file at the repository root.
BENCH_FILENAME = "BENCH_sched.json"

#: Format marker of the bench file.
SCHEMA_VERSION = 1


def _flatten(measurement: Optional[Dict]) -> Dict[str, float]:
    """``{"stages": {w: {s: t}}, "sweeps": {n: t}}`` -> flat ``{key: t}``.

    Stage keys are ``"<workload>/<stage>"``, sweep keys are
    ``"sweep/<name>"``; the flat view drives both the speedup table and the
    regression check.
    """
    flat: Dict[str, float] = {}
    if not measurement:
        return flat
    for workload, stage_times in (measurement.get("stages") or {}).items():
        for stage, seconds in stage_times.items():
            flat[f"{workload}/{stage}"] = float(seconds)
    for name, seconds in (measurement.get("sweeps") or {}).items():
        flat[f"sweep/{name}"] = float(seconds)
    return flat


def compute_speedups(baseline: Optional[Dict], current: Optional[Dict]) -> Dict[str, float]:
    """Per-key speedup factors: baseline seconds over current seconds."""
    base = _flatten(baseline)
    cur = _flatten(current)
    speedups: Dict[str, float] = {}
    for key, base_seconds in base.items():
        current_seconds = cur.get(key)
        if current_seconds is None or current_seconds <= 0.0:
            continue
        speedups[key] = base_seconds / current_seconds
    return speedups


def check_regressions(
    baseline: Optional[Dict],
    current: Optional[Dict],
    max_regression: float,
) -> List[str]:
    """Keys whose current time exceeds ``baseline * max_regression``.

    Returns human-readable complaint strings (empty list = no regression).
    A ``max_regression`` of 2.0 means "fail when anything got more than twice
    as slow as the recorded baseline", the CI smoke-job contract.
    """
    if max_regression <= 0:
        raise ValueError(f"max_regression must be positive, got {max_regression}")
    base = _flatten(baseline)
    cur = _flatten(current)
    complaints: List[str] = []
    for key, base_seconds in sorted(base.items()):
        current_seconds = cur.get(key)
        if current_seconds is None or base_seconds <= 0.0:
            continue
        ratio = current_seconds / base_seconds
        if ratio > max_regression:
            complaints.append(
                f"{key}: {current_seconds * 1000:.2f} ms vs baseline "
                f"{base_seconds * 1000:.2f} ms ({ratio:.2f}x slower, "
                f"limit {max_regression:.2f}x)"
            )
    return complaints


def load_bench(path: Union[str, Path]) -> Optional[Dict]:
    """Read a bench file; ``None`` when absent or unreadable."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def write_bench(
    path: Union[str, Path],
    current: Dict,
    baseline: Optional[Dict] = None,
) -> Dict:
    """Write the bench file and return the payload written.

    ``baseline`` defaults to the baseline already recorded in the file (so
    routine runs refresh ``current`` without touching the anchor), and falls
    back to ``current`` itself when the file carries none -- the first run
    after a clone anchors the trajectory.
    """
    path = Path(path)
    if baseline is None:
        existing = load_bench(path)
        if existing is not None:
            baseline = existing.get("baseline")
    if baseline is None:
        baseline = current
    payload = {
        "schema": SCHEMA_VERSION,
        "paper": "conf_date_Ruiz-SautuaMMH05",
        "baseline": baseline,
        "current": current,
        "speedup": compute_speedups(baseline, current),
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def format_bench_text(payload: Dict) -> str:
    """Readable rendering of a bench payload (the CLI's non-JSON output)."""
    baseline = payload.get("baseline")
    current = payload.get("current")
    speedups = payload.get("speedup") or compute_speedups(baseline, current)
    base = _flatten(baseline)
    cur = _flatten(current)
    keys = sorted(set(base) | set(cur))
    if not keys:
        return "(no measurements)"
    width = max(len(key) for key in keys)
    lines = [f"{'benchmark'.ljust(width)}   baseline     current   speedup"]
    for key in keys:
        base_text = f"{base[key] * 1000:9.2f}ms" if key in base else "         -"
        cur_text = f"{cur[key] * 1000:9.2f}ms" if key in cur else "         -"
        speed = speedups.get(key)
        speed_text = f"{speed:6.2f}x" if speed is not None else "      -"
        lines.append(f"{key.ljust(width)}  {base_text}  {cur_text}  {speed_text}")
    return "\n".join(lines)
