"""Stage and sweep timings of the synthesis flow.

The harness measures two families of numbers:

* **pipeline stages** -- for each benchmark workload, the elapsed time of
  every pass of the fragmented flow (``parse``, ``validate``, ``transform``,
  ``schedule``, ``time``, ``allocate``, ``report``), taken as the best of
  *repeats* runs with the result cache off so one-off interpreter noise does
  not register as a regression.  The process-level memo layers (workload
  resolution, kernel extraction, validation, graph views, library costs)
  deliberately stay warm across repeats: they are exactly the caches a
  latency sweep or DSE loop amortizes, so best-of-N records the *steady
  state* of the hot loop -- which on the pre-optimization tree (no such
  caches) equals its cold time, making the recorded before/after speedups
  a steady-state-vs-steady-state comparison;
* **sweeps** -- the serial wall-clock of Fig. 4 latency sweeps, measured two
  ways: through :func:`repro.analysis.latency_sweep` (the repository's actual
  Fig. 4 experiment -- the transform->schedule->time loop the paper's
  design-space exploration leans on), and through the full
  parse-to-report pipeline over the same config axis (``fullpipe_*`` keys),
  which additionally pays for allocation, binding and the area tables at
  every point.  Both run point-by-point on a fresh cacheless pipeline.

* **verification** -- for each benchmark workload, the elapsed time of the
  functional oracle on the transformed-vs-original pair: ``equivalence_s``
  (batch-engine :func:`repro.simulation.check_equivalence` over 100 random
  vectors plus the corner set), the derived ``equivalence_vectors_per_s``
  throughput, and ``elaborate_s`` (gate-level netlist elaboration of the
  transformed specification);

* **emission** -- for each benchmark workload, the RTL backend timings over
  a prepared (scheduled + allocated) fragmented-flow point: ``emit_s`` (the
  allocation-to-structural-RTL lowering of :func:`repro.rtl.emit.emit_design`)
  and ``rtlsim_s`` (lane-packed cycle-accurate batch simulation of the
  emitted design over the 100-vector oracle stimulus), plus the derived
  ``rtlsim_vectors_per_s`` throughput.

Two whole-stage memos need deliberate handling.  The datapath memo replays
a finished allocation for an identical schedule, and the transform phase-2/3
memo replays the fragmentation/rewrite of a (workload, latency) point:

* **stage timings** clear the datapath memo per repeat (so ``allocate``
  records allocator work over warm per-specification skeletons -- the
  steady state of a loop revisiting the point) but keep the transform memo
  warm: like ``parse`` (memoized workload resolution), the recorded
  ``transform`` time is the steady-state memo hit;
* **sweep timings** clear *both* memos per repeat
  (:func:`repro.core.transform.clear_transform_memo` +
  :func:`repro.hls.datapath.clear_datapath_memo`), so the ``fig4_*`` and
  ``fullpipe_*`` numbers pay the full transform and allocation of every
  point -- the documented "raw synthesis loop" contract, and the place a
  genuine transform regression stays visible to the CI gate.

Timings are plain ``{name: seconds}`` dictionaries so they serialize directly
into ``BENCH_sched.json`` (see :mod:`repro.perf.report`).
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.config import FlowConfig
from ..api.pipeline import Pipeline
from ..core.transform import clear_transform_memo
from ..hls.datapath import clear_datapath_memo

#: The pipeline pass names tracked per workload, in execution order.
PIPELINE_STAGES: Tuple[str, ...] = (
    "parse",
    "validate",
    "transform",
    "schedule",
    "time",
    "allocate",
    "report",
)

#: Best-of-N repetition count used when the caller does not choose one.
DEFAULT_REPEATS = 3

#: (workload, latency) points whose per-stage times the full harness records.
STAGE_POINTS: Tuple[Tuple[str, int], ...] = (
    ("motivational", 3),
    ("fig3", 3),
    ("fir2", 3),
    ("adpcm_iaq", 3),
)

#: The subset measured by ``--quick`` (the CI smoke job).
QUICK_STAGE_POINTS: Tuple[Tuple[str, int], ...] = (
    ("motivational", 3),
    ("adpcm_iaq", 3),
)

#: The latency axis of the Fig. 4 sweep.
FIG4_LATENCIES: Tuple[int, ...] = tuple(range(3, 16))

#: Named sweeps: benchmark key -> (workload, kind).  ``fig4`` entries time
#: :func:`repro.analysis.latency_sweep`; ``fullpipe`` entries time the full
#: parse-to-report pipeline over the same latency axis.
SWEEPS: Dict[str, Tuple[str, str]] = {
    "fig4_chain_3_16": ("chain:3:16", "fig4"),
    "fig4_motivational": ("motivational", "fig4"),
    "fig4_adpcm_iaq": ("adpcm_iaq", "fig4"),
    "fullpipe_chain_3_16": ("chain:3:16", "fullpipe"),
    "fullpipe_adpcm_iaq": ("adpcm_iaq", "fullpipe"),
}

#: The sweep subset measured by ``--quick``.  ``fullpipe_adpcm_iaq`` rides
#: along so the CI smoke job can gate the batched full-pipeline sweep path
#: (run_batch + paused-GC chunks) against the anchor.
QUICK_SWEEPS: Dict[str, Tuple[str, str]] = {
    "fig4_chain_3_16": ("chain:3:16", "fig4"),
    "fig4_adpcm_iaq": ("adpcm_iaq", "fig4"),
    "fullpipe_adpcm_iaq": ("adpcm_iaq", "fullpipe"),
}

#: (workload, latency) points whose RTL emission timings the full harness
#: records (fragmented flow).
EMIT_POINTS: Tuple[Tuple[str, int], ...] = (
    ("motivational", 3),
    ("adpcm_iaq", 3),
)

#: The emission subset measured by ``--quick``.
QUICK_EMIT_POINTS: Tuple[Tuple[str, int], ...] = (("motivational", 3),)

#: (workload, latency) points whose static-verification timings the full
#: harness records (fragmented flow, all four IR levels).
CHECK_POINTS: Tuple[Tuple[str, int], ...] = (
    ("motivational", 3),
    ("adpcm_iaq", 3),
)

#: The static-verification subset measured by ``--quick``.
QUICK_CHECK_POINTS: Tuple[Tuple[str, int], ...] = (("motivational", 3),)

#: Built-in studies whose workspace-run timings the full harness records
#: (cold run into a fresh workspace vs store-backed resume; see
#: :func:`time_study`).
STUDY_POINTS: Tuple[str, ...] = ("table1", "fig4-chain")

#: The study subset measured by ``--quick``.
QUICK_STUDY_POINTS: Tuple[str, ...] = ("table1",)

#: (workload, latency, mode) points whose search-scheduler timings the full
#: harness records (see :func:`time_search`).
SEARCH_POINTS: Tuple[Tuple[str, int, str], ...] = (
    ("fig3", 4, "conventional"),
    ("motivational", 3, "fragmented"),
)

#: The search subset measured by ``--quick``.
QUICK_SEARCH_POINTS: Tuple[Tuple[str, int, str], ...] = (
    ("fig3", 4, "conventional"),
)


def _sweep_configs(workload: str, latencies: Sequence[int]) -> List[FlowConfig]:
    """The Fig. 4 point list: both flows at every latency of the axis."""
    return [
        FlowConfig(latency=latency, mode=mode, workload=workload)
        for latency in latencies
        for mode in ("conventional", "fragmented")
    ]


def time_stages(
    workload: str,
    latency: int,
    repeats: int = DEFAULT_REPEATS,
    mode: str = "fragmented",
) -> Dict[str, float]:
    """Best-of-*repeats* per-stage seconds of one uncached pipeline run.

    The pipeline already clocks every pass into the artifact's
    :class:`~repro.api.artifacts.PassRecord` list; the harness reuses those
    records instead of instrumenting a second time.  ``total`` sums the
    per-stage times of the best run (best runs are picked per stage, so the
    reported total can be slightly below any single run's wall-clock).

    ``parse`` and ``transform`` record memoized steady-state hits (workload
    resolution and the phase-2/3 memo stay warm across repeats); their raw
    first-visit costs are what the ``fig4_*``/``fullpipe_*`` sweep numbers
    pay per repeat.  The datapath whole-stage memo *is* cleared per repeat,
    so ``allocate`` records allocator work over warm skeletons.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    config = FlowConfig(latency=latency, mode=mode, workload=workload)
    pipeline = Pipeline()
    best: Dict[str, float] = {}
    for _ in range(repeats):
        clear_datapath_memo()
        artifact = pipeline.run(config, use_cache=False)
        for record in artifact.passes:
            previous = best.get(record.name)
            if previous is None or record.elapsed_s < previous:
                best[record.name] = record.elapsed_s
    ordered = {stage: best[stage] for stage in PIPELINE_STAGES if stage in best}
    ordered["total"] = sum(ordered.values())
    return ordered


def time_sweep(
    workload: str,
    latencies: Sequence[int] = FIG4_LATENCIES,
    repeats: int = DEFAULT_REPEATS,
    kind: str = "fig4",
) -> float:
    """Best-of-*repeats* serial wall-clock seconds of one latency sweep.

    ``kind="fig4"`` times :func:`repro.analysis.latency_sweep` with the
    default serial engine -- the repository's Fig. 4 experiment exactly as
    the benchmarks and the CLI run it.  ``kind="fullpipe"`` times the full
    parse-to-report pipeline (allocation and area tables included) over the
    same (conventional, fragmented) config axis.  Every repeat uses a fresh
    cacheless pipeline and clears the transform and datapath whole-stage
    memos, so the number reflects the raw synthesis loop -- every point
    pays its transformation and allocation -- rather than result-cache or
    worker-pool behaviour (the parallel engine is benchmarked separately by
    the pytest-benchmark suite under ``benchmarks/``).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if kind not in ("fig4", "fullpipe"):
        raise ValueError(f"kind must be 'fig4' or 'fullpipe', got {kind!r}")
    best: Optional[float] = None
    if kind == "fig4":
        from ..analysis.sweeps import latency_sweep

        for _ in range(repeats):
            clear_transform_memo()
            clear_datapath_memo()
            started = time.perf_counter()
            latency_sweep(workload, latencies)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
    else:
        configs = _sweep_configs(workload, latencies)
        for _ in range(repeats):
            pipeline = Pipeline()
            clear_transform_memo()
            clear_datapath_memo()
            started = time.perf_counter()
            pipeline.run_batch(configs, use_cache=False)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best:
                best = elapsed
    assert best is not None
    return best


#: Random-vector count of the verification benchmark (corner vectors ride
#: along, so the checked total is slightly higher).
VERIFY_RANDOM_VECTORS = 100


def time_verification(
    workload: str,
    latency: int,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-*repeats* oracle timings of one workload.

    Measures the batch-engine equivalence check of the transformed
    specification against the original (100 random vectors + the corner
    set), its derived vectors/second throughput, and the gate-level
    elaboration of the transformed specification.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    from ..api.config import resolve_workload
    from ..core.transform import TransformOptions, transform
    from ..rtl.elaborate import elaborate
    from ..simulation.equivalence import check_equivalence

    specification = resolve_workload(workload)
    transformed = transform(
        specification, latency, TransformOptions(check_equivalence=False)
    ).transformed
    best_equivalence: Optional[float] = None
    best_elaborate: Optional[float] = None
    vectors_checked = 0
    for _ in range(repeats):
        started = time.perf_counter()
        report = check_equivalence(
            specification, transformed, random_count=VERIFY_RANDOM_VECTORS
        )
        elapsed = time.perf_counter() - started
        vectors_checked = report.vectors_checked
        if best_equivalence is None or elapsed < best_equivalence:
            best_equivalence = elapsed
        started = time.perf_counter()
        elaborate(transformed)
        elapsed = time.perf_counter() - started
        if best_elaborate is None or elapsed < best_elaborate:
            best_elaborate = elapsed
    assert best_equivalence is not None and best_elaborate is not None
    return {
        "equivalence_s": best_equivalence,
        "equivalence_vectors": float(vectors_checked),
        "equivalence_vectors_per_s": vectors_checked / best_equivalence
        if best_equivalence > 0
        else 0.0,
        "elaborate_s": best_elaborate,
    }


def time_emission(
    workload: str,
    latency: int,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-*repeats* RTL backend timings of one fragmented-flow point.

    The schedule and datapath are prepared once outside the measurement
    (their costs are the ``schedule``/``allocate`` stage timings); the
    recorded numbers isolate the backend itself: lowering the bound
    datapath into the structural design, and the lane-packed cycle-accurate
    batch simulation of the emitted netlist over the 100-vector stimulus
    (the ``emit <w> --check`` workload of the CI smoke job).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    from ..rtl.emit import emit_design
    from ..simulation.vectors import stimulus

    pipeline = Pipeline()
    artifact = pipeline.run(
        FlowConfig(latency=latency, mode="fragmented", workload=workload),
        use_cache=False,
        stop_after="allocate",
    )
    schedule = artifact.schedule
    library = artifact.library
    datapath = artifact.datapath
    vectors = stimulus(artifact.working_specification, random_count=VERIFY_RANDOM_VECTORS)
    best_emit: Optional[float] = None
    best_sim: Optional[float] = None
    design = None
    for _ in range(repeats):
        started = time.perf_counter()
        emission = emit_design(schedule, library, datapath=datapath)
        elapsed = time.perf_counter() - started
        if best_emit is None or elapsed < best_emit:
            best_emit = elapsed
        design = emission.design
        started = time.perf_counter()
        design.simulate_batch(vectors)
        elapsed = time.perf_counter() - started
        if best_sim is None or elapsed < best_sim:
            best_sim = elapsed
    assert best_emit is not None and best_sim is not None
    return {
        "emit_s": best_emit,
        "rtlsim_s": best_sim,
        "rtlsim_vectors": float(len(vectors)),
        "rtlsim_vectors_per_s": len(vectors) / best_sim if best_sim > 0 else 0.0,
    }


def time_check(
    workload: str,
    latency: int,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-*repeats* static-verification timings of one fragmented point.

    The flow runs once outside the measurement (emission included, so the
    netlist level has a subject); the recorded number isolates the checker
    suite itself: one :func:`repro.check.check_artifact` pass over all four
    IR levels, including the independent lifetime/steering recomputation and
    the lane-packed FSM walk of the emitted design.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    from ..check import check_artifact

    pipeline = Pipeline()
    artifact = pipeline.run(
        FlowConfig(latency=latency, mode="fragmented", workload=workload, emit=True),
        use_cache=False,
    )
    best: Optional[float] = None
    diagnostics = 0
    for _ in range(repeats):
        started = time.perf_counter()
        report = check_artifact(artifact)
        elapsed = time.perf_counter() - started
        diagnostics = len(report.diagnostics)
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None
    return {"check_s": best, "check_diagnostics": float(diagnostics)}


def time_search(
    workload: str,
    latency: int,
    mode: str,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, float]:
    """Best-of-*repeats* scheduler timings, deterministic versus search.

    The pipeline prepares the point outside the measurement (parse +
    transform, so the fragmented flow times the real transformed
    specification under its real budget); the recorded numbers isolate the
    scheduling stage itself: ``paper_s`` is the historical deterministic
    construction, ``search_s`` the beam/multi-start construction at the
    smoke policy (beam 2, two starts).  The search run's provenance is also
    asserted here -- search QoR worse than the deterministic baseline is a
    broken never-worse guarantee, not a slow benchmark, and must fail the
    measurement rather than record it.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    from ..hls.flow import run_schedule_with_policy
    from ..hls.scheduling.policy import SchedulerPolicy

    pipeline = Pipeline()
    artifact = pipeline.run(
        FlowConfig(latency=latency, mode=mode, workload=workload),
        stop_after="transform",
        use_cache=False,
    )
    specification = artifact.require("working_specification")
    budget = artifact.budget
    library = artifact.library
    policy = SchedulerPolicy(policy="search", beam_width=2, starts=2)
    best_paper: Optional[float] = None
    best_search: Optional[float] = None
    provenance = None
    for _ in range(repeats):
        started = time.perf_counter()
        run_schedule_with_policy(
            specification, latency, library, mode, chained_bits_per_cycle=budget
        )
        elapsed = time.perf_counter() - started
        if best_paper is None or elapsed < best_paper:
            best_paper = elapsed
        started = time.perf_counter()
        _schedule, _budget, provenance = run_schedule_with_policy(
            specification,
            latency,
            library,
            mode,
            policy=policy,
            chained_bits_per_cycle=budget,
        )
        elapsed = time.perf_counter() - started
        if best_search is None or elapsed < best_search:
            best_search = elapsed
    assert best_paper is not None and best_search is not None
    assert provenance is not None
    if (provenance.best_objective, provenance.best_area) > (
        provenance.baseline_objective,
        provenance.baseline_area,
    ):
        raise RuntimeError(
            f"search QoR regressed past the deterministic baseline on "
            f"{workload} l{latency} {mode}: "
            f"{provenance.best_objective}/{provenance.best_area} vs "
            f"{provenance.baseline_objective}/{provenance.baseline_area}"
        )
    return {
        "paper_s": best_paper,
        "search_s": best_search,
        "search_points": float(provenance.points_probed),
        "search_improved": float(provenance.improved),
    }


def time_study(name: str, repeats: int = DEFAULT_REPEATS) -> Dict[str, float]:
    """Best-of-*repeats* workspace-run timings of one built-in study.

    Two numbers per study:

    * ``cold_s`` -- :meth:`~repro.api.workspace.Workspace.run_study` into a
      fresh workspace: every point executes and persists its row (the
      transform and datapath whole-stage memos are cleared per repeat, the
      raw-synthesis-loop contract of the sweep timings);
    * ``resume_s`` -- the same study run again over the populated store:
      every point loads from disk, nothing recomputes.  This is the number
      the resumable-experiment layer sells -- regenerating a table costs
      manifest reads and row loads, not synthesis.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    import tempfile

    from ..api.study import builtin_study
    from ..api.workspace import Workspace

    study = builtin_study(name)
    best_cold: Optional[float] = None
    best_resume: Optional[float] = None
    for _ in range(repeats):
        clear_transform_memo()
        clear_datapath_memo()
        with tempfile.TemporaryDirectory(prefix="repro-perf-study-") as tmp:
            workspace = Workspace(tmp)
            started = time.perf_counter()
            result = workspace.run_study(study)
            cold = time.perf_counter() - started
            assert result.complete and result.ran == len(study)
            started = time.perf_counter()
            result = workspace.run_study(study)
            resume = time.perf_counter() - started
            assert result.complete and result.loaded == len(study)
        if best_cold is None or cold < best_cold:
            best_cold = cold
        if best_resume is None or resume < best_resume:
            best_resume = resume
    assert best_cold is not None and best_resume is not None
    return {"cold_s": best_cold, "resume_s": best_resume}


def time_faults(repeats: int = DEFAULT_REPEATS) -> Dict[str, float]:
    """Best-of-*repeats* timings of the fault-tolerance machinery.

    Three numbers:

    * ``site_noplan_s`` -- 100k no-plan fault-site probes: the fixed tax
      every production pipeline pass and workspace write pays for being
      injectable.  This is the number that must stay indistinguishable from
      zero (the hook is one global load when no plan is installed);
    * ``injected_retry_s`` -- a two-point serial sweep where one point
      raises once and is retried to success with zero backoff: the end-to-end
      cost of the failure-isolation path (claim, error row assembly, retry);
    * ``salvage_s`` -- :meth:`~repro.api.workspace.Workspace.salvage` over a
      freshly populated workspace with one corrupted row object (quarantine
      + record drop + manifest rewrite + journal compaction).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    import tempfile

    from .. import faults
    from ..api.config import FlowConfig
    from ..api.resilience import RetryPolicy
    from ..api.study import fig4_study
    from ..api.sweep import SweepEngine
    from ..api.workspace import Workspace

    best_noplan: Optional[float] = None
    best_retry: Optional[float] = None
    best_salvage: Optional[float] = None
    configs = [
        FlowConfig(latency=latency, mode="fragmented", workload="chain:3:16")
        for latency in (3, 4)
    ]
    study = fig4_study("chain:3:16", latencies=range(3, 5), name="perf-faults")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(100_000):
            faults.site("sweep.point", key="perf")
        noplan = time.perf_counter() - started

        clear_transform_memo()
        clear_datapath_memo()
        engine = SweepEngine(
            executor="serial",
            stop_after="time",
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0, jitter_s=0.0),
        )
        plan = faults.FaultPlan(
            [faults.FaultRule("sweep.point", "raise", times=1)]
        )
        with faults.injecting(plan):
            started = time.perf_counter()
            outcomes = engine.run(configs)
            retry = time.perf_counter() - started
        assert all(outcome.ok for outcome in outcomes)
        assert plan.fired() == {0: 1}

        with tempfile.TemporaryDirectory(prefix="repro-perf-faults-") as tmp:
            workspace = Workspace(tmp)
            assert workspace.run_study(study).complete
            victim = next((workspace.root / "objects").rglob("*.json"))
            victim.write_text("corrupt")
            started = time.perf_counter()
            report = workspace.salvage()
            salvage = time.perf_counter() - started
            assert len(report.quarantined) == 1

        if best_noplan is None or noplan < best_noplan:
            best_noplan = noplan
        if best_retry is None or retry < best_retry:
            best_retry = retry
        if best_salvage is None or salvage < best_salvage:
            best_salvage = salvage
    assert (
        best_noplan is not None
        and best_retry is not None
        and best_salvage is not None
    )
    return {
        "site_noplan_s": best_noplan,
        "injected_retry_s": best_retry,
        "salvage_s": best_salvage,
    }


#: Stimulus-vector count (lane count) of the engine-core batch benchmarks.
ENGINE_LANES = 512

#: Scalar-interpreter call count of the engine-core benchmark.
ENGINE_SCALAR_RUNS = 50


def _record_best(best: Dict[str, float], key: str, elapsed: float) -> None:
    previous = best.get(key)
    if previous is None or elapsed < previous:
        best[key] = elapsed


def time_engine(repeats: int = DEFAULT_REPEATS) -> Dict[str, float]:
    """Best-of-*repeats* timings of the bit-plane evaluation core.

    Three numbers, all under the session's default engine (set
    ``REPRO_ENGINE=legacy`` before invoking the harness to record the
    pre-plan evaluation loops over the very same workloads -- that pairing
    is what the CI ``engine/*`` speedup floors gate):

    * ``batch_oracle_s`` -- one
      :class:`~repro.simulation.batch.BatchInterpreter` sweep of the
      transformed ``adpcm_iaq`` specification over :data:`ENGINE_LANES`
      random stimulus vectors plus the corner set (the equivalence-oracle
      hot loop);
    * ``scalar_interp_s`` -- :data:`ENGINE_SCALAR_RUNS` scalar
      :class:`~repro.simulation.interpreter.Interpreter` runs of the same
      specification (the width-1 plan path);
    * ``rtl_batch_s`` -- the lane-packed cycle-accurate batch simulation of
      the emitted ``motivational`` design over the same lane count (the
      levelised netlist walk behind ``emit --check``).

    The compiled evaluation plans are warmed once before timing, so the
    recorded numbers are the steady state of a verification loop -- which on
    the legacy engines (no plan to warm) equals their cold time.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    from ..api.config import resolve_workload
    from ..core.transform import TransformOptions, transform
    from ..rtl.emit import emit_design
    from ..simulation.batch import BatchInterpreter
    from ..simulation.interpreter import Interpreter
    from ..simulation.vectors import stimulus

    specification = resolve_workload("adpcm_iaq")
    transformed = transform(
        specification, 3, TransformOptions(check_equivalence=False)
    ).transformed
    vectors = stimulus(transformed, random_count=ENGINE_LANES)
    oracle = BatchInterpreter(transformed)
    scalar = Interpreter(transformed)

    artifact = Pipeline().run(
        FlowConfig(latency=3, mode="fragmented", workload="motivational"),
        use_cache=False,
        stop_after="allocate",
    )
    design = emit_design(
        artifact.schedule, artifact.library, datapath=artifact.datapath
    ).design
    rtl_vectors = stimulus(
        artifact.working_specification, random_count=ENGINE_LANES
    )

    oracle.run_batch(vectors[:2])
    scalar.run(vectors[0])
    design.simulate_batch(rtl_vectors[:2])

    best: Dict[str, float] = {}
    for _ in range(repeats):
        started = time.perf_counter()
        oracle.run_batch(vectors)
        _record_best(best, "batch_oracle_s", time.perf_counter() - started)
        started = time.perf_counter()
        for vector in vectors[:ENGINE_SCALAR_RUNS]:
            scalar.run(vector)
        _record_best(best, "scalar_interp_s", time.perf_counter() - started)
        started = time.perf_counter()
        design.simulate_batch(rtl_vectors)
        _record_best(best, "rtl_batch_s", time.perf_counter() - started)
    best["batch_oracle_vectors"] = float(len(vectors))
    best["batch_oracle_vectors_per_s"] = (
        len(vectors) / best["batch_oracle_s"] if best["batch_oracle_s"] > 0 else 0.0
    )
    best["rtl_batch_vectors_per_s"] = (
        len(rtl_vectors) / best["rtl_batch_s"] if best["rtl_batch_s"] > 0 else 0.0
    )
    return best


#: Load-generator shape of the server benchmark: concurrent clients x
#: submit rounds each.  Every round submits the same study, so round 1 of
#: client 1 computes and everything after it is the warm-cache path.
SERVER_CLIENTS = 4
SERVER_ROUNDS = 3
QUICK_SERVER_CLIENTS = 2
QUICK_SERVER_ROUNDS = 2

#: Point count of the server-benchmark study (chain latency sweep).
SERVER_STUDY_POINTS = 4


def time_server(
    repeats: int = DEFAULT_REPEATS,
    clients: int = SERVER_CLIENTS,
    rounds: int = SERVER_ROUNDS,
) -> Dict[str, float]:
    """Best-of-*repeats* load-generation timings of the HTTP job API.

    Each repeat boots a real :mod:`repro.server` on an ephemeral port over
    a fresh workspace, then:

    * **cold** -- one client submits the benchmark study and polls it to
      done: every point executes through the engine (``cold_wall_s``, plus
      client-side p50/p99 over the individual HTTP requests issued);
    * **warm** -- ``clients`` concurrent threads each submit the *same*
      study ``rounds`` times and poll each job to done: every row is served
      from the workspace store with zero recompute (``warm_wall_s``,
      per-request ``warm_p50_s``/``warm_p99_s``, and the derived
      ``warm_rows_per_s`` service throughput).

    The warm numbers are the service's selling point (dedup makes N clients
    cost one computation), so the CI smoke gate anchors on them.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    import statistics
    import tempfile
    import threading as threading_module

    from ..api.study import fig4_study
    from ..server.app import create_server
    from ..server.client import SynthesisClient

    study = fig4_study(
        "chain:3:16",
        latencies=range(3, 3 + SERVER_STUDY_POINTS),
        name="perf-server",
    )
    best: Dict[str, float] = {}
    for _ in range(repeats):
        clear_transform_memo()
        clear_datapath_memo()
        with tempfile.TemporaryDirectory(prefix="repro-perf-server-") as tmp:
            server = create_server(tmp, port=0, workers=2)
            host, port = server.server_address[0], server.server_address[1]
            server_thread = threading_module.Thread(
                target=server.serve_forever, daemon=True
            )
            server_thread.start()
            base_url = f"http://{host}:{port}"
            try:
                # -- cold: first computation through the full service stack
                client = SynthesisClient(base_url, timeout_s=60.0)
                cold_latencies: List[float] = []

                def timed(call, *args):
                    started = time.perf_counter()
                    result = call(*args)
                    cold_latencies.append(time.perf_counter() - started)
                    return result

                started = time.perf_counter()
                job = timed(client.submit, study)
                while True:
                    body = timed(client.job, job["job_id"])
                    if body["status"] not in ("queued", "running"):
                        break
                timed(client.report, job["job_id"])
                cold_wall = time.perf_counter() - started
                assert body["status"] == "done", body
                assert body["summary"]["ran"] == len(study), body

                # -- warm: concurrent clients, everything from the store
                warm_latencies: List[float] = []
                warm_lock = threading_module.Lock()
                errors: List[BaseException] = []

                def one_client() -> None:
                    local = SynthesisClient(base_url, timeout_s=60.0)
                    mine: List[float] = []

                    def request(call, *args):
                        begun = time.perf_counter()
                        result = call(*args)
                        mine.append(time.perf_counter() - begun)
                        return result

                    try:
                        for _ in range(rounds):
                            submitted = request(local.submit, study)
                            while True:
                                state = request(local.job, submitted["job_id"])
                                if state["status"] not in ("queued", "running"):
                                    break
                            assert state["status"] == "done", state
                            request(local.report, submitted["job_id"])
                    except BaseException as error:  # noqa: BLE001
                        with warm_lock:
                            errors.append(error)
                        return
                    with warm_lock:
                        warm_latencies.extend(mine)

                started = time.perf_counter()
                threads = [
                    threading_module.Thread(target=one_client)
                    for _ in range(clients)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                warm_wall = time.perf_counter() - started
                if errors:
                    raise errors[0]
                warm_jobs = clients * rounds
                metrics = server.manager.metrics.snapshot()
                assert metrics["counters"]["cache_misses"] == len(study), metrics
            finally:
                server.shutdown()
                server.manager.shutdown()
                server.server_close()

        cold_sorted = sorted(cold_latencies)
        warm_sorted = sorted(warm_latencies)
        _record_best(best, "cold_wall_s", cold_wall)
        _record_best(best, "cold_p50_s", statistics.median(cold_sorted))
        _record_best(
            best, "cold_p99_s", cold_sorted[int(0.99 * (len(cold_sorted) - 1))]
        )
        _record_best(best, "warm_wall_s", warm_wall)
        _record_best(best, "warm_p50_s", statistics.median(warm_sorted))
        _record_best(
            best, "warm_p99_s", warm_sorted[int(0.99 * (len(warm_sorted) - 1))]
        )
        rows_served = warm_jobs * len(study)
        _record_best(best, "_warm_rows_inv", warm_wall / rows_served)
    best["clients"] = float(clients)
    best["rounds"] = float(rounds)
    best["points"] = float(SERVER_STUDY_POINTS)
    best["warm_rows_per_s"] = 1.0 / best.pop("_warm_rows_inv")
    return best


def _profile_section(label: str, fn) -> None:
    """Run *fn* under cProfile and print its top-20 cumulative functions."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(20)
    print(f"--- profile: {label} (top 20 by cumulative time) ---")
    print(stream.getvalue().rstrip())
    print()


def run_benchmarks(
    quick: bool = False, repeats: int = DEFAULT_REPEATS, profile: bool = False
) -> Dict:
    """Measure the current tree and return a serializable result.

    The returned dictionary has these sections:

    * ``stages``: ``{workload: {stage: seconds, ..., "total": seconds}}``;
    * ``sweeps``: ``{sweep_name: seconds}``;
    * ``verify``: ``{workload: {equivalence_s, equivalence_vectors,
      equivalence_vectors_per_s, elaborate_s}}``;
    * ``emit``: ``{workload: {emit_s, rtlsim_s, rtlsim_vectors,
      rtlsim_vectors_per_s}}`` -- the RTL backend (see :func:`time_emission`);
    * ``check``: ``{workload: {check_s, check_diagnostics}}`` -- the static
      verification suite over all four IR levels (see :func:`time_check`);
    * ``studies``: ``{study_name: {cold_s, resume_s}}`` -- workspace-backed
      study runs, cold versus store-resumed (see :func:`time_study`);
    * ``search``: ``{workload: {paper_s, search_s, search_points,
      search_improved}}`` -- the scheduling stage, deterministic paper
      policy versus the beam/multi-start search construction (see
      :func:`time_search`; the never-worse QoR guarantee is asserted
      inside the measurement);
    * ``faults``: ``{site_noplan_s, injected_retry_s, salvage_s}`` -- the
      fault-tolerance machinery: uninstrumented site-probe tax, the
      injected-failure retry path, and a salvage pass (see
      :func:`time_faults`);
    * ``engine``: ``{batch_oracle_s, scalar_interp_s, rtl_batch_s, ...}`` --
      the bit-plane evaluation core in isolation (see :func:`time_engine`);
    * ``server``: ``{cold_wall_s, cold_p50_s, cold_p99_s, warm_wall_s,
      warm_p50_s, warm_p99_s, warm_rows_per_s, ...}`` -- the HTTP job API
      under a concurrent load generator, cold (first computation) versus
      warm cache (every row deduplicated from the store; see
      :func:`time_server`);
    * ``meta``: interpreter/platform/timestamp provenance, plus the
      measurement parameters, so baselines recorded on other machines are
      recognisably not comparable.

    With ``profile=True`` every section additionally runs under
    :mod:`cProfile` and prints its top-20 cumulative-time functions; the
    recorded timings then include profiler overhead and must not be written
    to the bench file (the CLI's ``--profile`` flag enforces that).
    """
    points = QUICK_STAGE_POINTS if quick else STAGE_POINTS
    sweeps = QUICK_SWEEPS if quick else SWEEPS
    study_names = QUICK_STUDY_POINTS if quick else STUDY_POINTS
    emit_points = QUICK_EMIT_POINTS if quick else EMIT_POINTS
    check_points = QUICK_CHECK_POINTS if quick else CHECK_POINTS
    search_points = QUICK_SEARCH_POINTS if quick else SEARCH_POINTS

    def section(label, fn):
        if profile:
            _profile_section(label, fn)
        else:
            fn()

    stages: Dict[str, Dict[str, float]] = {}
    verify: Dict[str, Dict[str, float]] = {}

    def _stages():
        for workload, latency in points:
            stages[workload] = time_stages(workload, latency, repeats=repeats)
            verify[workload] = time_verification(workload, latency, repeats=repeats)

    section("stages+verify", _stages)

    sweep_times: Dict[str, float] = {}

    def _sweeps():
        for name, (workload, kind) in sweeps.items():
            sweep_times[name] = time_sweep(
                workload, latencies=FIG4_LATENCIES, repeats=repeats, kind=kind
            )

    section("sweeps", _sweeps)

    emit: Dict[str, Dict[str, float]] = {}

    def _emit():
        for workload, latency in emit_points:
            emit[workload] = time_emission(workload, latency, repeats=repeats)

    section("emit", _emit)

    check: Dict[str, Dict[str, float]] = {}

    def _check():
        for workload, latency in check_points:
            check[workload] = time_check(workload, latency, repeats=repeats)

    section("check", _check)

    studies: Dict[str, Dict[str, float]] = {}

    def _studies():
        for name in study_names:
            studies[name] = time_study(name, repeats=repeats)

    section("studies", _studies)

    search: Dict[str, Dict[str, float]] = {}

    def _search():
        for workload, latency, mode in search_points:
            search[workload] = time_search(workload, latency, mode, repeats=repeats)

    section("search", _search)

    faults_times: Dict[str, float] = {}
    section("faults", lambda: faults_times.update(time_faults(repeats=repeats)))

    engine_times: Dict[str, float] = {}
    section("engine", lambda: engine_times.update(time_engine(repeats=repeats)))

    server_times: Dict[str, float] = {}
    server_clients = QUICK_SERVER_CLIENTS if quick else SERVER_CLIENTS
    server_rounds = QUICK_SERVER_ROUNDS if quick else SERVER_ROUNDS
    section(
        "server",
        lambda: server_times.update(
            time_server(
                repeats=repeats, clients=server_clients, rounds=server_rounds
            )
        ),
    )

    return {
        "stages": stages,
        "sweeps": sweep_times,
        "verify": verify,
        "emit": emit,
        "check": check,
        "studies": studies,
        "search": search,
        "faults": faults_times,
        "engine": engine_times,
        "server": server_times,
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "quick": quick,
            "repeats": repeats,
            "profile": profile,
            "engine_lanes": ENGINE_LANES,
            "stage_latencies": {w: l for w, l in points},
            "sweep_latencies": list(FIG4_LATENCIES),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        },
    }
