"""Conventional time-constrained scheduler (the Behavioral Compiler stand-in).

Given a specification and a latency (cycle count), the scheduler

1. finds the smallest clock period for which an operation-chaining ASAP
   schedule fits the latency (binary search over the period), then
2. re-schedules inside the resulting mobility windows with a list scheduler
   that balances functional-unit usage across cycles, so that the allocation
   stage can share functional units the way a production HLS tool would.

This is the "conventional algorithm" the paper applies both to the original
specification (Fig. 1 b, the Table II "original" columns) and, through
:mod:`repro.hls.scheduling.fragment_scheduler`, to the transformed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...ir.operations import Operation
from ...ir.spec import Specification
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule
from ..timing import operation_level_cycle_delays
from .asap_alap import (
    SchedulingError,
    alap_chained,
    asap_chained,
    asap_cycles_needed,
    mobility_windows,
)


@dataclass(frozen=True)
class ClockSearchResult:
    """Outcome of the clock-period minimisation."""

    clock_period_ns: float
    cycles_needed: int


def _maximum_operation_delay(
    specification: Specification, library: TechnologyLibrary
) -> float:
    delays = [library.operation_delay_ns(op) for op in specification.operations]
    return max(delays) if delays else 0.0


def _total_chain_delay(
    specification: Specification, library: TechnologyLibrary
) -> float:
    """Upper bound on the clock period: the whole critical path in one cycle."""
    graph = specification.dataflow_graph()
    finish: Dict[Operation, float] = {}
    worst = 0.0
    for operation in graph.topological_order():
        start = 0.0
        for predecessor in graph.predecessors(operation):
            start = max(start, finish[predecessor])
        finish[operation] = start + library.operation_delay_ns(operation)
        worst = max(worst, finish[operation])
    return worst


def minimize_clock_period(
    specification: Specification,
    latency: int,
    library: TechnologyLibrary,
    precision_ns: float = 0.005,
) -> ClockSearchResult:
    """Smallest clock period that lets an ASAP chained schedule fit *latency*.

    The search is a plain binary search between the slowest single operation
    (no multi-cycling in the conventional flow) and the fully chained critical
    path; feasibility at a candidate period is checked by running the ASAP
    pass and counting cycles.
    """
    if latency <= 0:
        raise SchedulingError(f"latency must be positive, got {latency}")
    graph = specification.dataflow_graph()
    low = _maximum_operation_delay(specification, library)
    high = max(_total_chain_delay(specification, library), low)
    if low <= 0.0:
        return ClockSearchResult(0.0, 1)
    if asap_cycles_needed(specification, high, library, graph) > latency:
        raise SchedulingError(
            f"{specification.name} cannot be scheduled in {latency} cycles even "
            "with full chaining"
        )
    # Shrink the interval until the requested precision is reached.
    while high - low > precision_ns:
        middle = (low + high) / 2.0
        if asap_cycles_needed(specification, middle, library, graph) <= latency:
            high = middle
        else:
            low = middle
    cycles = asap_cycles_needed(specification, high, library, graph)
    return ClockSearchResult(high, cycles)


def list_schedule(
    specification: Specification,
    latency: int,
    clock_period_ns: float,
    library: TechnologyLibrary,
) -> Schedule:
    """Balance operations across cycles inside their ASAP/ALAP windows.

    Operations are visited in dependency order and placed in the feasible
    cycle that currently has the lowest functional-unit pressure for their
    category; chaining feasibility against the clock period is re-checked
    incrementally after every placement.

    Feasibility of a candidate cycle used to be probed by rebuilding a trial
    schedule and re-timing every placed operation, which made the pass
    quadratic in the operation count.  Because operations are placed in
    dependency order, adding one operation can never move the finish time of
    an already-placed one, so the probe only needs the candidate's own
    chained start (from its placed same-cycle predecessors) and the cycle's
    recorded worst finish -- both maintained incrementally below.
    """
    graph = specification.dataflow_graph()
    asap = asap_chained(specification, clock_period_ns, library, graph)
    alap = alap_chained(specification, clock_period_ns, latency, library, graph)
    windows = mobility_windows(asap, alap)

    schedule = Schedule(specification, latency)
    placed_by_cycle: Dict[int, List[Operation]] = {c: [] for c in range(1, latency + 1)}
    #: chained finish time (ns into its cycle) of every placed operation
    finish: Dict[Operation, float] = {}
    #: worst chained finish among the operations placed in each cycle
    cycle_worst: Dict[int, float] = {c: 0.0 for c in range(1, latency + 1)}
    #: per-cycle functional-unit pressure, by unit category
    cycle_pressure: Dict[int, Dict[str, int]] = {
        c: {} for c in range(1, latency + 1)
    }

    def chained_start(candidate_cycle: int, operation: Operation) -> float:
        """Start time of *operation* if placed in *candidate_cycle* now."""
        start = 0.0
        for predecessor in graph.predecessors(operation):
            if schedule.cycle_of.get(predecessor) == candidate_cycle:
                start = max(start, finish[predecessor])
        return start

    for operation in graph.topological_order():
        delay = library.operation_delay_ns(operation)
        unit = library.functional_unit_for(operation)
        lo, hi = windows[operation]
        # Predecessor placements may tighten the lower bound.
        for predecessor in graph.predecessors(operation):
            if predecessor in schedule.cycle_of:
                lo = max(lo, schedule.cycle_of[predecessor])
        hi = max(hi, lo)
        candidates = []
        starts: Dict[int, float] = {}
        for cycle in range(lo, min(hi, latency) + 1):
            start = chained_start(cycle, operation)
            starts[cycle] = start
            if max(cycle_worst[cycle], start + delay) > clock_period_ns + 1e-9:
                continue
            category_load = (
                cycle_pressure[cycle].get(unit.category, 0) + 1 if unit else 0
            )
            candidates.append((category_load, cycle))
        if not candidates:
            # Fall back to the ASAP cycle; the chained-ASAP construction
            # guarantees it fits.
            chosen = max(lo, asap[operation].cycle)
            chosen = min(chosen, latency)
        else:
            candidates.sort()
            chosen = candidates[0][1]
        schedule.assign(operation, chosen)
        placed_by_cycle[chosen].append(operation)
        start = starts.get(chosen)
        if start is None:
            start = chained_start(chosen, operation)
        finish[operation] = start + delay
        cycle_worst[chosen] = max(cycle_worst[chosen], finish[operation])
        if unit is not None:
            pressure = cycle_pressure[chosen]
            pressure[unit.category] = pressure.get(unit.category, 0) + 1
    schedule.check_precedence(graph)
    return schedule


def schedule_conventional(
    specification: Specification,
    latency: int,
    library: TechnologyLibrary,
) -> Tuple[Schedule, ClockSearchResult]:
    """The full conventional flow: minimise the clock, then balance the load."""
    search = minimize_clock_period(specification, latency, library)
    schedule = list_schedule(specification, latency, search.clock_period_ns, library)
    # The balancing pass never lengthens the worst chain beyond the searched
    # period, but recompute the exact achieved period for reporting.
    delays = operation_level_cycle_delays(schedule, library)
    achieved = max(delays.values()) if delays else 0.0
    return schedule, ClockSearchResult(max(achieved, 0.0), schedule.used_cycles())
