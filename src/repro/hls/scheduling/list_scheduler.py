"""Conventional time-constrained scheduler (the Behavioral Compiler stand-in).

Given a specification and a latency (cycle count), the scheduler

1. finds the smallest clock period for which an operation-chaining ASAP
   schedule fits the latency (binary search over the period), then
2. re-schedules inside the resulting mobility windows with a list scheduler
   that balances functional-unit usage across cycles, so that the allocation
   stage can share functional units the way a production HLS tool would.

This is the "conventional algorithm" the paper applies both to the original
specification (Fig. 1 b, the Table II "original" columns) and, through
:mod:`repro.hls.scheduling.fragment_scheduler`, to the transformed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Tuple

from ...ir.dfg import DataFlowGraph
from ...ir.operations import Operation
from ...ir.spec import Specification
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule
from ..timing import operation_level_cycle_delays
from .asap_alap import (
    SchedulingError,
    alap_chained,
    asap_chained,
    asap_cycles_needed,
    mobility_windows,
)


@dataclass(frozen=True)
class ClockSearchResult:
    """Outcome of the clock-period minimisation."""

    clock_period_ns: float
    cycles_needed: int


@dataclass(frozen=True)
class ReadyQueuePriority:
    """Parameterized ready-queue priority of the schedulers.

    The paper's schedulers pick the candidate cycle minimising a hard-coded
    load/cycle tuple.  This object generalises that choice: per-operation
    criticality (longest downstream chain), successor fan-out and mobility
    usage are folded into the candidate score with configurable weights, and
    an optional seeded jitter breaks ties deterministically.  The default
    instance is inert -- every scheduler takes the exact historical code path
    when :attr:`is_paper` is true, keeping ``policy=paper`` bit-identical.
    """

    criticality_weight: float = 0.0
    successor_weight: float = 0.0
    mobility_weight: float = 0.0
    tie_break_seed: Optional[int] = None

    @property
    def is_paper(self) -> bool:
        return (
            self.criticality_weight == 0.0
            and self.successor_weight == 0.0
            and self.mobility_weight == 0.0
            and self.tie_break_seed is None
        )

    def jitter(self, operation_index: int, cycle: int) -> float:
        """Deterministic tie-break noise, small enough to only break ties.

        Seeded per (operation, cycle) with a string key, so the value is
        independent of process, platform hash randomisation and placement
        order -- the determinism contract of ``SchedulerPolicy``.
        """
        if self.tie_break_seed is None:
            return 0.0
        rng = Random(f"{self.tie_break_seed}/{operation_index}/{cycle}")
        return rng.random() * 1e-6


def operation_features(
    graph: DataFlowGraph,
) -> Tuple[Dict[Operation, float], Dict[Operation, float], Dict[Operation, int]]:
    """Per-operation (criticality, fan-out, index) features for the priority.

    Criticality is the longest downstream chain in operation counts and
    fan-out the direct successor count, both normalised to [0, 1] so the
    priority weights act on comparable scales.  The index is the position in
    topological order -- the stable per-operation identity of the tie-break
    jitter.
    """
    order = graph.topological_order()
    index = {operation: i for i, operation in enumerate(order)}
    depth: Dict[Operation, int] = {}
    for operation in reversed(order):
        below = [depth[s] for s in graph.successors(operation)]
        depth[operation] = 1 + max(below) if below else 1
    fanout = {op: len(graph.successors(op)) for op in order}
    max_depth = max(depth.values(), default=1) or 1
    max_fanout = max(fanout.values(), default=1) or 1
    criticality = {op: depth[op] / max_depth for op in order}
    fanout_norm = {op: fanout[op] / max_fanout for op in order}
    return criticality, fanout_norm, index


def priority_bias(
    priority: ReadyQueuePriority,
    criticality: float,
    fanout: float,
    operation_index: int,
    cycle: int,
    lo: int,
    hi: int,
) -> float:
    """The weighted additive bias of one candidate cycle.

    Positive weights penalise placing critical / high-fan-out operations late
    in their mobility window and consuming mobility at all, steering the
    greedy (or beam) choice away from the pure load-balancing tuple.
    """
    span = max(1, hi - lo)
    late = cycle - lo
    return (
        (
            priority.criticality_weight * criticality
            + priority.successor_weight * fanout
        )
        * late
        + priority.mobility_weight * late / span
        + priority.jitter(operation_index, cycle)
    )


def _maximum_operation_delay(
    specification: Specification, library: TechnologyLibrary
) -> float:
    delays = [library.operation_delay_ns(op) for op in specification.operations]
    return max(delays) if delays else 0.0


def _total_chain_delay(
    specification: Specification, library: TechnologyLibrary
) -> float:
    """Upper bound on the clock period: the whole critical path in one cycle."""
    graph = specification.dataflow_graph()
    finish: Dict[Operation, float] = {}
    worst = 0.0
    for operation in graph.topological_order():
        start = 0.0
        for predecessor in graph.predecessors(operation):
            start = max(start, finish[predecessor])
        finish[operation] = start + library.operation_delay_ns(operation)
        worst = max(worst, finish[operation])
    return worst


def minimize_clock_period(
    specification: Specification,
    latency: int,
    library: TechnologyLibrary,
    precision_ns: float = 0.005,
) -> ClockSearchResult:
    """Smallest clock period that lets an ASAP chained schedule fit *latency*.

    The search is a plain binary search between the slowest single operation
    (no multi-cycling in the conventional flow) and the fully chained critical
    path; feasibility at a candidate period is checked by running the ASAP
    pass and counting cycles.
    """
    if latency <= 0:
        raise SchedulingError(f"latency must be positive, got {latency}")
    graph = specification.dataflow_graph()
    low = _maximum_operation_delay(specification, library)
    high = max(_total_chain_delay(specification, library), low)
    if low <= 0.0:
        return ClockSearchResult(0.0, 1)
    if asap_cycles_needed(specification, high, library, graph) > latency:
        raise SchedulingError(
            f"{specification.name} cannot be scheduled in {latency} cycles even "
            "with full chaining"
        )
    # Shrink the interval until the requested precision is reached.
    while high - low > precision_ns:
        middle = (low + high) / 2.0
        if asap_cycles_needed(specification, middle, library, graph) <= latency:
            high = middle
        else:
            low = middle
    cycles = asap_cycles_needed(specification, high, library, graph)
    return ClockSearchResult(high, cycles)


def list_schedule(
    specification: Specification,
    latency: int,
    clock_period_ns: float,
    library: TechnologyLibrary,
    priority: Optional[ReadyQueuePriority] = None,
    windows: Optional[Dict[Operation, Tuple[int, int]]] = None,
) -> Schedule:
    """Balance operations across cycles inside their ASAP/ALAP windows.

    Operations are visited in dependency order and placed in the feasible
    cycle that currently has the lowest functional-unit pressure for their
    category; chaining feasibility against the clock period is re-checked
    incrementally after every placement.

    Feasibility of a candidate cycle used to be probed by rebuilding a trial
    schedule and re-timing every placed operation, which made the pass
    quadratic in the operation count.  Because operations are placed in
    dependency order, adding one operation can never move the finish time of
    an already-placed one, so the probe only needs the candidate's own
    chained start (from its placed same-cycle predecessors) and the cycle's
    recorded worst finish -- both maintained incrementally below.

    *priority* generalises the candidate choice (see
    :class:`ReadyQueuePriority`); the default reproduces the paper's
    ``(category_load, cycle)`` tuple exactly.  *windows* overrides the
    computed mobility windows -- the hook the search layer and the window
    regression tests use.
    """
    graph = specification.dataflow_graph()
    asap = asap_chained(specification, clock_period_ns, library, graph)
    alap = alap_chained(specification, clock_period_ns, latency, library, graph)
    if windows is None:
        windows = mobility_windows(asap, alap)
    priority = priority or ReadyQueuePriority()
    criticality: Dict[Operation, float] = {}
    fanout: Dict[Operation, float] = {}
    op_index: Dict[Operation, int] = {}
    if not priority.is_paper:
        criticality, fanout, op_index = operation_features(graph)

    schedule = Schedule(specification, latency)
    placed_by_cycle: Dict[int, List[Operation]] = {c: [] for c in range(1, latency + 1)}
    #: chained finish time (ns into its cycle) of every placed operation
    finish: Dict[Operation, float] = {}
    #: worst chained finish among the operations placed in each cycle
    cycle_worst: Dict[int, float] = {c: 0.0 for c in range(1, latency + 1)}
    #: per-cycle functional-unit pressure, by unit category
    cycle_pressure: Dict[int, Dict[str, int]] = {
        c: {} for c in range(1, latency + 1)
    }

    def chained_start(candidate_cycle: int, operation: Operation) -> float:
        """Start time of *operation* if placed in *candidate_cycle* now."""
        start = 0.0
        for predecessor in graph.predecessors(operation):
            if schedule.cycle_of.get(predecessor) == candidate_cycle:
                start = max(start, finish[predecessor])
        return start

    for operation in graph.topological_order():
        delay = library.operation_delay_ns(operation)
        unit = library.functional_unit_for(operation)
        lo, hi = windows[operation]
        # Predecessor placements may tighten the lower bound.
        for predecessor in graph.predecessors(operation):
            if predecessor in schedule.cycle_of:
                lo = max(lo, schedule.cycle_of[predecessor])
        hi = max(hi, lo)
        candidates = []
        starts: Dict[int, float] = {}
        for cycle in range(lo, min(hi, latency) + 1):
            start = chained_start(cycle, operation)
            starts[cycle] = start
            if max(cycle_worst[cycle], start + delay) > clock_period_ns + 1e-9:
                continue
            category_load = (
                cycle_pressure[cycle].get(unit.category, 0) + 1 if unit else 0
            )
            if priority.is_paper:
                candidates.append((category_load, cycle))
            else:
                score = category_load + priority_bias(
                    priority,
                    criticality[operation],
                    fanout[operation],
                    op_index[operation],
                    cycle,
                    lo,
                    hi,
                )
                candidates.append((score, cycle))
        if not candidates:
            # Fall back to the ASAP cycle.  Through the conventional flow the
            # chained-ASAP construction guarantees it fits, but externally
            # supplied windows can tighten lo past the latency -- refuse with
            # a coded diagnostic instead of clamping the operation below its
            # placed predecessors.
            chosen = max(lo, asap[operation].cycle)
            if chosen > latency:
                raise SchedulingError(
                    f"operation {operation.name} has no feasible cycle: its "
                    f"tightened window starts at cycle {chosen} but the "
                    f"schedule only has {latency} cycles",
                    code="SCHED006",
                )
        else:
            candidates.sort()
            chosen = candidates[0][1]
        schedule.assign(operation, chosen)
        placed_by_cycle[chosen].append(operation)
        start = starts.get(chosen)
        if start is None:
            start = chained_start(chosen, operation)
        finish[operation] = start + delay
        cycle_worst[chosen] = max(cycle_worst[chosen], finish[operation])
        if unit is not None:
            pressure = cycle_pressure[chosen]
            pressure[unit.category] = pressure.get(unit.category, 0) + 1
    schedule.check_precedence(graph)
    return schedule


def schedule_conventional(
    specification: Specification,
    latency: int,
    library: TechnologyLibrary,
    priority: Optional[ReadyQueuePriority] = None,
) -> Tuple[Schedule, ClockSearchResult]:
    """The full conventional flow: minimise the clock, then balance the load."""
    search = minimize_clock_period(specification, latency, library)
    schedule = list_schedule(
        specification, latency, search.clock_period_ns, library, priority=priority
    )
    # The balancing pass never lengthens the worst chain beyond the searched
    # period, but recompute the exact achieved period for reporting.
    delays = operation_level_cycle_delays(schedule, library)
    achieved = max(delays.values()) if delays else 0.0
    return schedule, ClockSearchResult(max(achieved, 0.0), schedule.used_cycles())
