"""Search-based schedule construction: beam search + seeded multi-start.

The paper's schedulers are deterministic single-pass heuristics.  This module
treats schedule construction as search under the same structural constraints:

* the ready-queue priority is parameterized (:class:`ReadyQueuePriority`)
  instead of hard-coded,
* a beam of width K keeps the top-K partial-schedule prefixes alive, ranked
  by a cheap lower-bound cost (chained depth reached so far + functional-unit
  / adder-bit pressure), and
* N seeded weight draws (:func:`repro.hls.scheduling.policy.draw_weights`)
  restart the construction from different priorities, keeping the best
  complete schedule found.

Two invariants make the search safe to enable anywhere:

1. **Never worse than the paper.**  The deterministic baseline schedule is
   always evaluated as a candidate and is only replaced by a *strictly*
   cheaper schedule, so ``search_cost <= baseline_cost`` by construction.
2. **Deterministic.**  Candidate enumeration, beam pruning and the final
   comparison are all totally ordered (costs are tuples, ties broken by the
   assignment vector), and every random draw is derived from the policy's
   seeds -- identical policies give byte-identical schedules in any process.

Completed prefixes are only materialised into real :class:`Schedule` objects
at the end of the beam, where the exact cost is measured with the incremental
timing analyses (:func:`operation_level_cycle_delays`,
:func:`bit_level_cycle_depths`) through the schedule's analysis memo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...ir.operations import Operation
from ...ir.spec import Specification
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule
from ..timing import (
    analyze_bit_level,
    bit_level_cycle_depths,
    operation_level_cycle_delays,
)
from .asap_alap import (
    SchedulingError,
    alap_chained,
    asap_chained,
    mobility_windows,
)
from .fragment_scheduler import (
    FragmentSchedulerOptions,
    _FragmentPlacer,
    fragment_windows,
    schedule_fragments,
)
from .list_scheduler import (
    ReadyQueuePriority,
    list_schedule,
    minimize_clock_period,
    operation_features,
    priority_bias,
)
from .policy import SchedulerPolicy, draw_weights

#: Cost tuples are rounded to this many decimals before comparison so that
#: equal-by-construction schedules compare equal across platforms.
_COST_DECIMALS = 6


@dataclass(frozen=True)
class SearchOutcome:
    """Best schedule found plus the provenance of the winning policy."""

    schedule: Schedule
    provenance: "SearchProvenance"


@dataclass(frozen=True)
class SearchProvenance:
    """Record of what the search tried and which policy won.

    ``start_index`` is the winning multi-start draw (``-1`` when the paper
    baseline itself won), ``points_probed`` the number of complete schedules
    whose exact cost was measured, and the two objectives the primary QoR
    scalar (achieved clock period for the conventional flow, widest per-cycle
    adder bits for the fragmented flow).
    """

    policy: SchedulerPolicy
    mode: str
    start_index: int
    criticality_weight: float
    successor_weight: float
    mobility_weight: float
    tie_break_seed: Optional[int]
    points_probed: int
    baseline_objective: float
    best_objective: float
    baseline_area: float
    best_area: float
    improved: bool

    def to_report(self) -> Dict[str, Any]:
        """Flat ``search_*`` keys merged into the pipeline report row."""
        return {
            "search_policy": self.policy.policy,
            "search_beam_width": self.policy.beam_width,
            "search_starts": self.policy.starts,
            "search_seed": self.policy.seed,
            "search_points": self.points_probed,
            "search_start": self.start_index,
            "search_criticality_weight": self.criticality_weight,
            "search_successor_weight": self.successor_weight,
            "search_mobility_weight": self.mobility_weight,
            "search_tie_break_seed": self.tie_break_seed,
            "search_baseline_objective": self.baseline_objective,
            "search_objective": self.best_objective,
            "search_baseline_area": self.baseline_area,
            "search_area": self.best_area,
            "search_improved": self.improved,
        }


# ----------------------------------------------------------------------
# Exact cost of a complete schedule
# ----------------------------------------------------------------------
def conventional_cost(
    schedule: Schedule, library: TechnologyLibrary
) -> Tuple[float, float]:
    """(achieved clock period, allocated total area) -- lower is better.

    Measured with the *real* downstream stages, not proxies: the achieved
    period from the operation-level timing analysis and the area of the
    allocated/bound datapath.  Candidates are few (at most beam width per
    start), so paying for a true allocation here is what makes "search never
    worse than the paper" hold in the metrics the tables report, rather than
    in a surrogate that can disagree with them.
    """
    from ..datapath import build_datapath

    delays = schedule.cached_analysis(
        "search/op_cycle_delays", lambda: operation_level_cycle_delays(schedule, library)
    )
    achieved = max(delays.values()) if delays else 0.0
    datapath = build_datapath(schedule, library)
    return (round(achieved, _COST_DECIMALS), round(datapath.total_area, 3))


def fragmented_cost(
    schedule: Schedule, budget: int, library: TechnologyLibrary
) -> Tuple[int, float, float]:
    """(over budget?, bit-level clock period, allocated total area).

    A schedule whose chained-bit depth exceeds the budget sorts after every
    in-budget schedule regardless of the other terms, so beam candidates can
    never displace a feasible baseline with an infeasible "improvement".
    The period and area are the real bit-level timing and allocation
    results, same rationale as :func:`conventional_cost`.
    """
    from ..datapath import build_datapath

    depths = schedule.cached_analysis(
        "search/bit_cycle_depths", lambda: bit_level_cycle_depths(schedule)
    )
    worst_depth = max(depths.values()) if depths else 0
    timing = analyze_bit_level(schedule, library)
    datapath = build_datapath(schedule, library)
    return (
        int(worst_depth > budget),
        round(timing.cycle_length_ns, _COST_DECIMALS),
        round(datapath.total_area, 3),
    )


# ----------------------------------------------------------------------
# Beam search over partial schedules -- conventional flow
# ----------------------------------------------------------------------
@dataclass
class _ConventionalState:
    """One partial schedule prefix of the conventional beam."""

    assignment: Dict[Operation, int]
    finish: Dict[Operation, float]
    cycle_worst: Dict[int, float]
    pressure: Dict[Tuple[int, str], int]
    order: Tuple[int, ...]

    def bound(self) -> Tuple[float, int, Tuple[int, ...]]:
        """Lower-bound cost: depth reached so far + category pressure.

        Both terms can only grow as more operations are placed, so pruning on
        them never discards a prefix that would beat a kept prefix's final
        cost on the same terms.  The assignment vector breaks ties, making
        the beam contents independent of dict iteration order.
        """
        worst = max(self.cycle_worst.values()) if self.cycle_worst else 0.0
        peaks: Dict[str, int] = {}
        for (_cycle, category), load in self.pressure.items():
            peaks[category] = max(peaks.get(category, 0), load)
        return (round(worst, _COST_DECIMALS), sum(peaks.values()), self.order)


def beam_conventional(
    specification: Specification,
    latency: int,
    clock_period_ns: float,
    library: TechnologyLibrary,
    priority: ReadyQueuePriority,
    beam_width: int,
) -> List[Schedule]:
    """All surviving complete schedules of one beam pass (deterministic order)."""
    graph = specification.dataflow_graph()
    asap = asap_chained(specification, clock_period_ns, library, graph)
    alap = alap_chained(specification, clock_period_ns, latency, library, graph)
    windows = mobility_windows(asap, alap)
    criticality, fanout, op_index = operation_features(graph)

    states = [
        _ConventionalState(
            assignment={},
            finish={},
            cycle_worst={c: 0.0 for c in range(1, latency + 1)},
            pressure={},
            order=(),
        )
    ]
    for operation in graph.topological_order():
        delay = library.operation_delay_ns(operation)
        unit = library.functional_unit_for(operation)
        expanded: List[_ConventionalState] = []
        for state in states:
            lo, hi = windows[operation]
            for predecessor in graph.predecessors(operation):
                placed = state.assignment.get(predecessor)
                if placed is not None:
                    lo = max(lo, placed)
            hi = max(hi, lo)
            candidates: List[Tuple[float, int, float]] = []
            for cycle in range(lo, min(hi, latency) + 1):
                start = 0.0
                for predecessor in graph.predecessors(operation):
                    if state.assignment.get(predecessor) == cycle:
                        start = max(start, state.finish[predecessor])
                if max(state.cycle_worst[cycle], start + delay) > clock_period_ns + 1e-9:
                    continue
                load = 1
                if unit is not None:
                    load = state.pressure.get((cycle, unit.category), 0) + 1
                score = load + priority_bias(
                    priority,
                    criticality[operation],
                    fanout[operation],
                    op_index[operation],
                    cycle,
                    lo,
                    hi,
                )
                candidates.append((score, cycle, start))
            if not candidates:
                # Same fallback as the greedy list scheduler: the ASAP cycle
                # is feasible by construction of the chained-ASAP pass.
                cycle = max(lo, asap[operation].cycle)
                if cycle > latency:
                    raise SchedulingError(
                        f"operation {operation.name} has no feasible cycle "
                        f"within latency {latency}",
                        code="SCHED006",
                    )
                start = 0.0
                for predecessor in graph.predecessors(operation):
                    if state.assignment.get(predecessor) == cycle:
                        start = max(start, state.finish[predecessor])
                candidates = [(0.0, cycle, start)]
            candidates.sort(key=lambda c: (c[0], c[1]))
            for _score, cycle, start in candidates[:beam_width]:
                assignment = dict(state.assignment)
                assignment[operation] = cycle
                finish = dict(state.finish)
                finish[operation] = start + delay
                cycle_worst = dict(state.cycle_worst)
                cycle_worst[cycle] = max(cycle_worst[cycle], start + delay)
                pressure = dict(state.pressure)
                if unit is not None:
                    key = (cycle, unit.category)
                    pressure[key] = pressure.get(key, 0) + 1
                expanded.append(
                    _ConventionalState(
                        assignment=assignment,
                        finish=finish,
                        cycle_worst=cycle_worst,
                        pressure=pressure,
                        order=state.order + (cycle,),
                    )
                )
        expanded.sort(key=_ConventionalState.bound)
        states = expanded[:beam_width]

    schedules: List[Schedule] = []
    for state in states:
        schedule = Schedule(specification, latency)
        for operation in graph.topological_order():
            schedule.assign(operation, state.assignment[operation])
        schedule.check_precedence(graph)
        schedules.append(schedule)
    return schedules


# ----------------------------------------------------------------------
# Beam search over partial schedules -- fragmented flow
# ----------------------------------------------------------------------
@dataclass
class _FragmentState:
    """One partial additive-fragment placement of the fragmented beam."""

    assignment: Dict[Operation, int]
    bits: Dict[int, int]
    order: Tuple[int, ...]

    def bound(self) -> Tuple[int, int, Tuple[int, ...]]:
        """Lower-bound cost: peak adder bits so far + imbalance."""
        peak = max(self.bits.values()) if self.bits else 0
        return (peak, sum(b * b for b in self.bits.values()), self.order)


def beam_fragmented(
    specification: Specification,
    latency: int,
    budget: int,
    priority: ReadyQueuePriority,
    beam_width: int,
) -> List[Schedule]:
    """All surviving complete fragmented schedules of one beam pass."""
    graph = specification.dataflow_graph()
    bit_graph = specification.bit_dependency_graph()
    windows = fragment_windows(specification, latency, budget)
    placer = _FragmentPlacer(specification, latency, windows, graph, bit_graph)
    producers = bit_graph.operation_predecessors()
    criticality, fanout, op_index = operation_features(graph)

    states = [_FragmentState(assignment={}, bits={}, order=())]
    for operation in graph.topological_order():
        if not operation.is_additive:
            continue
        width = operation.max_operand_width()
        expanded: List[_FragmentState] = []
        for state in states:
            lo, hi = windows.get(operation, (1, latency))
            for producer in producers.get(operation, ()):
                placed = state.assignment.get(producer)
                if placed is not None and placed > lo:
                    lo = placed
            hi = max(hi, lo)
            lo = min(lo, latency)
            hi = min(hi, latency)
            scored: List[Tuple[float, int]] = []
            for cycle in range(lo, hi + 1):
                score = state.bits.get(cycle, 0) + priority_bias(
                    priority,
                    criticality[operation],
                    fanout[operation],
                    op_index[operation],
                    cycle,
                    lo,
                    hi,
                )
                scored.append((score, cycle))
            scored.sort(key=lambda c: (c[0], c[1]))
            for _score, cycle in scored[:beam_width]:
                assignment = dict(state.assignment)
                assignment[operation] = cycle
                bits = dict(state.bits)
                bits[cycle] = bits.get(cycle, 0) + width
                expanded.append(
                    _FragmentState(
                        assignment=assignment,
                        bits=bits,
                        order=state.order + (cycle,),
                    )
                )
        expanded.sort(key=_FragmentState.bound)
        states = expanded[:beam_width]

    return [placer.materialize(state.assignment) for state in states]


# ----------------------------------------------------------------------
# Multi-start driver
# ----------------------------------------------------------------------
def search_conventional(
    specification: Specification,
    latency: int,
    library: TechnologyLibrary,
    policy: SchedulerPolicy,
) -> SearchOutcome:
    """Beam + multi-start search of the conventional flow.

    The deterministic baseline (``list_schedule`` with the paper priority) is
    always a candidate and wins ties, so the result is never worse than the
    paper schedule under :func:`conventional_cost`.
    """
    search = minimize_clock_period(specification, latency, library)
    baseline = list_schedule(
        specification, latency, search.clock_period_ns, library
    )
    baseline_cost = conventional_cost(baseline, library)

    best, best_cost = baseline, baseline_cost
    best_start, best_weights = -1, (0.0, 0.0, 0.0, None)
    points = 1
    for start in range(policy.starts):
        weights = draw_weights(policy, start)
        priority = ReadyQueuePriority(*weights)
        for schedule in beam_conventional(
            specification,
            latency,
            search.clock_period_ns,
            library,
            priority,
            policy.beam_width,
        ):
            points += 1
            cost = conventional_cost(schedule, library)
            if cost < best_cost:
                best, best_cost = schedule, cost
                best_start, best_weights = start, weights
    provenance = SearchProvenance(
        policy=policy,
        mode="conventional",
        start_index=best_start,
        criticality_weight=best_weights[0],
        successor_weight=best_weights[1],
        mobility_weight=best_weights[2],
        tie_break_seed=best_weights[3],
        points_probed=points,
        baseline_objective=float(baseline_cost[0]),
        best_objective=float(best_cost[0]),
        baseline_area=float(baseline_cost[1]),
        best_area=float(best_cost[1]),
        improved=best_cost < baseline_cost,
    )
    return SearchOutcome(schedule=best, provenance=provenance)


def search_fragmented(
    specification: Specification,
    latency: int,
    budget: int,
    library: TechnologyLibrary,
    policy: SchedulerPolicy,
) -> SearchOutcome:
    """Beam + multi-start search of the fragmented flow.

    The baseline is the paper's balanced fragment schedule (including its
    verify-and-fall-back-to-ASAP behaviour); candidates exceeding the
    chained-bit budget can never displace an in-budget baseline because the
    feasibility flag leads the cost tuple.
    """
    options = FragmentSchedulerOptions(
        balance=policy.balance_fragments,
        priority=None,
    )
    baseline = schedule_fragments(specification, latency, budget, options)
    baseline_cost = fragmented_cost(baseline, budget, library)

    best, best_cost = baseline, baseline_cost
    best_start, best_weights = -1, (0.0, 0.0, 0.0, None)
    points = 1
    for start in range(policy.starts):
        weights = draw_weights(policy, start)
        priority = ReadyQueuePriority(*weights)
        for schedule in beam_fragmented(
            specification, latency, budget, priority, policy.beam_width
        ):
            points += 1
            cost = fragmented_cost(schedule, budget, library)
            if cost < best_cost:
                best, best_cost = schedule, cost
                best_start, best_weights = start, weights
    provenance = SearchProvenance(
        policy=policy,
        mode="fragmented",
        start_index=best_start,
        criticality_weight=best_weights[0],
        successor_weight=best_weights[1],
        mobility_weight=best_weights[2],
        tie_break_seed=best_weights[3],
        points_probed=points,
        baseline_objective=float(baseline_cost[1]),
        best_objective=float(best_cost[1]),
        baseline_area=float(baseline_cost[2]),
        best_area=float(best_cost[2]),
        improved=best_cost < baseline_cost,
    )
    return SearchOutcome(schedule=best, provenance=provenance)


def policy_starts(policy: SchedulerPolicy) -> Sequence[SchedulerPolicy]:
    """One single-start policy per multi-start draw of *policy*.

    The drawn weights are materialised into explicit policy fields, so each
    start is an ordinary, content-hashable ``FlowConfig`` point -- this is
    what lets :func:`repro.api.sweep` engines fan the starts out across
    workers instead of looping in-process.
    """
    starts: List[SchedulerPolicy] = []
    for start in range(policy.starts):
        weights = draw_weights(policy, start)
        starts.append(
            policy.replace(
                starts=1,
                criticality_weight=weights[0],
                successor_weight=weights[1],
                mobility_weight=weights[2],
                tie_break_seed=weights[3],
            )
        )
    return starts
