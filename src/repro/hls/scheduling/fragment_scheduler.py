"""Scheduler for transformed (fragmented) specifications.

The transformed specification produced by :mod:`repro.core` carries, on every
additive operation, the bit-level mobility computed by the fragmentation phase
(``asap``/``alap`` attributes).  A conventional scheduler only has to place
each fragment in one cycle of its mobility window while

* respecting the new data dependencies (carry chains between fragments and
  value dependencies between chained fragments of different operations,
  including dependencies threaded through glue logic), and
* keeping the chained 1-bit-addition depth of every cycle within the budget
  estimated in phase 2,

and, secondarily, balancing the number of addition bits executed per cycle so
that the allocation stage needs as few (and as narrow) adders as possible --
this is what lets operation ``A`` of Fig. 3 g execute in cycles 1 and 3, two
non-consecutive cycles.

Strategy: place fragments greedily inside their mobility windows (balancing
addition bits per cycle), then verify the per-cycle chained-bit depths with
the bit-level timing analysis; if the balanced placement exceeds the budget,
fall back to the pure ASAP placement, which is feasible by construction of the
mobility windows.

Glue-logic operations (wiring moves, slices, selectors, operand extensions)
are placed in the cycle of their latest producer: they cost no time and no
functional unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...ir.dfg import BitDependencyGraph, DataFlowGraph
from ...ir.operations import Operation
from ...ir.spec import Specification
from ..schedule import Schedule, ScheduleError
from ..timing import bit_level_cycle_depths
from .asap_alap import SchedulingError
from .list_scheduler import ReadyQueuePriority, operation_features, priority_bias


def _recorded_mobility(operation: Operation, latency: int) -> Optional[Tuple[int, int]]:
    """The (asap, alap) window recorded by the transformation, if any."""
    if "asap" not in operation.attributes or "alap" not in operation.attributes:
        return None
    asap = int(operation.attributes["asap"])
    alap = int(operation.attributes["alap"])
    asap = max(1, min(asap, latency))
    alap = max(asap, min(alap, latency))
    return asap, alap


def _bit_level_mobility(
    specification: Specification, latency: int, budget: int
) -> Dict[Operation, Tuple[int, int]]:
    """Recompute mobility windows from the transformed spec's own bit graph.

    Used when the specification was not produced by this library's rewriter
    (e.g. hand-written fragmented specifications in the tests) and therefore
    carries no mobility attributes.
    """
    from ...core.fragmentation import compute_bit_schedule

    graph = specification.bit_dependency_graph()
    schedule = compute_bit_schedule(specification, latency, budget, graph)
    if not schedule.is_feasible():
        raise SchedulingError(
            f"{specification.name} has no feasible bit-level schedule with "
            f"{budget} chained bits per cycle and latency {latency}"
        )
    windows: Dict[Operation, Tuple[int, int]] = {}
    for operation in specification.operations:
        if not operation.is_additive:
            continue
        asap = 1
        alap = latency
        for bit in range(operation.width):
            node = graph.node(operation, bit)
            asap = max(asap, schedule.asap_cycle(node))
            alap = min(alap, schedule.alap_cycle(node))
        windows[operation] = (asap, max(asap, alap))
    return windows


@dataclass
class FragmentSchedulerOptions:
    """Tuning knobs of the fragment scheduler."""

    #: balance addition bits across cycles (False = pure ASAP placement).
    balance: bool = True
    #: verify the balanced placement against the budget and fall back to the
    #: ASAP placement when the balancing broke a cycle's chained depth.
    verify: bool = True
    #: parameterized ready-queue priority; the default (None) keeps the
    #: paper's pure ``(additive_bits, cycle)`` balancing choice.
    priority: Optional[ReadyQueuePriority] = None


class _FragmentPlacer:
    """Shared machinery of the balanced and ASAP placements."""

    def __init__(
        self,
        specification: Specification,
        latency: int,
        windows: Dict[Operation, Tuple[int, int]],
        graph: DataFlowGraph,
        bit_graph: BitDependencyGraph,
    ) -> None:
        self.specification = specification
        self.latency = latency
        self.windows = windows
        self.graph = graph
        self.bit_graph = bit_graph

    def _bit_lower_bound(self, operation: Operation, schedule: Schedule) -> int:
        """Earliest cycle allowed by already-placed producers, bit-accurately.

        A fragment may start as soon as the additive result bits its own bits
        depend on are available; dependencies are traced through glue logic at
        the bit level, so reading the low bits of a partially produced value
        does not wait for the fragments that produce its high bits.  The
        producer set per operation is the bit graph's cached operation-level
        projection, so each query is one pass over the distinct producers
        instead of one over every (bit, predecessor) pair.
        """
        bound = 1
        cycle_of = schedule.cycle_of
        for producer in self.bit_graph.operation_predecessors().get(operation, ()):
            placed = cycle_of.get(producer)
            if placed is not None and placed > bound:
                bound = placed
        return bound

    def _glue_lower_bound(
        self, operation: Operation, schedule: Schedule, depth: int = 0
    ) -> int:
        """Cycle assigned to glue logic: after its latest placed producer."""
        if depth > 64:
            return 1
        bound = 1
        for predecessor in self.graph.predecessors(operation):
            placed = schedule.cycle_of.get(predecessor)
            if placed is not None:
                bound = max(bound, placed)
            elif not predecessor.is_additive:
                bound = max(
                    bound, self._glue_lower_bound(predecessor, schedule, depth + 1)
                )
        return bound

    def materialize(self, additive_cycles: Dict[Operation, int]) -> Schedule:
        """Build the full schedule from explicit additive-fragment cycles.

        Glue logic is derived the same way :meth:`place` derives it (the
        cycle of the latest producer), so any additive assignment the search
        layer produces materialises exactly like a greedy placement would.
        """
        schedule = Schedule(self.specification, self.latency)
        for operation in self.graph.topological_order():
            if operation.is_additive:
                schedule.assign(operation, additive_cycles[operation])
        for operation in self.graph.topological_order():
            if operation.is_additive:
                continue
            cycle = self._glue_lower_bound(operation, schedule)
            schedule.assign(operation, min(cycle, self.latency))
        schedule.check_bit_precedence(self.bit_graph)
        return schedule

    def place(
        self, balance: bool, priority: Optional[ReadyQueuePriority] = None
    ) -> Schedule:
        priority = priority or ReadyQueuePriority()
        weighted = balance and not priority.is_paper
        criticality: Dict[Operation, float] = {}
        fanout: Dict[Operation, float] = {}
        op_index: Dict[Operation, int] = {}
        if weighted:
            criticality, fanout, op_index = operation_features(self.graph)
        schedule = Schedule(self.specification, self.latency)
        additive_bits: Dict[int, int] = {c: 0 for c in range(1, self.latency + 1)}
        for operation in self.graph.topological_order():
            if not operation.is_additive:
                continue
            lo, hi = self.windows.get(operation, (1, self.latency))
            lo = max(lo, self._bit_lower_bound(operation, schedule))
            hi = max(hi, lo)
            lo = min(lo, self.latency)
            hi = min(hi, self.latency)
            if weighted and hi > lo:
                window = (lo, hi)

                def scored(cycle: int, _op: Operation = operation) -> Tuple[float, int]:
                    return (
                        additive_bits[cycle]
                        + priority_bias(
                            priority,
                            criticality[_op],
                            fanout[_op],
                            op_index[_op],
                            cycle,
                            window[0],
                            window[1],
                        ),
                        cycle,
                    )

                chosen = min(range(lo, hi + 1), key=scored)
            elif balance and hi > lo:
                chosen = min(
                    range(lo, hi + 1), key=lambda cycle: (additive_bits[cycle], cycle)
                )
            else:
                chosen = lo
            schedule.assign(operation, chosen)
            additive_bits[chosen] += operation.max_operand_width()
        # Glue logic follows its producers (pure wiring: no time, no unit).
        for operation in self.graph.topological_order():
            if operation.is_additive:
                continue
            cycle = self._glue_lower_bound(operation, schedule)
            schedule.assign(operation, min(cycle, self.latency))
        schedule.check_bit_precedence(self.bit_graph)
        return schedule


def fragment_windows(
    specification: Specification, latency: int, chained_bits_per_cycle: int
) -> Dict[Operation, Tuple[int, int]]:
    """Mobility windows of the additive fragments.

    Prefers the windows recorded by the transformation; recomputes them from
    the bit graph for hand-written fragmented specifications.
    """
    windows: Dict[Operation, Tuple[int, int]] = {}
    for operation in specification.operations:
        if not operation.is_additive:
            continue
        recorded = _recorded_mobility(operation, latency)
        if recorded is None:
            return _bit_level_mobility(
                specification, latency, chained_bits_per_cycle
            )
        windows[operation] = recorded
    return windows


def schedule_fragments(
    specification: Specification,
    latency: int,
    chained_bits_per_cycle: int,
    options: Optional[FragmentSchedulerOptions] = None,
) -> Schedule:
    """Schedule a transformed specification under a chained-bit budget."""
    options = options or FragmentSchedulerOptions()
    if latency <= 0:
        raise SchedulingError(f"latency must be positive, got {latency}")
    if chained_bits_per_cycle <= 0:
        raise SchedulingError(
            f"chained-bit budget must be positive, got {chained_bits_per_cycle}"
        )
    graph = specification.dataflow_graph()
    windows = fragment_windows(specification, latency, chained_bits_per_cycle)
    bit_graph = specification.bit_dependency_graph()
    placer = _FragmentPlacer(specification, latency, windows, graph, bit_graph)
    schedule = placer.place(balance=options.balance, priority=options.priority)
    if options.balance and options.verify:
        depths = bit_level_cycle_depths(schedule, bit_graph)
        if depths and max(depths.values()) > chained_bits_per_cycle:
            asap_schedule = placer.place(balance=False)
            asap_depths = bit_level_cycle_depths(asap_schedule, bit_graph)
            if max(asap_depths.values()) <= max(depths.values()):
                schedule = asap_schedule
    return schedule


def verify_budget(
    schedule: Schedule, chained_bits_per_cycle: int
) -> Dict[int, int]:
    """Return per-cycle depths, raising when any cycle exceeds the budget."""
    depths = bit_level_cycle_depths(schedule)
    for cycle, depth in depths.items():
        if depth > chained_bits_per_cycle:
            raise ScheduleError(
                f"cycle {cycle} chains {depth} bits, exceeding the budget of "
                f"{chained_bits_per_cycle}"
            )
    return depths
