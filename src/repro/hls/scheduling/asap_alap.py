"""Operation-level ASAP / ALAP scheduling with operation chaining.

These are the conventional scheduling primitives of the HLS substrate: given
a candidate clock period ``T`` (nanoseconds), the ASAP pass packs operations
greedily into cycles, chaining data-dependent operations within a cycle as
long as the accumulated functional-unit delay fits ``T``; the ALAP pass is the
mirror image, anchored at a target latency.  Both return per-operation cycles
plus the chained start time inside the cycle.

They are used by the conventional flow on the *original* specification
(Table I column 1, Table II "original" columns) and by the clock-period
minimisation search in :mod:`repro.hls.scheduling.list_scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...ir.dfg import DataFlowGraph
from ...ir.operations import Operation
from ...ir.spec import Specification
from ...techlib.library import TechnologyLibrary


class SchedulingError(ValueError):
    """Raised when no schedule exists under the given constraints.

    ``code`` carries the registered diagnostic code (``SCHED*``) when the
    failure maps to one, so callers can surface it through the check layer
    without string matching.
    """

    def __init__(self, message: str, code: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class ChainedPlacement:
    """Cycle plus chained start/finish times (ns inside the cycle)."""

    cycle: int
    start_ns: float
    finish_ns: float


def asap_chained(
    specification: Specification,
    clock_period_ns: float,
    library: TechnologyLibrary,
    graph: Optional[DataFlowGraph] = None,
) -> Dict[Operation, ChainedPlacement]:
    """As-soon-as-possible schedule with operation chaining under a clock period.

    Raises :class:`SchedulingError` when some single operation is slower than
    the clock period (the conventional flow does not multi-cycle operations;
    that is precisely the limitation the paper's transformation removes).
    """
    if clock_period_ns <= 0:
        raise SchedulingError(f"clock period must be positive, got {clock_period_ns}")
    if graph is None:
        graph = specification.dataflow_graph()
    placements: Dict[Operation, ChainedPlacement] = {}
    for operation in graph.topological_order():
        delay = library.operation_delay_ns(operation)
        if delay > clock_period_ns + 1e-9:
            raise SchedulingError(
                f"operation {operation.name} ({delay:.3f} ns) does not fit a "
                f"{clock_period_ns:.3f} ns clock period"
            )
        cycle = 1
        start = 0.0
        for predecessor in graph.predecessors(operation):
            previous = placements[predecessor]
            if previous.cycle > cycle:
                cycle, start = previous.cycle, 0.0
        for predecessor in graph.predecessors(operation):
            previous = placements[predecessor]
            if previous.cycle == cycle:
                start = max(start, previous.finish_ns)
        if start + delay > clock_period_ns + 1e-9:
            cycle += 1
            start = 0.0
        placements[operation] = ChainedPlacement(cycle, start, start + delay)
    return placements


def alap_chained(
    specification: Specification,
    clock_period_ns: float,
    latency: int,
    library: TechnologyLibrary,
    graph: Optional[DataFlowGraph] = None,
) -> Dict[Operation, ChainedPlacement]:
    """As-late-as-possible schedule, anchored at cycle *latency*.

    The returned ``start_ns``/``finish_ns`` are measured from the start of the
    cycle (forward convention) so ASAP and ALAP placements are directly
    comparable.
    """
    if clock_period_ns <= 0:
        raise SchedulingError(f"clock period must be positive, got {clock_period_ns}")
    if latency <= 0:
        raise SchedulingError(f"latency must be positive, got {latency}")
    if graph is None:
        graph = specification.dataflow_graph()
    # Work in "reverse time": tail_ns is the chained delay from the start of
    # the operation to the end of its cycle.
    cycles: Dict[Operation, int] = {}
    tails: Dict[Operation, float] = {}
    for operation in reversed(graph.topological_order()):
        delay = library.operation_delay_ns(operation)
        if delay > clock_period_ns + 1e-9:
            raise SchedulingError(
                f"operation {operation.name} ({delay:.3f} ns) does not fit a "
                f"{clock_period_ns:.3f} ns clock period"
            )
        cycle = latency
        tail = 0.0
        successors = graph.successors(operation)
        if successors:
            cycle = min(cycles[s] for s in successors)
            for successor in successors:
                if cycles[successor] == cycle:
                    tail = max(tail, tails[successor])
        if tail + delay > clock_period_ns + 1e-9:
            cycle -= 1
            tail = 0.0
        if cycle < 1:
            raise SchedulingError(
                f"operation {operation.name} cannot be scheduled within "
                f"{latency} cycles of {clock_period_ns:.3f} ns"
            )
        cycles[operation] = cycle
        tails[operation] = tail + delay
    placements: Dict[Operation, ChainedPlacement] = {}
    for operation, cycle in cycles.items():
        finish = clock_period_ns - tails[operation] + library.operation_delay_ns(operation)
        start = finish - library.operation_delay_ns(operation)
        placements[operation] = ChainedPlacement(cycle, start, finish)
    return placements


def asap_cycles_needed(
    specification: Specification,
    clock_period_ns: float,
    library: TechnologyLibrary,
    graph: Optional[DataFlowGraph] = None,
) -> int:
    """Number of cycles the ASAP schedule needs under the given clock period.

    This is the feasibility probe of the clock-period binary search, called a
    dozen times per scheduled point, so it runs the same recurrence as
    :func:`asap_chained` without materialising a placement object per
    operation.
    """
    if clock_period_ns <= 0:
        raise SchedulingError(f"clock period must be positive, got {clock_period_ns}")
    if graph is None:
        graph = specification.dataflow_graph()
    cycles: Dict[Operation, int] = {}
    finishes: Dict[Operation, float] = {}
    worst = 0
    threshold = clock_period_ns + 1e-9
    for operation in graph.topological_order():
        delay = library.operation_delay_ns(operation)
        if delay > threshold:
            raise SchedulingError(
                f"operation {operation.name} ({delay:.3f} ns) does not fit a "
                f"{clock_period_ns:.3f} ns clock period"
            )
        cycle = 1
        start = 0.0
        for predecessor in graph.predecessors(operation):
            if cycles[predecessor] > cycle:
                cycle = cycles[predecessor]
        for predecessor in graph.predecessors(operation):
            if cycles[predecessor] == cycle and finishes[predecessor] > start:
                start = finishes[predecessor]
        if start + delay > threshold:
            cycle += 1
            start = 0.0
        cycles[operation] = cycle
        finishes[operation] = start + delay
        if cycle > worst:
            worst = cycle
    return worst


def mobility_windows(
    asap: Dict[Operation, ChainedPlacement],
    alap: Dict[Operation, ChainedPlacement],
) -> Dict[Operation, Tuple[int, int]]:
    """Per-operation cycle windows derived from ASAP and ALAP placements."""
    windows: Dict[Operation, Tuple[int, int]] = {}
    for operation, early in asap.items():
        late = alap[operation]
        windows[operation] = (early.cycle, max(early.cycle, late.cycle))
    return windows
