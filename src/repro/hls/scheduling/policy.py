"""First-class scheduler policy: the knobs of schedule construction.

A :class:`SchedulerPolicy` is the serializable description of *how* the
scheduling stage builds a schedule: the paper's deterministic single-pass
heuristics (``policy="paper"``, the default) or the search-based construction
of :mod:`repro.hls.scheduling.search` (``policy="search"``: parameterized
ready-queue priorities, a beam over partial schedules, and seeded multi-start
weight draws).

The policy also owns the knobs that historically lived flat on
:class:`~repro.api.config.FlowConfig` -- the per-cycle chained-bit budget and
the fragment-balancing switch -- so every scheduler consumer (the pipeline,
studies, the server, the CLI) shares one surface.  The paper policy with
default search knobs is *hash-stable*: :meth:`~repro.api.config.FlowConfig.
semantic_dict` serializes it in the legacy flat encoding, so every pre-search
config keeps its content hash, cache entries and workspace rows.

Determinism contract: two equal policies produce byte-identical schedules,
in any process, under any test sharding.  All randomness is derived from the
``seed``/``tie_break_seed`` fields through :func:`draw_weights`, never from
global RNG state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from random import Random
from typing import Any, Dict, Optional, Tuple


class PolicyError(ValueError):
    """Raised for invalid scheduler-policy descriptions."""


#: The recognised policy kinds.
POLICY_KINDS = ("paper", "search")

#: Upper bounds keeping a single in-pass search affordable; studies wanting
#: more fan-out split it across points (each point is one policy).
MAX_BEAM_WIDTH = 64
MAX_STARTS = 256


@dataclass(frozen=True)
class SchedulerPolicy:
    """Serializable description of the schedule-construction strategy.

    Parameters
    ----------
    policy:
        ``"paper"`` runs the deterministic heuristics bit-identically to the
        historical flow; ``"search"`` runs the beam/multi-start construction
        (which still never returns a schedule worse than the paper baseline:
        the baseline is always a candidate and wins ties).
    chained_bits_per_cycle:
        Explicit per-cycle chained-bit budget of the fragmented flow
        (``None`` derives it from the transformation).  Migrated from the
        flat ``FlowConfig`` field of the same name.
    balance_fragments:
        Whether the fragment scheduler balances addition bits across cycles.
        Migrated from the flat ``FlowConfig`` field of the same name.
    criticality_weight / successor_weight / mobility_weight:
        Ready-queue priority weights of the parameterized schedulers.  All
        zero reproduces the paper's hard-coded ``(category_load, cycle)``
        priority exactly.  Only meaningful with ``policy="search"``.
    tie_break_seed:
        Seed of the deterministic tie-break jitter added to candidate
        priorities (``None`` = no jitter).  Only with ``policy="search"``.
    beam_width:
        Number of partial-schedule prefixes kept alive per placement step
        (1 = greedy).  Only meaningful with ``policy="search"``.
    starts:
        Number of seeded multi-start weight draws; start 0 uses this
        policy's own weights, later starts draw from ``seed``.  Only
        meaningful with ``policy="search"``.
    seed:
        Master seed of the multi-start draws (and of derived tie-break
        jitter for drawn starts).
    """

    policy: str = "paper"
    chained_bits_per_cycle: Optional[int] = None
    balance_fragments: bool = True
    criticality_weight: float = 0.0
    successor_weight: float = 0.0
    mobility_weight: float = 0.0
    tie_break_seed: Optional[int] = None
    beam_width: int = 1
    starts: int = 1
    seed: int = 2005

    def __post_init__(self) -> None:
        if self.policy not in POLICY_KINDS:
            raise PolicyError(
                f"policy must be one of {', '.join(POLICY_KINDS)}, "
                f"got {self.policy!r}"
            )
        if self.chained_bits_per_cycle is not None and (
            not isinstance(self.chained_bits_per_cycle, int)
            or isinstance(self.chained_bits_per_cycle, bool)
            or self.chained_bits_per_cycle <= 0
        ):
            raise PolicyError(
                "chained_bits_per_cycle must be positive when given, got "
                f"{self.chained_bits_per_cycle!r} (use None to derive it)"
            )
        if not isinstance(self.balance_fragments, bool):
            raise PolicyError(
                f"balance_fragments must be a bool, got {self.balance_fragments!r}"
            )
        for name in ("criticality_weight", "successor_weight", "mobility_weight"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise PolicyError(f"{name} must be a number, got {value!r}")
            if value < 0.0:
                raise PolicyError(f"{name} must be non-negative, got {value!r}")
            object.__setattr__(self, name, float(value))
        if self.tie_break_seed is not None and (
            not isinstance(self.tie_break_seed, int)
            or isinstance(self.tie_break_seed, bool)
        ):
            raise PolicyError(
                f"tie_break_seed must be an integer, got {self.tie_break_seed!r}"
            )
        for name, limit in (("beam_width", MAX_BEAM_WIDTH), ("starts", MAX_STARTS)):
            value = getattr(self, name)
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or not 1 <= value <= limit
            ):
                raise PolicyError(
                    f"{name} must be an integer in [1, {limit}], got {value!r}"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise PolicyError(f"seed must be an integer, got {self.seed!r}")
        if self.policy == "paper" and not self.is_paper_search_surface():
            raise PolicyError(
                "search knobs (weights, tie_break_seed, beam_width, starts) "
                'require policy="search"; the paper policy is the pinned '
                "deterministic heuristic"
            )

    # ------------------------------------------------------------------
    def is_paper_search_surface(self) -> bool:
        """True when every search knob sits at its paper default.

        The budget/balance fields are excluded: they predate the search API
        and are legal with either policy.
        """
        return (
            self.criticality_weight == 0.0
            and self.successor_weight == 0.0
            and self.mobility_weight == 0.0
            and self.tie_break_seed is None
            and self.beam_width == 1
            and self.starts == 1
            and self.seed == SchedulerPolicy.seed
        )

    @property
    def search_enabled(self) -> bool:
        return self.policy == "search"

    def weights(self) -> Tuple[float, float, float]:
        """The (criticality, successor, mobility) weight triple."""
        return (
            self.criticality_weight,
            self.successor_weight,
            self.mobility_weight,
        )

    def replace(self, **changes: Any) -> "SchedulerPolicy":
        """A copy with *changes* applied (validated again)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable dictionary (stable key set)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SchedulerPolicy":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, dict):
            raise PolicyError(
                f"scheduler policy must be an object, got {type(data).__name__}"
            )
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise PolicyError(
                f"unknown SchedulerPolicy keys {sorted(unknown)}; "
                f"valid keys are {sorted(field_names)}"
            )
        return cls(**data)


def draw_weights(policy: SchedulerPolicy, start: int) -> Tuple[float, float, float, Optional[int]]:
    """The (criticality, successor, mobility, tie_break_seed) of one start.

    Start 0 is always the policy's own weights -- multi-start widens the
    paper/explicit configuration, it never replaces it.  Later starts draw
    uniformly from ``Random(f"{seed}/{start}")``, a process-independent
    construction (no hash randomization, no global RNG), so the draw for a
    given (policy, start) is identical on every machine and worker.
    """
    if start == 0:
        return (
            policy.criticality_weight,
            policy.successor_weight,
            policy.mobility_weight,
            policy.tie_break_seed,
        )
    rng = Random(f"{policy.seed}/{start}")
    return (
        round(rng.uniform(0.0, 2.0), 6),
        round(rng.uniform(0.0, 2.0), 6),
        round(rng.uniform(0.0, 1.0), 6),
        rng.randrange(2**31),
    )
