"""Schedulers of the HLS substrate.

* :mod:`~repro.hls.scheduling.asap_alap` -- operation-level chained ASAP/ALAP;
* :mod:`~repro.hls.scheduling.list_scheduler` -- conventional time-constrained
  flow (clock-period minimisation + load-balancing list scheduler);
* :mod:`~repro.hls.scheduling.fragment_scheduler` -- scheduler for the
  transformed specifications produced by :mod:`repro.core`;
* :mod:`~repro.hls.scheduling.chaining` -- the bit-level chaining baseline of
  Fig. 1 d;
* :mod:`~repro.hls.scheduling.policy` -- the :class:`SchedulerPolicy` knob
  surface shared by the config layer and the search scheduler;
* :mod:`~repro.hls.scheduling.search` -- beam search + multi-start priority
  draws over the same construction the deterministic schedulers use.
"""

from .asap_alap import (
    ChainedPlacement,
    SchedulingError,
    alap_chained,
    asap_chained,
    asap_cycles_needed,
    mobility_windows,
)
from .chaining import BlcScheduleResult, schedule_bit_level_chaining
from .fragment_scheduler import (
    FragmentSchedulerOptions,
    schedule_fragments,
    verify_budget,
)
from .list_scheduler import (
    ClockSearchResult,
    ReadyQueuePriority,
    list_schedule,
    minimize_clock_period,
    schedule_conventional,
)
from .policy import PolicyError, SchedulerPolicy, draw_weights
from .search import (
    SearchOutcome,
    SearchProvenance,
    policy_starts,
    search_conventional,
    search_fragmented,
)

__all__ = [
    "BlcScheduleResult",
    "ChainedPlacement",
    "ClockSearchResult",
    "FragmentSchedulerOptions",
    "PolicyError",
    "ReadyQueuePriority",
    "SchedulerPolicy",
    "SchedulingError",
    "SearchOutcome",
    "SearchProvenance",
    "alap_chained",
    "asap_chained",
    "asap_cycles_needed",
    "draw_weights",
    "list_schedule",
    "minimize_clock_period",
    "mobility_windows",
    "policy_starts",
    "schedule_bit_level_chaining",
    "schedule_conventional",
    "schedule_fragments",
    "search_conventional",
    "search_fragmented",
    "verify_budget",
]
