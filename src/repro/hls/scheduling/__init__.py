"""Schedulers of the HLS substrate.

* :mod:`~repro.hls.scheduling.asap_alap` -- operation-level chained ASAP/ALAP;
* :mod:`~repro.hls.scheduling.list_scheduler` -- conventional time-constrained
  flow (clock-period minimisation + load-balancing list scheduler);
* :mod:`~repro.hls.scheduling.fragment_scheduler` -- scheduler for the
  transformed specifications produced by :mod:`repro.core`;
* :mod:`~repro.hls.scheduling.chaining` -- the bit-level chaining baseline of
  Fig. 1 d.
"""

from .asap_alap import (
    ChainedPlacement,
    SchedulingError,
    alap_chained,
    asap_chained,
    asap_cycles_needed,
    mobility_windows,
)
from .chaining import BlcScheduleResult, schedule_bit_level_chaining
from .fragment_scheduler import (
    FragmentSchedulerOptions,
    schedule_fragments,
    verify_budget,
)
from .list_scheduler import (
    ClockSearchResult,
    list_schedule,
    minimize_clock_period,
    schedule_conventional,
)

__all__ = [
    "BlcScheduleResult",
    "ChainedPlacement",
    "ClockSearchResult",
    "FragmentSchedulerOptions",
    "SchedulingError",
    "alap_chained",
    "asap_chained",
    "asap_cycles_needed",
    "list_schedule",
    "minimize_clock_period",
    "mobility_windows",
    "schedule_bit_level_chaining",
    "schedule_conventional",
    "schedule_fragments",
    "verify_budget",
]
