"""Bit-level chaining (BLC) baseline scheduler.

Fig. 1 d of the paper shows the fully chained implementation of the
motivational example: all the data-dependent additions execute in a single
cycle, exploiting the rippling effect so that the cycle only needs to be as
long as the bit-level critical path (18 chained 1-bit additions for the three
16-bit additions) instead of the sum of the operation delays (48).  It is the
minimum-execution-time / maximum-area corner the optimized specification is
compared against in Table I.

The scheduler here generalises that baseline to any latency: operations are
placed at the cycle in which their *last* result bit becomes available under a
bit-level ASAP schedule whose budget is the smallest that fits the latency.
With ``latency=1`` this degenerates to the classic fully chained datapath of
Fig. 1 d.  Because an operation's earlier bits may well be produced in earlier
cycles, the reported per-cycle depths use the same bit-level timing analysis
as the optimized flow; what distinguishes BLC from the paper's method is that
the *specification* is untouched, so functional units cannot be shared or
narrowed and every operation still needs a full-width unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ir.spec import Specification
from ..schedule import Schedule
from .asap_alap import SchedulingError


@dataclass(frozen=True)
class BlcScheduleResult:
    """Schedule plus the chained-bit budget the BLC placement settled on."""

    schedule: Schedule
    chained_bits_per_cycle: int
    critical_path_bits: int


def schedule_bit_level_chaining(
    specification: Specification,
    latency: int = 1,
) -> BlcScheduleResult:
    """Schedule with bit-level chaining and no specification transformation."""
    if latency <= 0:
        raise SchedulingError(f"latency must be positive, got {latency}")
    from ...core.fragmentation import minimum_feasible_budget
    import math

    bit_graph = specification.bit_dependency_graph()
    critical = bit_graph.critical_depth()
    if critical == 0:
        schedule = Schedule(specification, latency)
        for operation in specification.operations:
            schedule.assign(operation, 1)
        return BlcScheduleResult(schedule, 0, 0)
    starting_budget = math.ceil(critical / latency)
    budget, bit_schedule, graph = minimum_feasible_budget(
        specification, latency, starting_budget, graph=bit_graph
    )

    schedule = Schedule(specification, latency)
    op_graph = specification.dataflow_graph()
    for operation in op_graph.topological_order():
        if operation.is_additive and operation.width > 0:
            last_bit = graph.node(operation, operation.width - 1)
            cycle = bit_schedule.asap_cycle(last_bit)
        else:
            cycle = 1
            for predecessor in op_graph.predecessors(operation):
                cycle = max(cycle, schedule.cycle_of.get(predecessor, 1))
        schedule.assign(operation, min(cycle, latency))
    schedule.check_precedence(op_graph)
    return BlcScheduleResult(schedule, budget, critical)
