"""Conventional HLS substrate: scheduling, allocation, binding, datapath.

This package replaces Synopsys Behavioral Compiler (scheduling, allocation,
binding) and the structural side of Design Compiler in the paper's
experimental flow.  See DESIGN.md for the substitution rationale.
"""

from .controller import (
    ControllerEstimate,
    ControllerSynthesis,
    estimate_controller,
    synthesize_controller,
)
from .datapath import Datapath, build_datapath
from .flow import (
    FlowMode,
    FlowModeLike,
    HlsFlow,
    SynthesisResult,
    resolve_budget,
    run_schedule,
    run_timing,
    synthesize,
)
from .schedule import Schedule, ScheduleError
from .timing import (
    CycleTiming,
    analyze_bit_level,
    analyze_operation_level,
    bit_level_cycle_depths,
    operation_level_cycle_delays,
)
from .allocation import (
    FunctionalUnitAllocation,
    FunctionalUnitInstance,
    InterconnectEstimate,
    MultiplexerRequirement,
    RegisterAllocation,
    RegisterInstance,
    ValueGroup,
    allocate_functional_units,
    allocate_registers,
    analyze_lifetimes,
    estimate_interconnect,
)
from .scheduling import (
    BlcScheduleResult,
    ClockSearchResult,
    FragmentSchedulerOptions,
    SchedulingError,
    minimize_clock_period,
    schedule_bit_level_chaining,
    schedule_conventional,
    schedule_fragments,
    verify_budget,
)

__all__ = [
    "BlcScheduleResult",
    "ClockSearchResult",
    "ControllerEstimate",
    "ControllerSynthesis",
    "CycleTiming",
    "Datapath",
    "FlowMode",
    "FlowModeLike",
    "FragmentSchedulerOptions",
    "FunctionalUnitAllocation",
    "FunctionalUnitInstance",
    "HlsFlow",
    "InterconnectEstimate",
    "MultiplexerRequirement",
    "RegisterAllocation",
    "RegisterInstance",
    "Schedule",
    "ScheduleError",
    "SchedulingError",
    "SynthesisResult",
    "ValueGroup",
    "allocate_functional_units",
    "allocate_registers",
    "analyze_bit_level",
    "analyze_lifetimes",
    "analyze_operation_level",
    "bit_level_cycle_depths",
    "build_datapath",
    "estimate_controller",
    "estimate_interconnect",
    "minimize_clock_period",
    "operation_level_cycle_delays",
    "resolve_budget",
    "run_schedule",
    "run_timing",
    "schedule_bit_level_chaining",
    "schedule_conventional",
    "schedule_fragments",
    "synthesize",
    "synthesize_controller",
    "verify_budget",
]
