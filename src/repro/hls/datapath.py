"""The assembled RTL datapath and its area breakdown.

A :class:`Datapath` bundles the outcome of allocation and binding -- the
functional units, registers, interconnect and controller of one synthesized
implementation -- and exposes the area breakdown in the exact categories the
paper's Table I and Fig. 3 h report: functional units, registers, routing,
controller, datapath (FU + registers + routing) and total.
"""

from __future__ import annotations

import dataclasses
import weakref
from dataclasses import dataclass
from typing import Dict, Tuple

from ..techlib.library import TechnologyLibrary
from .allocation.functional_units import (
    FunctionalUnitAllocation,
    allocate_functional_units,
)
from .allocation.interconnect import InterconnectEstimate, estimate_interconnect
from .allocation.registers import RegisterAllocation, allocate_registers
from .controller import ControllerEstimate, estimate_controller
from .schedule import Schedule


@dataclass
class Datapath:
    """One synthesized implementation's structural resources."""

    schedule: Schedule
    functional_units: FunctionalUnitAllocation
    registers: RegisterAllocation
    interconnect: InterconnectEstimate
    controller: ControllerEstimate

    # ------------------------------------------------------------------
    @property
    def fu_area(self) -> float:
        return self.functional_units.total_area

    @property
    def register_area(self) -> float:
        return self.registers.total_area

    @property
    def routing_area(self) -> float:
        return self.interconnect.total_area

    @property
    def controller_area(self) -> float:
        return self.controller.area_gates

    @property
    def datapath_area(self) -> float:
        """Functional units plus storage plus steering (no controller)."""
        return self.fu_area + self.register_area + self.routing_area

    @property
    def total_area(self) -> float:
        return self.datapath_area + self.controller_area

    # ------------------------------------------------------------------
    def area_breakdown(self) -> Dict[str, float]:
        """The Table I style breakdown as a plain dictionary."""
        return {
            "functional_units": self.fu_area,
            "registers": self.register_area,
            "routing": self.routing_area,
            "controller": self.controller_area,
            "datapath": self.datapath_area,
            "total": self.total_area,
        }

    def describe(self) -> str:
        lines = [
            self.functional_units.describe(),
            self.registers.describe(),
            self.interconnect.describe(),
            self.controller.describe(),
            f"datapath area: {self.datapath_area:.0f} gates, "
            f"total area: {self.total_area:.0f} gates",
        ]
        return "\n".join(lines)


#: Finished datapaths shared per specification: ``spec -> (version,
#: {(latency, schedule signature, library): Datapath})``.  Allocation,
#: binding and the area estimates are pure functions of (specification,
#: cycle assignment, library), so two sweep points whose schedules hash
#: identically -- e.g. full-pipeline sweeps past the latency where the
#: schedule saturates -- reuse one allocation instead of re-binding.  Unlike
#: the skeleton memos above, this is a whole-stage *result* cache: the perf
#: harness clears it between repeats so the recorded ``allocate`` time
#: reflects real allocator work (see :mod:`repro.perf.harness`).
_DATAPATH_MEMO: "weakref.WeakKeyDictionary[Specification, Tuple[int, Dict[Tuple, Datapath]]]" = (
    weakref.WeakKeyDictionary()
)

#: Per-specification entry cap; a latency sweep stays far below this.
_DATAPATH_MEMO_LIMIT = 128


def clear_datapath_memo() -> None:
    """Drop every memoized datapath (perf-measurement / test isolation hook)."""
    _DATAPATH_MEMO.clear()


def _schedule_signature(schedule: Schedule) -> Tuple:
    """A hashable digest of the cycle assignment, in operation order."""
    cycle_of = schedule.cycle_of
    return tuple(cycle_of.get(op) for op in schedule.specification.operations)


def build_datapath(
    schedule: Schedule, library: TechnologyLibrary, reuse: bool = True
) -> Datapath:
    """Run allocation, binding and estimation for a scheduled specification.

    With ``reuse=True`` (the default) the finished datapath is memoized per
    (specification, cycle assignment, library) and replayed for schedules
    that hash identically; the returned copy carries the caller's schedule
    object, everything else is shared (allocations are read-only downstream).
    """
    specification = schedule.specification
    key = None
    if reuse:
        key = (schedule.latency, _schedule_signature(schedule), library)
        cached = _DATAPATH_MEMO.get(specification)
        if cached is not None and cached[0] == specification.version:
            hit = cached[1].get(key)
            if hit is not None:
                if hit.schedule is schedule:
                    return hit
                return dataclasses.replace(hit, schedule=schedule)
    functional_units = allocate_functional_units(schedule, library)
    registers = allocate_registers(schedule, library)
    interconnect = estimate_interconnect(schedule, functional_units, registers, library)
    controller = estimate_controller(schedule, registers, interconnect, library)
    datapath = Datapath(
        schedule=schedule,
        functional_units=functional_units,
        registers=registers,
        interconnect=interconnect,
        controller=controller,
    )
    if key is not None:
        cached = _DATAPATH_MEMO.get(specification)
        if cached is None or cached[0] != specification.version:
            entries: Dict[Tuple, Datapath] = {}
            _DATAPATH_MEMO[specification] = (specification.version, entries)
        else:
            entries = cached[1]
        if len(entries) >= _DATAPATH_MEMO_LIMIT:
            entries.clear()
        entries[key] = datapath
    return datapath
