"""The assembled RTL datapath and its area breakdown.

A :class:`Datapath` bundles the outcome of allocation and binding -- the
functional units, registers, interconnect and controller of one synthesized
implementation -- and exposes the area breakdown in the exact categories the
paper's Table I and Fig. 3 h report: functional units, registers, routing,
controller, datapath (FU + registers + routing) and total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..techlib.library import TechnologyLibrary
from .allocation.functional_units import (
    FunctionalUnitAllocation,
    allocate_functional_units,
)
from .allocation.interconnect import InterconnectEstimate, estimate_interconnect
from .allocation.registers import RegisterAllocation, allocate_registers
from .controller import ControllerEstimate, estimate_controller
from .schedule import Schedule


@dataclass
class Datapath:
    """One synthesized implementation's structural resources."""

    schedule: Schedule
    functional_units: FunctionalUnitAllocation
    registers: RegisterAllocation
    interconnect: InterconnectEstimate
    controller: ControllerEstimate

    # ------------------------------------------------------------------
    @property
    def fu_area(self) -> float:
        return self.functional_units.total_area

    @property
    def register_area(self) -> float:
        return self.registers.total_area

    @property
    def routing_area(self) -> float:
        return self.interconnect.total_area

    @property
    def controller_area(self) -> float:
        return self.controller.area_gates

    @property
    def datapath_area(self) -> float:
        """Functional units plus storage plus steering (no controller)."""
        return self.fu_area + self.register_area + self.routing_area

    @property
    def total_area(self) -> float:
        return self.datapath_area + self.controller_area

    # ------------------------------------------------------------------
    def area_breakdown(self) -> Dict[str, float]:
        """The Table I style breakdown as a plain dictionary."""
        return {
            "functional_units": self.fu_area,
            "registers": self.register_area,
            "routing": self.routing_area,
            "controller": self.controller_area,
            "datapath": self.datapath_area,
            "total": self.total_area,
        }

    def describe(self) -> str:
        lines = [
            self.functional_units.describe(),
            self.registers.describe(),
            self.interconnect.describe(),
            self.controller.describe(),
            f"datapath area: {self.datapath_area:.0f} gates, "
            f"total area: {self.total_area:.0f} gates",
        ]
        return "\n".join(lines)


def build_datapath(schedule: Schedule, library: TechnologyLibrary) -> Datapath:
    """Run allocation, binding and estimation for a scheduled specification."""
    functional_units = allocate_functional_units(schedule, library)
    registers = allocate_registers(schedule, library)
    interconnect = estimate_interconnect(schedule, functional_units, registers, library)
    controller = estimate_controller(schedule, registers, interconnect, library)
    return Datapath(
        schedule=schedule,
        functional_units=functional_units,
        registers=registers,
        interconnect=interconnect,
        controller=controller,
    )
