"""Schedule representation shared by every scheduler in the HLS substrate.

A :class:`Schedule` maps every operation of a specification to the clock
cycle (1-based) it executes in.  Glue-logic operations are also given a cycle
(the cycle of their latest producer) so that downstream analyses -- register
lifetimes, interconnect estimation -- can reason uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.dfg import DataFlowGraph
from ..ir.operations import Operation
from ..ir.spec import Specification


class ScheduleError(ValueError):
    """Raised for inconsistent schedules (precedence violations, bad cycles)."""


@dataclass
class Schedule:
    """An assignment of operations to clock cycles."""

    specification: Specification
    latency: int
    cycle_of: Dict[Operation, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ScheduleError(f"latency must be positive, got {self.latency}")
        # Assignment version and derived-timing memo: the scheduler's budget
        # verification and the timing pass analyse the same finished
        # schedule, so the per-cycle delay/depth maps are cached here keyed
        # by (version, analysis key) and invalidated by any assignment.
        self._version = 0
        self._timing_cache: Dict[object, object] = {}

    # ------------------------------------------------------------------
    def assign(self, operation: Operation, cycle: int) -> None:
        if not (1 <= cycle <= self.latency):
            raise ScheduleError(
                f"cycle {cycle} outside [1, {self.latency}] for {operation.name}"
            )
        self.cycle_of[operation] = cycle
        self._version += 1
        if self._timing_cache:
            self._timing_cache.clear()

    def cached_analysis(self, key: object, compute):
        """Memoize a schedule-derived analysis until the next assignment."""
        cached = self._timing_cache.get(key)
        if cached is None:
            cached = compute()
            self._timing_cache[key] = cached
        return cached

    def store_analysis(self, key: object, value) -> None:
        """Replace a memoized analysis (callers re-validating a stale hit)."""
        self._timing_cache[key] = value

    def cycle(self, operation: Operation) -> int:
        try:
            return self.cycle_of[operation]
        except KeyError:
            raise ScheduleError(f"operation {operation.name} is not scheduled") from None

    def is_complete(self) -> bool:
        """True when every operation of the specification has a cycle."""
        return all(op in self.cycle_of for op in self.specification.operations)

    def operations_in_cycle(self, cycle: int) -> List[Operation]:
        return [
            op
            for op in self.specification.operations
            if self.cycle_of.get(op) == cycle
        ]

    def additive_operations_in_cycle(self, cycle: int) -> List[Operation]:
        return [op for op in self.operations_in_cycle(cycle) if op.is_additive]

    def cycles(self) -> range:
        return range(1, self.latency + 1)

    def used_cycles(self) -> int:
        """Highest cycle actually containing an operation."""
        if not self.cycle_of:
            return 0
        return max(self.cycle_of.values())

    # ------------------------------------------------------------------
    def check_precedence(self, graph: Optional[DataFlowGraph] = None) -> None:
        """Raise :class:`ScheduleError` on any dependency scheduled backwards.

        Producers must execute no later than their consumers; executing in the
        *same* cycle is allowed (operation chaining / bit-level chaining), the
        timing analyses decide whether the resulting chains fit the cycle.
        """
        if graph is None:
            graph = self.specification.dataflow_graph()
        for operation in self.specification.operations:
            if operation not in self.cycle_of:
                raise ScheduleError(f"operation {operation.name} is not scheduled")
            for predecessor in graph.predecessors(operation):
                if self.cycle_of[predecessor] > self.cycle_of[operation]:
                    raise ScheduleError(
                        f"{predecessor.name} (cycle {self.cycle_of[predecessor]}) "
                        f"feeds {operation.name} (cycle {self.cycle_of[operation]})"
                    )

    def check_bit_precedence(self, bit_graph) -> None:
        """Bit-level precedence check for bit-chained (fragmented) schedules.

        Glue logic is pure wiring whose different bits may effectively belong
        to different cycles, so the operation-level check is too strict for
        transformed specifications; the correct requirement is that every
        additive result bit is computed no earlier than the additive result
        bits it depends on (tracing through glue), which is what this checks.

        The happy path runs over the bit graph's cached operation-level
        producer projection (a producer scheduled after a consumer at the
        operation level is exactly a violated bit pair); only an actual
        violation re-walks the bits to name the offending pair.
        """
        for operation, producers in bit_graph.operation_predecessors().items():
            consumer_cycle = self.cycle(operation)
            for producer in producers:
                if self.cycle(producer) > consumer_cycle:
                    self._raise_bit_violation(bit_graph, operation)
        return

    def _raise_bit_violation(self, bit_graph, operation: Operation) -> None:
        """Locate and report one violated bit dependency of *operation*."""
        consumer_cycle = self.cycle(operation)
        for node in bit_graph.nodes:
            if node.operation is not operation:
                continue
            for predecessor in bit_graph.predecessors(node):
                producer_cycle = self.cycle(predecessor.operation)
                if producer_cycle > consumer_cycle:
                    raise ScheduleError(
                        f"bit {predecessor} (cycle {producer_cycle}) feeds "
                        f"bit {node} (cycle {consumer_cycle})"
                    )
        raise ScheduleError(  # pragma: no cover - projection and bits agree
            f"operation {operation.name} violates a bit-level dependency"
        )

    def describe(self) -> str:
        lines = [f"schedule of {self.specification.name} over {self.latency} cycles"]
        for cycle in self.cycles():
            ops = self.operations_in_cycle(cycle)
            names = ", ".join(op.name for op in ops) or "(idle)"
            lines.append(f"  cycle {cycle}: {names}")
        return "\n".join(lines)

    def copy(self) -> "Schedule":
        return Schedule(self.specification, self.latency, dict(self.cycle_of))
