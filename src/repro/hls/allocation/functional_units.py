"""Functional-unit allocation and binding.

Operations scheduled in the *same* cycle cannot share a functional unit (they
are simultaneously active, even when chained); operations in different cycles
can.  How operations are packed onto unit instances decides not only the
functional-unit area but also -- through the number of distinct sources each
unit input sees -- the steering (multiplexer) area of the datapath.

The binder therefore works with *affinity groups*: all fragments of the same
parent operation are kept on the same unit instance whenever their cycles do
not collide.  This is exactly the structure the paper describes for the
optimized motivational example ("every adder is dedicated to calculate just
one addition in the behavioural description"): a dedicated adder reads the
same operand variables every cycle, so its input ports need no multiplexers
at all.  Cross-parent merging of instances is still performed when the adder
area it saves outweighs the estimated multiplexer cost it adds.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...ir.operations import Operation
from ...ir.spec import Specification
from ...techlib.library import FunctionalUnitSpec, TechnologyLibrary
from ..schedule import Schedule


@dataclass(frozen=True)
class FunctionalUnitInstance:
    """One physical functional unit in the datapath."""

    identifier: str
    category: str
    width: int
    area_gates: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.identifier}({self.category}[{self.width}])"


@dataclass
class FunctionalUnitAllocation:
    """Allocated instances plus the operation-to-instance binding."""

    instances: List[FunctionalUnitInstance] = field(default_factory=list)
    binding: Dict[Operation, FunctionalUnitInstance] = field(default_factory=dict)

    @property
    def total_area(self) -> float:
        return sum(instance.area_gates for instance in self.instances)

    def instances_of(self, category: str) -> List[FunctionalUnitInstance]:
        return [i for i in self.instances if i.category == category]

    def operations_on(self, instance: FunctionalUnitInstance) -> List[Operation]:
        return [op for op, bound in self.binding.items() if bound is instance]

    def instance_of(self, operation: Operation) -> Optional[FunctionalUnitInstance]:
        return self.binding.get(operation)

    def describe(self) -> str:
        lines = ["functional units:"]
        for instance in self.instances:
            hosted = ", ".join(op.name for op in self.operations_on(instance))
            lines.append(
                f"  {instance.identifier}: {instance.category}[{instance.width}] "
                f"({instance.area_gates:.0f} gates) <- {hosted}"
            )
        return "\n".join(lines)


def _operation_fu_width(operation: Operation, spec: FunctionalUnitSpec) -> int:
    """Width of the unit an operation needs (its carry chain length)."""
    if spec.category in ("adder", "comparator", "maxmin"):
        return max(operation.max_operand_width(), 1)
    return spec.width


def _affinity_key(operation: Operation) -> str:
    """Operations sharing this key preferentially share one unit instance.

    Fragments carry the kernel operation they descend from in their
    ``parent`` attribute; unfragmented operations are their own group.
    """
    parent = operation.attributes.get("parent")
    if parent:
        return str(parent)
    return operation.name or str(operation.uid)


#: Per-specification binding tables: ``spec -> (version, {library: [(operation,
#: category, unit width, affinity key), ...]})``.  Which unit class an
#: operation executes on and how wide that unit must be are pure functions of
#: the operation under a fixed library, so the per-operation
#: ``functional_unit_for`` / width / affinity lookups are resolved once per
#: (specification, library) and replayed by every binding run of a sweep.
#: ``(flat table, affinity-grouped table)`` per library.  The flat table is
#: ``[(operation, category, width, affinity key), ...]`` in operation order;
#: the grouped table pre-sorts it into the exact iteration order of the
#: affinity binder: ``[(category, [(group, [(width, operation), ...]), ...])]``
#: with categories and groups sorted.
_BindingTables = Tuple[
    List[Tuple[Operation, str, int, str]],
    List[Tuple[str, List[Tuple[str, List[Tuple[int, Operation]]]]]],
]

_BINDING_TABLES: "weakref.WeakKeyDictionary[Specification, Tuple[int, Dict[TechnologyLibrary, _BindingTables]]]" = (
    weakref.WeakKeyDictionary()
)


def _binding_tables(
    specification: Specification, library: TechnologyLibrary
) -> _BindingTables:
    """Unit classes and affinity grouping of every bindable operation.

    Which unit class an operation executes on, how wide that unit must be
    and which affinity group it belongs to are pure functions of the
    operation under a fixed library, so they are resolved once per
    (specification, library) and replayed by every binding run of a sweep.
    """
    cached = _BINDING_TABLES.get(specification)
    if cached is not None and cached[0] == specification.version:
        per_library = cached[1]
    else:
        per_library = {}
        _BINDING_TABLES[specification] = (specification.version, per_library)
    tables = per_library.get(library)
    if tables is None:
        flat: List[Tuple[Operation, str, int, str]] = []
        for operation in specification.operations:
            spec = library.functional_unit_for(operation)
            if spec is None:
                continue
            flat.append(
                (
                    operation,
                    spec.category,
                    _operation_fu_width(operation, spec),
                    _affinity_key(operation),
                )
            )
        nested: Dict[str, Dict[str, List[Tuple[int, Operation]]]] = {}
        for operation, category, width, group in flat:
            nested.setdefault(category, {}).setdefault(group, []).append(
                (width, operation)
            )
        grouped = [
            (category, [(group, groups[group]) for group in sorted(groups)])
            for category, groups in ((c, nested[c]) for c in sorted(nested))
        ]
        tables = (flat, grouped)
        per_library[library] = tables
    return tables


@dataclass
class _Track:
    """A cycle-disjoint set of operations that will share one unit instance."""

    category: str
    width: int
    cycles: Dict[int, Operation] = field(default_factory=dict)

    def conflicts(self, cycles: Dict[int, Operation]) -> bool:
        return any(cycle in self.cycles for cycle in cycles)


def _build_tracks(
    operations: List[Tuple[int, int, Operation]]
) -> List[_Track]:
    """Split one affinity group into cycle-disjoint tracks.

    ``operations`` holds (cycle, width, operation) tuples of a single category
    and affinity group.  Members are packed first-fit onto tracks in cycle
    order, so fragments of one parent -- which execute in successive cycles --
    normally end up on a single track.
    """
    tracks: List[_Track] = []
    for cycle, width, operation in sorted(
        operations, key=lambda item: (item[0], -item[1])
    ):
        placed = False
        for track in tracks:
            if cycle not in track.cycles:
                track.cycles[cycle] = operation
                track.width = max(track.width, width)
                placed = True
                break
        if not placed:
            track = _Track(category="", width=width)
            track.cycles[cycle] = operation
            tracks.append(track)
    return tracks


def allocate_functional_units(
    schedule: Schedule,
    library: TechnologyLibrary,
    affinity: bool = True,
) -> FunctionalUnitAllocation:
    """Allocate and bind functional units for a scheduled specification.

    Parameters
    ----------
    affinity:
        Keep fragments of the same parent on one instance and merge instances
        across parents only when the adder area saved exceeds the estimated
        multiplexer cost (the default).  With ``affinity=False`` the binder
        falls back to plain per-cycle slot assignment, which the binding
        ablation benchmark uses as its baseline.
    """
    allocation = FunctionalUnitAllocation()
    cycle_of = schedule.cycle_of
    flat, grouped = _binding_tables(schedule.specification, library)

    if affinity:
        category_groups = grouped
    else:
        # Per-cycle slot assignment (the binding ablation baseline): the
        # grouping key depends on the schedule, so it is built per run.
        per_category: Dict[str, Dict[str, List[Tuple[int, Operation]]]] = {}
        for operation, category, width, _affinity_key in flat:
            cycle = cycle_of.get(operation)
            if cycle is None:
                cycle = schedule.cycle(operation)  # raises the descriptive error
            per_category.setdefault(category, {}).setdefault(
                f"cycle{cycle}", []
            ).append((width, operation))
        category_groups = [
            (category, [(group, groups[group]) for group in sorted(groups)])
            for category, groups in ((c, per_category[c]) for c in sorted(per_category))
        ]

    gates = library.gates
    for category, group_list in category_groups:
        # Build cycle-disjoint tracks per affinity group.
        tracks: List[_Track] = []
        for _group, members in group_list:
            entries: List[Tuple[int, int, Operation]] = []
            for width, operation in members:
                cycle = cycle_of.get(operation)
                if cycle is None:
                    cycle = schedule.cycle(operation)  # raises the descriptive error
                entries.append((cycle, width, operation))
            group_tracks = _build_tracks(entries)
            for track in group_tracks:
                track.category = category
                tracks.append(track)
        # Pack tracks onto instances, widest first.
        instance_tracks: List[_Track] = []
        for track in sorted(tracks, key=lambda t: -t.width):
            best_index: Optional[int] = None
            best_benefit = 0.0
            for index, existing in enumerate(instance_tracks):
                if existing.conflicts(track.cycles):
                    continue
                merged_width = max(existing.width, track.width)
                adder_saved = track.width * gates.full_adder_area
                mux_cost = 2 * gates.mux2_area_per_bit * merged_width
                growth_cost = (
                    (merged_width - existing.width) * gates.full_adder_area
                )
                benefit = adder_saved - mux_cost - growth_cost
                if benefit > best_benefit:
                    best_benefit = benefit
                    best_index = index
            if best_index is None:
                instance_tracks.append(
                    _Track(category=category, width=track.width, cycles=dict(track.cycles))
                )
            else:
                chosen = instance_tracks[best_index]
                chosen.width = max(chosen.width, track.width)
                chosen.cycles.update(track.cycles)
        # Materialise instances and the binding.
        for slot, track in enumerate(instance_tracks):
            unit_spec = FunctionalUnitSpec(category, track.width)
            instance = FunctionalUnitInstance(
                identifier=f"{category}{slot}",
                category=category,
                width=track.width,
                area_gates=library.functional_unit_area(unit_spec),
            )
            allocation.instances.append(instance)
            for operation in track.cycles.values():
                allocation.binding[operation] = instance

    return allocation
