"""Interconnect (routing) estimation: multiplexers in front of units and registers.

Sharing functional units and registers across cycles requires steering logic:
each functional-unit input port needs a multiplexer wide enough to select
among every distinct source that ever feeds it, and each shared register needs
one to select among its writers.  Table I of the paper itemises exactly these
costs (two 16-bit 3-to-1 multiplexers plus one 16-bit 2-to-1 for the
conventional datapath; six 6-bit 3-to-1 plus five 1-bit 2-to-1 for the
optimized one), so the estimator reproduces that accounting:

* a *source* is an input port, a register, or another functional unit whose
  result is chained combinationally in the same cycle;
* the fan-in of a port is the number of distinct sources across all the
  operations bound to the unit;
* multiplexer width equals the port width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, List, Optional, Set, Tuple

from ...ir.operations import Operation, OpKind
from ...ir.spec import Specification
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule
from .functional_units import FunctionalUnitAllocation, FunctionalUnitInstance
from .registers import RegisterAllocation, ValueGroup, alias_resolver_for

#: a steering source feeding a port: ("port", uid) | ("reg", index) | ("fu", id) | ("const",)
SourceKey = Tuple


@dataclass(frozen=True)
class MultiplexerRequirement:
    """One multiplexer of the datapath."""

    location: str
    fan_in: int
    width: int
    area_gates: float

    @property
    def select_signals(self) -> int:
        """Control bits needed to drive the selector."""
        if self.fan_in <= 1:
            return 0
        return max(1, ceil(log2(self.fan_in)))


@dataclass
class InterconnectEstimate:
    """All multiplexers plus aggregate area and control-signal counts."""

    multiplexers: List[MultiplexerRequirement] = field(default_factory=list)

    @property
    def total_area(self) -> float:
        return sum(mux.area_gates for mux in self.multiplexers)

    @property
    def total_select_signals(self) -> int:
        return sum(mux.select_signals for mux in self.multiplexers)

    def describe(self) -> str:
        lines = ["interconnect:"]
        for mux in self.multiplexers:
            if mux.fan_in <= 1:
                continue
            lines.append(
                f"  {mux.location}: {mux.fan_in}-to-1 x {mux.width} bits "
                f"({mux.area_gates:.0f} gates)"
            )
        return "\n".join(lines)


class _SourceResolver:
    """Maps operand bits to the physical source driving them."""

    def __init__(
        self,
        schedule: Schedule,
        functional_units: FunctionalUnitAllocation,
        registers: RegisterAllocation,
    ) -> None:
        self.schedule = schedule
        self.specification = schedule.specification
        self.functional_units = functional_units
        self.registers = registers
        self.alias = alias_resolver_for(self.specification)
        self._group_register: Dict[Tuple[int, int], int] = {}
        for index, register in enumerate(registers.registers):
            for group in register.groups:
                for bit in range(group.low_bit, group.low_bit + group.width):
                    self._group_register[(group.variable.uid, bit)] = index

    def _bit_source(
        self, consumer_cycle: int, operation: Operation, variable, bit: int
    ) -> SourceKey:
        """Physical source of one operand bit read by *operation*."""
        canonical = self.alias.canonical(variable, bit)
        if canonical is None:
            return ("const", 0)
        variable_uid, canonical_bit = canonical
        definition = self.specification.bit_def_map.get(canonical)
        if definition is None:
            return ("port", variable_uid, canonical_bit)
        producer = definition.operation
        producer_cycle = self.schedule.cycle_of[producer]
        if producer_cycle == consumer_cycle:
            instance = self.functional_units.instance_of(producer)
            if instance is None:
                # Chained (non-wiring) glue logic: the wire comes from that
                # gate's output.
                return ("glue", producer.uid, canonical_bit)
            return ("fu", instance.identifier, canonical_bit)
        register_index = self._group_register.get(canonical)
        if register_index is None:
            # Value crosses a cycle but was not storage-allocated (e.g. it is
            # produced and only consumed by glue); treat as a stable wire.
            return ("wire", variable_uid, canonical_bit)
        return ("reg", register_index, canonical_bit)

    def operand_signature(self, operation: Operation, operand) -> Tuple:
        """The wire bundle an operand is connected to, as a hashable signature.

        Two operands of operations bound to the same unit require a
        multiplexer leg each exactly when their signatures differ: the
        signature identifies, bit by bit (run-length compressed), which
        physical net drives the port.  Reading ``A(5 downto 0)`` in one cycle
        and ``A(11 downto 6)`` in another therefore counts as two sources --
        the 3-to-1 multiplexers of the paper's Table I routing breakdown come
        out of exactly this accounting.
        """
        if not operand.is_variable:
            return (("const", operand.constant.value, operand.width),)
        consumer_cycle = self.schedule.cycle(operation)
        bit_source = self._bit_source
        variable = operand.variable
        runs: List[Tuple] = []
        for bit in operand.range:
            source = bit_source(consumer_cycle, operation, variable, bit)
            head = source[:2]
            position = source[2] if len(source) > 2 else 0
            if runs:
                last_head, last_start, last_length = runs[-1]
                if last_head == head and position == last_start + last_length:
                    runs[-1] = (last_head, last_start, last_length + 1)
                    continue
            runs.append((head, position, 1))
        return tuple(runs)

    def sources_of_operand(self, operation: Operation, operand) -> Set[SourceKey]:
        """Back-compatible wrapper returning the operand's signature as a set."""
        return {self.operand_signature(operation, operand)}


def estimate_interconnect(
    schedule: Schedule,
    functional_units: FunctionalUnitAllocation,
    registers: RegisterAllocation,
    library: TechnologyLibrary,
) -> InterconnectEstimate:
    """Multiplexer requirements of a bound datapath."""
    estimate = InterconnectEstimate()
    resolver = _SourceResolver(schedule, functional_units, registers)

    # Functional-unit input ports.
    for instance in functional_units.instances:
        operations = functional_units.operations_on(instance)
        if not operations:
            continue
        port_sources: Dict[int, Set[SourceKey]] = {}
        carry_sources: Set[SourceKey] = set()
        for operation in operations:
            for port_index, operand in enumerate(operation.operands):
                port_sources.setdefault(port_index, set()).update(
                    resolver.sources_of_operand(operation, operand)
                )
            if operation.carry_in is not None:
                carry_sources.update(
                    resolver.sources_of_operand(operation, operation.carry_in)
                )
        for port_index, sources in sorted(port_sources.items()):
            fan_in = max(1, len(sources))
            estimate.multiplexers.append(
                MultiplexerRequirement(
                    location=f"{instance.identifier}.in{port_index}",
                    fan_in=fan_in,
                    width=instance.width,
                    area_gates=library.multiplexer_area(fan_in, instance.width),
                )
            )
        if carry_sources:
            fan_in = max(1, len(carry_sources))
            estimate.multiplexers.append(
                MultiplexerRequirement(
                    location=f"{instance.identifier}.carry",
                    fan_in=fan_in,
                    width=1,
                    area_gates=library.multiplexer_area(fan_in, 1),
                )
            )

    # Register input ports: one writer per value group stored in the register.
    for index, register in enumerate(registers.registers):
        writer_keys: Set[SourceKey] = set()
        for group in register.groups:
            if group.producer is None:
                continue
            instance = functional_units.instance_of(group.producer)
            if instance is None:
                writer_keys.add(("glue", group.producer.uid))
            else:
                writer_keys.add(("fu", instance.identifier))
        fan_in = max(1, len(writer_keys))
        estimate.multiplexers.append(
            MultiplexerRequirement(
                location=f"reg{index}.in",
                fan_in=fan_in,
                width=register.width,
                area_gates=library.multiplexer_area(fan_in, register.width),
            )
        )
    return estimate
