"""Interconnect (routing) estimation: multiplexers in front of units and registers.

Sharing functional units and registers across cycles requires steering logic:
each functional-unit input port needs a multiplexer wide enough to select
among every distinct source that ever feeds it, and each shared register needs
one to select among its writers.  Table I of the paper itemises exactly these
costs (two 16-bit 3-to-1 multiplexers plus one 16-bit 2-to-1 for the
conventional datapath; six 6-bit 3-to-1 plus five 1-bit 2-to-1 for the
optimized one), so the estimator reproduces that accounting:

* a *source* is an input port, a register, or another functional unit whose
  result is chained combinationally in the same cycle;
* the fan-in of a port is the number of distinct sources across all the
  operations bound to the unit;
* multiplexer width equals the port width.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from math import ceil, log2
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...ir.operations import Operation
from ...ir.spec import Specification
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule
from .functional_units import FunctionalUnitAllocation, FunctionalUnitInstance
from .registers import RegisterAllocation, _resolve_all_bits, alias_resolver_for

#: a steering source feeding a port: ("port", uid) | ("reg", index) | ("fu", id) | ("const",)
SourceKey = Tuple

#: Static run tags of the signature skeleton (see :func:`_signature_skeleton`).
_RUN_CONST = 0
_RUN_PORT = 1
_RUN_PRODUCER = 2

#: One schedule-independent operand run: ``(tag, variable uid, producer
#: operation, first canonical bit, length)``.  ``uid``/``producer`` are
#: ``None`` where the tag makes them meaningless.
_StaticRun = Tuple[int, Optional[int], Optional[Operation], int, int]


@dataclass(frozen=True)
class MultiplexerRequirement:
    """One multiplexer of the datapath."""

    location: str
    fan_in: int
    width: int
    area_gates: float

    @property
    def select_signals(self) -> int:
        """Control bits needed to drive the selector."""
        if self.fan_in <= 1:
            return 0
        return max(1, ceil(log2(self.fan_in)))


@dataclass
class InterconnectEstimate:
    """All multiplexers plus aggregate area and control-signal counts."""

    multiplexers: List[MultiplexerRequirement] = field(default_factory=list)

    @property
    def total_area(self) -> float:
        return sum(mux.area_gates for mux in self.multiplexers)

    @property
    def total_select_signals(self) -> int:
        return sum(mux.select_signals for mux in self.multiplexers)

    def describe(self) -> str:
        lines = ["interconnect:"]
        for mux in self.multiplexers:
            if mux.fan_in <= 1:
                continue
            lines.append(
                f"  {mux.location}: {mux.fan_in}-to-1 x {mux.width} bits "
                f"({mux.area_gates:.0f} gates)"
            )
        return "\n".join(lines)


#: Signature skeletons shared per specification: ``spec -> (version,
#: {(operation uid, slot): static run list})``.  Slot ``i >= 0`` is
#: ``operation.operands[i]``; slot ``-1`` is the carry-in.  Resolving an
#: operand bit down to "constant / port / producing operation" only depends
#: on the specification's wiring, so the per-bit alias walks happen once per
#: specification instead of once per allocation run.
_SIGNATURE_SKELETONS: "weakref.WeakKeyDictionary[Specification, Tuple[int, Dict[Tuple[int, int], List[_StaticRun]]]]" = (
    weakref.WeakKeyDictionary()
)


def _static_runs(specification: Specification, alias, operand) -> List[_StaticRun]:
    """Schedule-independent run decomposition of one variable operand."""
    bit_def_map = specification.bit_def_map
    canonical_of = alias.canonical
    variable = operand.variable
    rng = operand.range
    runs: List[_StaticRun] = []
    for bit in range(rng.lo, rng.hi + 1):
        canonical = canonical_of(variable, bit)
        if canonical is None:
            tag, uid, producer, position = _RUN_CONST, None, None, 0
        else:
            definition = bit_def_map.get(canonical)
            if definition is None:
                tag, uid, producer, position = _RUN_PORT, canonical[0], None, canonical[1]
            else:
                tag, uid, producer, position = (
                    _RUN_PRODUCER,
                    canonical[0],
                    definition.operation,
                    canonical[1],
                )
        if runs:
            last_tag, last_uid, last_producer, last_start, last_length = runs[-1]
            if (
                last_tag == tag
                and last_uid == uid
                and last_producer is producer
                and (tag == _RUN_CONST or position == last_start + last_length)
            ):
                runs[-1] = (last_tag, last_uid, last_producer, last_start, last_length + 1)
                continue
        runs.append((tag, uid, producer, position, 1))
    return runs


def _signature_skeleton(
    specification: Specification,
) -> Dict[Tuple[int, int], List[_StaticRun]]:
    """Static operand runs of every additive operation, memoized per spec."""
    cached = _SIGNATURE_SKELETONS.get(specification)
    if cached is not None and cached[0] == specification.version:
        return cached[1]
    _resolve_all_bits(specification)
    alias = alias_resolver_for(specification)
    skeleton: Dict[Tuple[int, int], List[_StaticRun]] = {}
    for operation in specification.operations:
        if not operation.is_additive:
            continue
        for slot, operand in enumerate(operation.operands):
            if operand.is_variable:
                skeleton[(operation.uid, slot)] = _static_runs(
                    specification, alias, operand
                )
        if operation.carry_in is not None and operation.carry_in.is_variable:
            skeleton[(operation.uid, -1)] = _static_runs(
                specification, alias, operation.carry_in
            )
    _SIGNATURE_SKELETONS[specification] = (specification.version, skeleton)
    return skeleton


class _SourceResolver:
    """Maps operand bits to the physical source driving them."""

    def __init__(
        self,
        schedule: Schedule,
        functional_units: FunctionalUnitAllocation,
        registers: RegisterAllocation,
    ) -> None:
        self.schedule = schedule
        self.specification = schedule.specification
        self.functional_units = functional_units
        self.registers = registers
        self.alias = alias_resolver_for(self.specification)
        self._skeleton = _signature_skeleton(self.specification)
        self._group_register: Dict[Tuple[int, int], int] = {}
        for index, register in enumerate(registers.registers):
            for group in register.groups:
                for bit in range(group.low_bit, group.low_bit + group.width):
                    self._group_register[(group.variable.uid, bit)] = index

    def _bit_source(
        self, consumer_cycle: int, operation: Operation, variable, bit: int
    ) -> SourceKey:
        """Physical source of one operand bit read by *operation*."""
        canonical = self.alias.canonical(variable, bit)
        if canonical is None:
            return ("const", 0)
        variable_uid, canonical_bit = canonical
        definition = self.specification.bit_def_map.get(canonical)
        if definition is None:
            return ("port", variable_uid, canonical_bit)
        producer = definition.operation
        producer_cycle = self.schedule.cycle_of[producer]
        if producer_cycle == consumer_cycle:
            instance = self.functional_units.instance_of(producer)
            if instance is None:
                # Chained (non-wiring) glue logic: the wire comes from that
                # gate's output.
                return ("glue", producer.uid, canonical_bit)
            return ("fu", instance.identifier, canonical_bit)
        register_index = self._group_register.get(canonical)
        if register_index is None:
            # Value crosses a cycle but was not storage-allocated (e.g. it is
            # produced and only consumed by glue); treat as a stable wire.
            return ("wire", variable_uid, canonical_bit)
        return ("reg", register_index, canonical_bit)

    def operand_signature_legacy(self, operation: Operation, operand) -> Tuple:
        """Bit-by-bit signature construction (the pre-fast-path reference)."""
        if not operand.is_variable:
            return (("const", operand.constant.value, operand.width),)
        consumer_cycle = self.schedule.cycle(operation)
        bit_source = self._bit_source
        variable = operand.variable
        runs: List[Tuple] = []
        for bit in operand.range:
            source = bit_source(consumer_cycle, operation, variable, bit)
            head = source[:2]
            position = source[2] if len(source) > 2 else 0
            if runs:
                last_head, last_start, last_length = runs[-1]
                if last_head == head and position == last_start + last_length:
                    runs[-1] = (last_head, last_start, last_length + 1)
                    continue
            runs.append((head, position, 1))
        return tuple(runs)

    def _classified_runs(
        self, consumer_cycle: int, static_runs: Sequence[_StaticRun]
    ) -> List[Tuple]:
        """Static runs -> ``(head, start, length)`` runs for one schedule.

        Produces exactly the runs the per-bit walk produces: classification
        is constant across a static run except for register splitting, and a
        final merge pass re-joins adjacent runs whose heads coincide under
        the current schedule (e.g. two producers bound to one unit).
        """
        cycle_of = self.schedule.cycle_of
        instance_of = self.functional_units.binding.get
        group_register = self._group_register
        pieces: List[Tuple] = []
        for tag, uid, producer, start, length in static_runs:
            if tag == _RUN_CONST:
                # The per-bit walk emits position 0 for every constant bit,
                # so consecutive constant bits never merge.
                pieces.extend((("const", 0), 0, 1) for _ in range(length))
                continue
            if tag == _RUN_PORT:
                pieces.append((("port", uid), start, length))
                continue
            producer_cycle = cycle_of[producer]
            if producer_cycle == consumer_cycle:
                instance = instance_of(producer)
                if instance is None:
                    pieces.append((("glue", producer.uid), start, length))
                else:
                    pieces.append((("fu", instance.identifier), start, length))
                continue
            # Crossing a cycle boundary: split at register-group borders.
            bit = start
            end = start + length
            while bit < end:
                register_index = group_register.get((uid, bit))
                run_start = bit
                bit += 1
                while bit < end and group_register.get((uid, bit)) == register_index:
                    bit += 1
                if register_index is None:
                    pieces.append((("wire", uid), run_start, bit - run_start))
                else:
                    pieces.append((("reg", register_index), run_start, bit - run_start))
        merged: List[Tuple] = []
        for head, start, length in pieces:
            if merged:
                last_head, last_start, last_length = merged[-1]
                if last_head == head and start == last_start + last_length:
                    merged[-1] = (last_head, last_start, last_length + length)
                    continue
            merged.append((head, start, length))
        return merged

    def operand_signature(
        self, operation: Operation, operand, slot: Optional[int] = None
    ) -> Tuple:
        """The wire bundle an operand is connected to, as a hashable signature.

        Two operands of operations bound to the same unit require a
        multiplexer leg each exactly when their signatures differ: the
        signature identifies, bit by bit (run-length compressed), which
        physical net drives the port.  Reading ``A(5 downto 0)`` in one cycle
        and ``A(11 downto 6)`` in another therefore counts as two sources --
        the 3-to-1 multiplexers of the paper's Table I routing breakdown come
        out of exactly this accounting.

        ``slot`` (the operand's index in ``operation.operands``, ``-1`` for
        the carry-in) routes the lookup through the precomputed signature
        skeleton; without it the operand is resolved bit by bit.
        """
        if not operand.is_variable:
            return (("const", operand.constant.value, operand.width),)
        if slot is not None:
            static_runs = self._skeleton.get((operation.uid, slot))
            if static_runs is not None:
                consumer_cycle = self.schedule.cycle(operation)
                return tuple(self._classified_runs(consumer_cycle, static_runs))
        return self.operand_signature_legacy(operation, operand)

    def sources_of_operand(
        self, operation: Operation, operand, slot: Optional[int] = None
    ) -> Set[SourceKey]:
        """Back-compatible wrapper returning the operand's signature as a set."""
        return {self.operand_signature(operation, operand, slot)}


def estimate_interconnect(
    schedule: Schedule,
    functional_units: FunctionalUnitAllocation,
    registers: RegisterAllocation,
    library: TechnologyLibrary,
    engine: str = "runs",
) -> InterconnectEstimate:
    """Multiplexer requirements of a bound datapath.

    ``engine="runs"`` (the default) classifies the precomputed static operand
    runs of the signature skeleton; ``engine="legacy"`` resolves every
    operand bit individually.  Both produce identical estimates -- pinned by
    the property tests in ``tests/hls/test_allocation_fastpath.py``.
    """
    if engine not in ("runs", "legacy"):
        raise ValueError(f"unknown interconnect engine {engine!r}")
    use_skeleton = engine == "runs"
    estimate = InterconnectEstimate()
    resolver = _SourceResolver(schedule, functional_units, registers)

    # Operations hosted per instance, in binding (insertion) order.
    hosted: Dict[FunctionalUnitInstance, List[Operation]] = {}
    for operation, instance in functional_units.binding.items():
        hosted.setdefault(instance, []).append(operation)

    # Functional-unit input ports.
    for instance in functional_units.instances:
        operations = hosted.get(instance, [])
        if not operations:
            continue
        port_sources: Dict[int, Set[SourceKey]] = {}
        carry_sources: Set[SourceKey] = set()
        for operation in operations:
            for port_index, operand in enumerate(operation.operands):
                port_sources.setdefault(port_index, set()).add(
                    resolver.operand_signature(
                        operation, operand, port_index if use_skeleton else None
                    )
                )
            if operation.carry_in is not None:
                carry_sources.add(
                    resolver.operand_signature(
                        operation, operation.carry_in, -1 if use_skeleton else None
                    )
                )
        for port_index, sources in sorted(port_sources.items()):
            fan_in = max(1, len(sources))
            estimate.multiplexers.append(
                MultiplexerRequirement(
                    location=f"{instance.identifier}.in{port_index}",
                    fan_in=fan_in,
                    width=instance.width,
                    area_gates=library.multiplexer_area(fan_in, instance.width),
                )
            )
        if carry_sources:
            fan_in = max(1, len(carry_sources))
            estimate.multiplexers.append(
                MultiplexerRequirement(
                    location=f"{instance.identifier}.carry",
                    fan_in=fan_in,
                    width=1,
                    area_gates=library.multiplexer_area(fan_in, 1),
                )
            )

    # Register input ports: one writer per value group stored in the register.
    for index, register in enumerate(registers.registers):
        writer_keys: Set[SourceKey] = set()
        for group in register.groups:
            if group.producer is None:
                continue
            instance = functional_units.instance_of(group.producer)
            if instance is None:
                writer_keys.add(("glue", group.producer.uid))
            else:
                writer_keys.add(("fu", instance.identifier))
        fan_in = max(1, len(writer_keys))
        estimate.multiplexers.append(
            MultiplexerRequirement(
                location=f"reg{index}.in",
                fan_in=fan_in,
                width=register.width,
                area_gates=library.multiplexer_area(fan_in, register.width),
            )
        )
    return estimate
