"""Register allocation: lifetime analysis and left-edge sharing.

Only values that *cross a cycle boundary* need storage.  The paper leans on
this heavily: in the optimized schedule of the motivational example "most
result bits calculated in every cycle are also consumed in that same cycle",
so only five 1-bit values (two data bits and three carries per boundary, with
the two boundaries sharing registers) ever need flip-flops, against one full
16-bit register for the conventional schedule.

As in the paper's Table I accounting, the dedicated registers that stabilise
input and output ports are excluded ("they coincide in both implementations").

MOVE operations introduced by the specification rewrite are pure renamings of
wires; their destinations are treated as aliases of their sources so that the
same physical value is never counted twice.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...ir.operations import Operation, OpKind
from ...ir.spec import Specification
from ...ir.values import Variable
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule

#: a canonical value bit: (variable uid, bit index) after alias resolution
CanonicalBit = Tuple[int, int]


@dataclass(frozen=True)
class ValueGroup:
    """A run of bits of one variable sharing producer, birth and death cycles."""

    variable: Variable
    low_bit: int
    width: int
    producer: Optional[Operation]
    birth_cycle: int
    death_cycle: int

    @property
    def needs_storage(self) -> bool:
        return self.death_cycle > self.birth_cycle

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        hi = self.low_bit + self.width - 1
        return (
            f"{self.variable.name}[{hi}:{self.low_bit}] "
            f"({self.birth_cycle} -> {self.death_cycle})"
        )


@dataclass
class RegisterInstance:
    """One physical register and the value groups time-sharing it."""

    identifier: str
    width: int
    groups: List[ValueGroup] = field(default_factory=list)
    area_gates: float = 0.0


@dataclass
class RegisterAllocation:
    """All registers of the datapath plus lifetime statistics."""

    registers: List[RegisterInstance] = field(default_factory=list)
    groups: List[ValueGroup] = field(default_factory=list)
    stored_bits: int = 0

    @property
    def total_area(self) -> float:
        return sum(register.area_gates for register in self.registers)

    @property
    def register_count(self) -> int:
        return len(self.registers)

    def register_of(self, group: ValueGroup) -> Optional[RegisterInstance]:
        for register in self.registers:
            if group in register.groups:
                return register
        return None

    def describe(self) -> str:
        lines = [f"registers ({self.register_count}, {self.stored_bits} stored bits):"]
        for register in self.registers:
            stored = ", ".join(str(group) for group in register.groups)
            lines.append(
                f"  {register.identifier}[{register.width}] "
                f"({register.area_gates:.0f} gates) <- {stored}"
            )
        return "\n".join(lines)


#: Glue kinds that are pure wiring: their output bits are the very same nets
#: as their input bits, so storage and steering analyses must not count them
#: as separate values.
_WIRING_KINDS = frozenset({OpKind.MOVE, OpKind.CONCAT, OpKind.SHL, OpKind.SHR})


class _AliasResolver:
    """Resolves wiring-introduced aliases down to the physical producing bit.

    MOVEs, CONCATs and constant shifts introduced by the kernel extraction and
    by the fragment rewrite are renamings of existing nets; the resolver
    follows them (using the same kind-specific bit wiring as the bit-level
    dependency graph) so that every stored or steered bit is attributed to the
    operation that actually computes it.
    """

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self._cache: Dict[CanonicalBit, Optional[CanonicalBit]] = {}
        self._variables: Dict[int, Variable] = {
            variable.uid: variable for variable in specification.variables
        }

    _MISSING = object()

    def canonical(self, variable: Variable, bit: int) -> Optional[CanonicalBit]:
        """Physical (variable uid, bit) behind an IR bit; None for constants.

        Wiring chains are walked iteratively and every intermediate hop is
        memoized (resolution is a pure function of the bit), so each net of
        the specification is resolved at most once however many readers
        consult it.
        """
        from ...ir.dfg import BitDependencyGraph

        cache = self._cache
        missing = self._MISSING
        bit_defs = self.specification.bit_def_map
        glue_source_bits = BitDependencyGraph.glue_source_bits
        key = (variable.uid, bit)
        chain: List[CanonicalBit] = []
        resolved: Optional[CanonicalBit] = None
        depth = 0
        while True:
            hit = cache.get(key, missing)
            if hit is not missing:
                resolved = hit
                break
            chain.append(key)
            if depth > 64:
                # Cut off by the cycle guard: return the best answer for
                # THIS walk but cache nothing -- entries computed under a
                # partly spent depth budget must not be served to later
                # shallow callers.
                return key
            definition = bit_defs.get(key)
            if definition is None:
                resolved = key
                break
            operation = definition.operation
            if operation.kind not in _WIRING_KINDS:
                resolved = key
                break
            sources = glue_source_bits(operation, definition.result_bit)
            if not sources:
                # No driving operand (e.g. a shifted-in zero): constant bit.
                resolved = None
                break
            operand, position = sources[0]
            if not operand.is_variable:
                resolved = None
                break
            key = (operand.variable.uid, operand.range.lo + position)
            depth += 1
        for visited in chain:
            cache[visited] = resolved
        return resolved

    def variable_of(self, canonical: CanonicalBit) -> Variable:
        return self._variables[canonical[0]]


#: Alias resolvers shared per specification (weakly keyed, version guarded).
#: Alias resolution depends only on the specification's wiring -- not on the
#: schedule -- so the register and interconnect analyses of one run, and all
#: the runs of a latency sweep over one shared workload instance, reuse the
#: same resolved cache instead of re-walking the glue per pass.
_RESOLVERS: "weakref.WeakKeyDictionary[Specification, Tuple[int, _AliasResolver]]" = (
    weakref.WeakKeyDictionary()
)


def alias_resolver_for(specification: Specification) -> _AliasResolver:
    """The shared :class:`_AliasResolver` of a specification."""
    cached = _RESOLVERS.get(specification)
    if cached is not None and cached[0] == specification.version:
        return cached[1]
    resolver = _AliasResolver(specification)
    _RESOLVERS[specification] = (specification.version, resolver)
    return resolver


#: Storage-source resolutions shared per specification, same contract as the
#: alias resolvers: the resolution is schedule-independent.
_STORAGE_SOURCES: "weakref.WeakKeyDictionary[Specification, Tuple[int, Dict[Tuple[int, int], List[CanonicalBit]]]]" = (
    weakref.WeakKeyDictionary()
)


def _storage_source_cache(
    specification: Specification,
) -> Dict[Tuple[int, int], List[CanonicalBit]]:
    cached = _STORAGE_SOURCES.get(specification)
    if cached is not None and cached[0] == specification.version:
        return cached[1]
    cache: Dict[Tuple[int, int], List[CanonicalBit]] = {}
    _STORAGE_SOURCES[specification] = (specification.version, cache)
    return cache


def _storage_sources(
    specification: Specification,
    variable: Variable,
    bit: int,
    _depth: int = 0,
    _memo: Optional[Dict[Tuple[int, int], List[CanonicalBit]]] = None,
) -> List[CanonicalBit]:
    """The additive result bits that must be *stored* for a read of this bit.

    Glue logic of every kind (wiring as well as gates such as the partial
    product ANDs of a decomposed multiplication) is combinational and can be
    replicated next to its consumer, so what actually occupies a register when
    a glue output is consumed in a later cycle is the glue's transitive
    non-glue inputs -- additive operation results.  Input-port bits need no
    datapath register (the paper excludes the dedicated I/O registers from its
    accounting), so they resolve to nothing.

    ``_memo`` memoizes every intermediate bit of the walk (the resolution is
    a pure function of the bit), which turns the wide shared fan-ins of the
    transformed specifications from repeated tree walks into single lookups.
    A walk cut off by the recursion guard caches nothing on its path, so a
    depth-truncated source list is never served to a shallow caller.
    """
    sources, _complete = _storage_sources_inner(
        specification, variable, bit, _depth, _memo
    )
    return sources


def _storage_sources_inner(
    specification: Specification,
    variable: Variable,
    bit: int,
    depth: int,
    memo: Optional[Dict[Tuple[int, int], List[CanonicalBit]]],
) -> Tuple[List[CanonicalBit], bool]:
    if depth > 64:
        return [], False
    key = (variable.uid, bit)
    if memo is not None:
        cached = memo.get(key)
        if cached is not None:
            return cached, True
    complete = True
    definition = specification.bit_def_map.get(key)
    if definition is None:
        sources: List[CanonicalBit] = []
    elif definition.operation.is_additive:
        sources = [key]
    else:
        from ...ir.dfg import BitDependencyGraph

        sources = []
        for operand, position in BitDependencyGraph.glue_source_bits(
            definition.operation, definition.result_bit
        ):
            if not operand.is_variable:
                continue
            traced, traced_complete = _storage_sources_inner(
                specification,
                operand.variable,
                operand.range.lo + position,
                depth + 1,
                memo,
            )
            sources.extend(traced)
            complete = complete and traced_complete
    if memo is not None and complete:
        memo[key] = sources
    return sources, complete


#: Specifications whose alias/storage caches were filled by the forward
#: resolver pass, with the structure version they were filled at.
_RESOLVED_SPECS: "weakref.WeakKeyDictionary[Specification, int]" = (
    weakref.WeakKeyDictionary()
)


def _resolve_all_bits(specification: Specification) -> None:
    """Resolve alias canonicals and storage sources of every written bit.

    The memoized per-bit walkers (:meth:`_AliasResolver.canonical`,
    :func:`_storage_sources`) resolve exactly the bits their callers touch,
    one recursive walk at a time; on a freshly transformed specification the
    allocation stage touches essentially *every* bit, so the walk overhead
    (call frames, depth guards, per-bit wiring dispatch) dominates.  This
    pass computes both resolutions for all bits in one forward sweep over the
    operations -- a bit's sources are defined in terms of already-visited
    bits, so each lookup is a plain dictionary hit -- and fills the same
    shared caches the walkers use.  Out-of-order reads (a glue operation
    reading a bit written later) fall back to the recursive walkers, so the
    results are identical whatever the operation order.
    """
    version = _RESOLVED_SPECS.get(specification)
    if version == specification.version:
        return
    resolver = alias_resolver_for(specification)
    canon_cache = resolver._cache
    storage = _storage_source_cache(specification)
    bit_def_map = specification.bit_def_map
    missing = _AliasResolver._MISSING
    empty: List[CanonicalBit] = []
    variables = {variable.uid: variable for variable in specification.variables}
    for operation in specification.operations:
        destination = operation.destination
        uid = destination.variable.uid
        destination_range = destination.range
        lo = destination_range.lo
        width = destination_range.hi - lo + 1
        if operation.is_additive:
            for bit in range(lo, lo + width):
                key = (uid, bit)
                canon_cache.setdefault(key, key)
                storage.setdefault(key, [key])
            continue
        kind = operation.kind
        wiring = kind in _WIRING_KINDS
        # Per-bit rows of absolute source keys (``False`` marks a constant
        # operand bit); the bodies mirror ``glue_source_bits`` per kind.
        slots = []
        for operand in operation.all_read_operands():
            source = operand.source
            rng = operand.range
            if isinstance(source, Variable):
                slots.append((source.uid, rng.lo, rng.hi - rng.lo + 1))
            else:
                slots.append((None, rng.lo, rng.hi - rng.lo + 1))
        if kind is OpKind.CONCAT:
            pair_rows: List[List] = [[] for _ in range(width)]
            offset = 0
            for source_uid, source_lo, source_width in slots:
                for position in range(source_width):
                    rbit = offset + position
                    if rbit >= width:
                        break
                    pair_rows[rbit].append(
                        (source_uid, source_lo + position)
                        if source_uid is not None
                        else False
                    )
                offset += source_width
        elif kind is OpKind.SHL or kind is OpKind.SHR:
            shift = int(operation.attributes.get("shift", 0))
            if kind is OpKind.SHR:
                shift = -shift
            source_uid, source_lo, source_width = slots[0]
            pair_rows = []
            for rbit in range(width):
                position = rbit - shift
                if 0 <= position < source_width:
                    pair_rows.append(
                        [(source_uid, source_lo + position)]
                        if source_uid is not None
                        else [False]
                    )
                else:
                    pair_rows.append([])
        elif kind is OpKind.SELECT:
            condition, if_true, if_false = slots[0], slots[1], slots[2]
            pair_rows = []
            for rbit in range(width):
                row = [
                    (condition[0], condition[1]) if condition[0] is not None else False
                ]
                if rbit < if_true[2]:
                    row.append(
                        (if_true[0], if_true[1] + rbit)
                        if if_true[0] is not None
                        else False
                    )
                if rbit < if_false[2]:
                    row.append(
                        (if_false[0], if_false[1] + rbit)
                        if if_false[0] is not None
                        else False
                    )
                pair_rows.append(row)
        else:
            # MOVE, NOT, AND, OR, XOR and any other position-aligned glue.
            pair_rows = [
                [
                    (source_uid, source_lo + rbit) if source_uid is not None else False
                    for source_uid, source_lo, source_width in slots
                    if rbit < source_width
                ]
                for rbit in range(width)
            ]
        for rbit in range(width):
            key = (uid, lo + rbit)
            pairs = pair_rows[rbit]
            # Alias canonical: wiring kinds follow their single driving
            # operand; other glue is a real gate, canonical in itself.
            if not wiring:
                canon_cache.setdefault(key, key)
            else:
                if not pairs or pairs[0] is False:
                    canonical = None
                else:
                    source_key = pairs[0]
                    hit = canon_cache.get(source_key, missing)
                    if hit is not missing:
                        canonical = hit
                    elif source_key in bit_def_map:
                        # Forward reference: defer to the recursive walker.
                        canonical = resolver.canonical(
                            variables[source_key[0]], source_key[1]
                        )
                    else:
                        canonical = source_key
                        canon_cache[source_key] = source_key
                canon_cache.setdefault(key, canonical)
            # Storage sources: splice the already-resolved source lists.
            sources: List[CanonicalBit] = []
            for source_key in pairs:
                if source_key is False:
                    continue
                resolved = storage.get(source_key)
                if resolved is None:
                    if source_key in bit_def_map:
                        resolved = _storage_sources(
                            specification,
                            variables[source_key[0]],
                            source_key[1],
                            _memo=storage,
                        )
                    else:
                        resolved = empty
                        storage[source_key] = resolved
                sources.extend(resolved)
            storage.setdefault(key, sources)
    _RESOLVED_SPECS[specification] = specification.version


@dataclass
class _LifetimeSkeleton:
    """Schedule-independent lifetime structure of one specification.

    ``analyze_lifetimes`` used to re-walk every operand bit of every additive
    operation through the glue on each call; everything about those walks
    except the cycle numbers is a pure function of the specification's
    wiring.  The skeleton precomputes it once per specification:

    * ``births`` -- ``(operation, variable, uid, low bit, width)`` of every
      additive destination slice (the bits that can ever occupy a register);
    * ``read_sources`` -- per additive operation, the *deduplicated* tuple of
      canonical additive result bits it reads transitively through glue.

    With the skeleton, one lifetime analysis is a linear scan over the
    additive operations: births are interval assignments, deaths are
    max-updates over the precomputed source tuples, and the value groups
    fall out of splitting each destination interval where the death cycle
    changes (birth and producer are constant across one destination).
    """

    births: List[Tuple[Operation, Variable, int, int, int]] = field(
        default_factory=list
    )
    read_sources: List[Tuple[Operation, Tuple[CanonicalBit, ...]]] = field(
        default_factory=list
    )


_LIFETIME_SKELETONS: "weakref.WeakKeyDictionary[Specification, Tuple[int, _LifetimeSkeleton]]" = (
    weakref.WeakKeyDictionary()
)


def _lifetime_skeleton(specification: Specification) -> _LifetimeSkeleton:
    """The shared lifetime skeleton of a specification (version guarded)."""
    cached = _LIFETIME_SKELETONS.get(specification)
    if cached is not None and cached[0] == specification.version:
        return cached[1]
    _resolve_all_bits(specification)
    skeleton = _LifetimeSkeleton()
    cache = _storage_source_cache(specification)
    for operation in specification.operations:
        if not operation.is_additive:
            continue
        destination = operation.destination
        skeleton.births.append(
            (
                operation,
                destination.variable,
                destination.variable.uid,
                destination.range.lo,
                destination.range.width,
            )
        )
        sources: List[CanonicalBit] = []
        seen = set()
        for operand in operation.all_read_operands():
            source = operand.source
            if not isinstance(source, Variable):
                continue
            rng = operand.range
            source_uid = source.uid
            for bit in range(rng.lo, rng.hi + 1):
                key = (source_uid, bit)
                resolved = cache.get(key)
                if resolved is None:
                    resolved = _storage_sources(specification, source, bit, _memo=cache)
                for canonical in resolved:
                    if canonical not in seen:
                        seen.add(canonical)
                        sources.append(canonical)
        if sources:
            skeleton.read_sources.append((operation, tuple(sources)))
    _LIFETIME_SKELETONS[specification] = (specification.version, skeleton)
    return skeleton


def lifetime_skeleton(specification: Specification) -> _LifetimeSkeleton:
    """The schedule-independent lifetime structure of a specification.

    Public entry point for consumers outside the register allocator (the
    RTL emitter derives same-cycle chaining and storage placement from the
    same births/read-sources the allocation uses, so the emitted design
    stores exactly the allocated bits).
    """
    return _lifetime_skeleton(specification)


def storage_sources(
    specification: Specification, variable: Variable, bit: int
) -> List[CanonicalBit]:
    """The additive result bits that must be stored for a read of this bit.

    Public, shared-cache wrapper over the storage-source walk -- the
    contract between the register allocator (death cycles, value groups)
    and the RTL emitter (glue replication, output capture).
    """
    return _storage_sources(
        specification, variable, bit, _memo=_storage_source_cache(specification)
    )


def analyze_lifetimes(schedule: Schedule, engine: str = "interval") -> List[ValueGroup]:
    """Birth/death cycles of every produced value bit, grouped into runs.

    ``engine="interval"`` (the default) runs over the precomputed
    :class:`_LifetimeSkeleton`; ``engine="legacy"`` re-walks every operand
    bit the way the pre-fast-path implementation did.  Both produce
    identical group lists -- pinned by the property tests in
    ``tests/hls/test_allocation_fastpath.py``.
    """
    if engine not in ("interval", "legacy"):
        raise ValueError(f"unknown lifetime engine {engine!r}")
    spec = schedule.specification
    resolver = alias_resolver_for(spec)
    birth: Dict[CanonicalBit, int] = {}
    death: Dict[CanonicalBit, int] = {}
    producer: Dict[CanonicalBit, Optional[Operation]] = {}
    cycle_of = schedule.cycle_of

    if engine == "interval":
        skeleton = _lifetime_skeleton(spec)
        for operation, _variable, destination_uid, low, width in skeleton.births:
            cycle = cycle_of.get(operation)
            if cycle is None:
                schedule.cycle(operation)  # raises the descriptive ScheduleError
            for bit in range(low, low + width):
                death[(destination_uid, bit)] = cycle
        for operation, sources in skeleton.read_sources:
            cycle = cycle_of[operation]
            for canonical in sources:
                if death[canonical] < cycle:
                    death[canonical] = cycle
        # Birth and producer are constant across one destination interval,
        # so groups are the destination intervals split where the death
        # cycle changes; bits of one variable written by different
        # operations never merge (their producers differ), exactly as in
        # the per-bit grouping below.
        groups: List[ValueGroup] = []
        for operation, variable, destination_uid, low, width in skeleton.births:
            birth_cycle = cycle_of[operation]
            run_start = low
            run_death = death[(destination_uid, low)]
            for bit in range(low + 1, low + width):
                bit_death = death[(destination_uid, bit)]
                if bit_death != run_death:
                    groups.append(
                        ValueGroup(
                            variable=variable,
                            low_bit=run_start,
                            width=bit - run_start,
                            producer=operation,
                            birth_cycle=birth_cycle,
                            death_cycle=run_death,
                        )
                    )
                    run_start = bit
                    run_death = bit_death
            groups.append(
                ValueGroup(
                    variable=variable,
                    low_bit=run_start,
                    width=low + width - run_start,
                    producer=operation,
                    birth_cycle=birth_cycle,
                    death_cycle=run_death,
                )
            )
        groups.sort(
            key=lambda group: (group.birth_cycle, group.variable.name, group.low_bit)
        )
        return groups
    else:
        # Births: every bit produced by an additive (functional-unit)
        # operation.  Glue outputs are never stored: glue is combinational
        # logic replicated next to whichever cycle consumes it.
        for operation in spec.operations:
            if not operation.is_additive:
                continue
            cycle = cycle_of.get(operation)
            if cycle is None:
                schedule.cycle(operation)  # raises the descriptive ScheduleError
            destination = operation.destination
            destination_uid = destination.variable.uid
            for bit in destination.range:
                canonical = (destination_uid, bit)
                birth[canonical] = cycle
                producer[canonical] = operation
                death.setdefault(canonical, cycle)

        # Deaths: the latest cycle any additive operation (transitively
        # through glue) reads the stored bit.
        cache = _storage_source_cache(spec)
        for operation in spec.operations:
            if not operation.is_additive:
                continue
            cycle = cycle_of[operation]
            for operand in operation.all_read_operands():
                if not operand.is_variable:
                    continue
                variable = operand.variable
                variable_uid = variable.uid
                for bit in operand.range:
                    key = (variable_uid, bit)
                    sources = cache.get(key)
                    if sources is None:
                        sources = _storage_sources(spec, variable, bit, _memo=cache)
                    for canonical in sources:
                        if canonical in birth and death[canonical] < cycle:
                            death[canonical] = cycle

    # Group contiguous bits of the same variable with identical lifetimes.
    groups: List[ValueGroup] = []
    by_variable: Dict[int, List[Tuple[int, CanonicalBit]]] = {}
    for canonical in birth:
        by_variable.setdefault(canonical[0], []).append((canonical[1], canonical))
    for variable_uid, entries in by_variable.items():
        variable = resolver.variable_of((variable_uid, 0))
        entries.sort()
        run: List[Tuple[int, CanonicalBit]] = []

        def flush() -> None:
            if not run:
                return
            low = run[0][0]
            canonical = run[0][1]
            groups.append(
                ValueGroup(
                    variable=variable,
                    low_bit=low,
                    width=len(run),
                    producer=producer[canonical],
                    birth_cycle=birth[canonical],
                    death_cycle=death[canonical],
                )
            )

        previous_bit: Optional[int] = None
        previous_key: Optional[Tuple] = None
        for bit, canonical in entries:
            key = (birth[canonical], death[canonical], producer[canonical])
            if (
                previous_bit is not None
                and bit == previous_bit + 1
                and key == previous_key
            ):
                run.append((bit, canonical))
            else:
                flush()
                run = [(bit, canonical)]
            previous_bit, previous_key = bit, key
        flush()
    groups.sort(key=lambda group: (group.birth_cycle, group.variable.name, group.low_bit))
    return groups


def allocate_registers(
    schedule: Schedule,
    library: TechnologyLibrary,
    lifetime_engine: str = "interval",
) -> RegisterAllocation:
    """Left-edge register allocation over the cycle-crossing value groups.

    A value produced in cycle ``b`` and last consumed in cycle ``d > b``
    occupies a register during the interval ``(b, d]``; two values can share a
    register when their intervals do not overlap.  Groups are packed into the
    narrowest compatible register first so that 1-bit carries do not inflate a
    16-bit register's width.
    """
    groups = analyze_lifetimes(schedule, engine=lifetime_engine)
    stored = [group for group in groups if group.needs_storage]
    allocation = RegisterAllocation(groups=groups)
    allocation.stored_bits = sum(group.width for group in stored)

    registers: List[RegisterInstance] = []
    register_last_death: Dict[int, int] = {}
    stored.sort(key=lambda group: (group.birth_cycle, -group.width))
    for group in stored:
        candidates = []
        for index, register in enumerate(registers):
            if register_last_death[index] <= group.birth_cycle:
                # Prefer a register that already fits the group's width, then
                # the narrowest one (which will have to grow the least).
                grow = max(0, group.width - register.width)
                candidates.append((grow, register.width, index))
        if candidates:
            candidates.sort()
            index = candidates[0][2]
            register = registers[index]
            register.width = max(register.width, group.width)
            register.groups.append(group)
            register_last_death[index] = group.death_cycle
        else:
            register = RegisterInstance(
                identifier=f"reg{len(registers)}", width=group.width, groups=[group]
            )
            registers.append(register)
            register_last_death[len(registers) - 1] = group.death_cycle
    for register in registers:
        register.area_gates = library.register_area(register.width)
    allocation.registers = registers
    return allocation
