"""Register allocation: lifetime analysis and left-edge sharing.

Only values that *cross a cycle boundary* need storage.  The paper leans on
this heavily: in the optimized schedule of the motivational example "most
result bits calculated in every cycle are also consumed in that same cycle",
so only five 1-bit values (two data bits and three carries per boundary, with
the two boundaries sharing registers) ever need flip-flops, against one full
16-bit register for the conventional schedule.

As in the paper's Table I accounting, the dedicated registers that stabilise
input and output ports are excluded ("they coincide in both implementations").

MOVE operations introduced by the specification rewrite are pure renamings of
wires; their destinations are treated as aliases of their sources so that the
same physical value is never counted twice.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...ir.operations import Operation, OpKind
from ...ir.spec import Specification
from ...ir.values import Variable
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule

#: a canonical value bit: (variable uid, bit index) after alias resolution
CanonicalBit = Tuple[int, int]


@dataclass(frozen=True)
class ValueGroup:
    """A run of bits of one variable sharing producer, birth and death cycles."""

    variable: Variable
    low_bit: int
    width: int
    producer: Optional[Operation]
    birth_cycle: int
    death_cycle: int

    @property
    def needs_storage(self) -> bool:
        return self.death_cycle > self.birth_cycle

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        hi = self.low_bit + self.width - 1
        return (
            f"{self.variable.name}[{hi}:{self.low_bit}] "
            f"({self.birth_cycle} -> {self.death_cycle})"
        )


@dataclass
class RegisterInstance:
    """One physical register and the value groups time-sharing it."""

    identifier: str
    width: int
    groups: List[ValueGroup] = field(default_factory=list)
    area_gates: float = 0.0


@dataclass
class RegisterAllocation:
    """All registers of the datapath plus lifetime statistics."""

    registers: List[RegisterInstance] = field(default_factory=list)
    groups: List[ValueGroup] = field(default_factory=list)
    stored_bits: int = 0

    @property
    def total_area(self) -> float:
        return sum(register.area_gates for register in self.registers)

    @property
    def register_count(self) -> int:
        return len(self.registers)

    def register_of(self, group: ValueGroup) -> Optional[RegisterInstance]:
        for register in self.registers:
            if group in register.groups:
                return register
        return None

    def describe(self) -> str:
        lines = [f"registers ({self.register_count}, {self.stored_bits} stored bits):"]
        for register in self.registers:
            stored = ", ".join(str(group) for group in register.groups)
            lines.append(
                f"  {register.identifier}[{register.width}] "
                f"({register.area_gates:.0f} gates) <- {stored}"
            )
        return "\n".join(lines)


#: Glue kinds that are pure wiring: their output bits are the very same nets
#: as their input bits, so storage and steering analyses must not count them
#: as separate values.
_WIRING_KINDS = frozenset({OpKind.MOVE, OpKind.CONCAT, OpKind.SHL, OpKind.SHR})


class _AliasResolver:
    """Resolves wiring-introduced aliases down to the physical producing bit.

    MOVEs, CONCATs and constant shifts introduced by the kernel extraction and
    by the fragment rewrite are renamings of existing nets; the resolver
    follows them (using the same kind-specific bit wiring as the bit-level
    dependency graph) so that every stored or steered bit is attributed to the
    operation that actually computes it.
    """

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self._cache: Dict[CanonicalBit, Optional[CanonicalBit]] = {}
        self._variables: Dict[int, Variable] = {
            variable.uid: variable for variable in specification.variables
        }

    _MISSING = object()

    def canonical(self, variable: Variable, bit: int) -> Optional[CanonicalBit]:
        """Physical (variable uid, bit) behind an IR bit; None for constants.

        Wiring chains are walked iteratively and every intermediate hop is
        memoized (resolution is a pure function of the bit), so each net of
        the specification is resolved at most once however many readers
        consult it.
        """
        from ...ir.dfg import BitDependencyGraph

        cache = self._cache
        missing = self._MISSING
        bit_defs = self.specification.bit_def_map
        glue_source_bits = BitDependencyGraph.glue_source_bits
        key = (variable.uid, bit)
        chain: List[CanonicalBit] = []
        resolved: Optional[CanonicalBit] = None
        depth = 0
        while True:
            hit = cache.get(key, missing)
            if hit is not missing:
                resolved = hit
                break
            chain.append(key)
            if depth > 64:
                # Cut off by the cycle guard: return the best answer for
                # THIS walk but cache nothing -- entries computed under a
                # partly spent depth budget must not be served to later
                # shallow callers.
                return key
            definition = bit_defs.get(key)
            if definition is None:
                resolved = key
                break
            operation = definition.operation
            if operation.kind not in _WIRING_KINDS:
                resolved = key
                break
            sources = glue_source_bits(operation, definition.result_bit)
            if not sources:
                # No driving operand (e.g. a shifted-in zero): constant bit.
                resolved = None
                break
            operand, position = sources[0]
            if not operand.is_variable:
                resolved = None
                break
            key = (operand.variable.uid, operand.range.lo + position)
            depth += 1
        for visited in chain:
            cache[visited] = resolved
        return resolved

    def variable_of(self, canonical: CanonicalBit) -> Variable:
        return self._variables[canonical[0]]


#: Alias resolvers shared per specification (weakly keyed, version guarded).
#: Alias resolution depends only on the specification's wiring -- not on the
#: schedule -- so the register and interconnect analyses of one run, and all
#: the runs of a latency sweep over one shared workload instance, reuse the
#: same resolved cache instead of re-walking the glue per pass.
_RESOLVERS: "weakref.WeakKeyDictionary[Specification, Tuple[int, _AliasResolver]]" = (
    weakref.WeakKeyDictionary()
)


def alias_resolver_for(specification: Specification) -> _AliasResolver:
    """The shared :class:`_AliasResolver` of a specification."""
    cached = _RESOLVERS.get(specification)
    if cached is not None and cached[0] == specification.version:
        return cached[1]
    resolver = _AliasResolver(specification)
    _RESOLVERS[specification] = (specification.version, resolver)
    return resolver


#: Storage-source resolutions shared per specification, same contract as the
#: alias resolvers: the resolution is schedule-independent.
_STORAGE_SOURCES: "weakref.WeakKeyDictionary[Specification, Tuple[int, Dict[Tuple[int, int], List[CanonicalBit]]]]" = (
    weakref.WeakKeyDictionary()
)


def _storage_source_cache(
    specification: Specification,
) -> Dict[Tuple[int, int], List[CanonicalBit]]:
    cached = _STORAGE_SOURCES.get(specification)
    if cached is not None and cached[0] == specification.version:
        return cached[1]
    cache: Dict[Tuple[int, int], List[CanonicalBit]] = {}
    _STORAGE_SOURCES[specification] = (specification.version, cache)
    return cache


def _storage_sources(
    specification: Specification,
    variable: Variable,
    bit: int,
    _depth: int = 0,
    _memo: Optional[Dict[Tuple[int, int], List[CanonicalBit]]] = None,
) -> List[CanonicalBit]:
    """The additive result bits that must be *stored* for a read of this bit.

    Glue logic of every kind (wiring as well as gates such as the partial
    product ANDs of a decomposed multiplication) is combinational and can be
    replicated next to its consumer, so what actually occupies a register when
    a glue output is consumed in a later cycle is the glue's transitive
    non-glue inputs -- additive operation results.  Input-port bits need no
    datapath register (the paper excludes the dedicated I/O registers from its
    accounting), so they resolve to nothing.

    ``_memo`` memoizes every intermediate bit of the walk (the resolution is
    a pure function of the bit), which turns the wide shared fan-ins of the
    transformed specifications from repeated tree walks into single lookups.
    A walk cut off by the recursion guard caches nothing on its path, so a
    depth-truncated source list is never served to a shallow caller.
    """
    sources, _complete = _storage_sources_inner(
        specification, variable, bit, _depth, _memo
    )
    return sources


def _storage_sources_inner(
    specification: Specification,
    variable: Variable,
    bit: int,
    depth: int,
    memo: Optional[Dict[Tuple[int, int], List[CanonicalBit]]],
) -> Tuple[List[CanonicalBit], bool]:
    if depth > 64:
        return [], False
    key = (variable.uid, bit)
    if memo is not None:
        cached = memo.get(key)
        if cached is not None:
            return cached, True
    complete = True
    definition = specification.bit_def_map.get(key)
    if definition is None:
        sources: List[CanonicalBit] = []
    elif definition.operation.is_additive:
        sources = [key]
    else:
        from ...ir.dfg import BitDependencyGraph

        sources = []
        for operand, position in BitDependencyGraph.glue_source_bits(
            definition.operation, definition.result_bit
        ):
            if not operand.is_variable:
                continue
            traced, traced_complete = _storage_sources_inner(
                specification,
                operand.variable,
                operand.range.lo + position,
                depth + 1,
                memo,
            )
            sources.extend(traced)
            complete = complete and traced_complete
    if memo is not None and complete:
        memo[key] = sources
    return sources, complete


def analyze_lifetimes(schedule: Schedule) -> List[ValueGroup]:
    """Birth/death cycles of every produced value bit, grouped into runs."""
    spec = schedule.specification
    resolver = alias_resolver_for(spec)
    birth: Dict[CanonicalBit, int] = {}
    death: Dict[CanonicalBit, int] = {}
    producer: Dict[CanonicalBit, Optional[Operation]] = {}

    # Births: every bit produced by an additive (functional-unit) operation.
    # Glue outputs are never stored: glue is combinational logic replicated
    # next to whichever cycle consumes it.
    cycle_of = schedule.cycle_of
    for operation in spec.operations:
        if not operation.is_additive:
            continue
        cycle = cycle_of.get(operation)
        if cycle is None:
            schedule.cycle(operation)  # raises the descriptive ScheduleError
        destination = operation.destination
        destination_uid = destination.variable.uid
        for bit in destination.range:
            canonical = (destination_uid, bit)
            birth[canonical] = cycle
            producer[canonical] = operation
            death.setdefault(canonical, cycle)
    _ = resolver  # kept for interconnect sharing of the alias cache semantics

    # Deaths: the latest cycle any additive operation (transitively through
    # glue) reads the stored bit.
    cache = _storage_source_cache(spec)
    for operation in spec.operations:
        if not operation.is_additive:
            continue
        cycle = cycle_of[operation]
        for operand in operation.all_read_operands():
            if not operand.is_variable:
                continue
            variable = operand.variable
            variable_uid = variable.uid
            for bit in operand.range:
                key = (variable_uid, bit)
                sources = cache.get(key)
                if sources is None:
                    sources = _storage_sources(spec, variable, bit, _memo=cache)
                for canonical in sources:
                    if canonical in birth and death[canonical] < cycle:
                        death[canonical] = cycle

    # Group contiguous bits of the same variable with identical lifetimes.
    groups: List[ValueGroup] = []
    by_variable: Dict[int, List[Tuple[int, CanonicalBit]]] = {}
    for canonical in birth:
        by_variable.setdefault(canonical[0], []).append((canonical[1], canonical))
    for variable_uid, entries in by_variable.items():
        variable = resolver.variable_of((variable_uid, 0))
        entries.sort()
        run: List[Tuple[int, CanonicalBit]] = []

        def flush() -> None:
            if not run:
                return
            low = run[0][0]
            canonical = run[0][1]
            groups.append(
                ValueGroup(
                    variable=variable,
                    low_bit=low,
                    width=len(run),
                    producer=producer[canonical],
                    birth_cycle=birth[canonical],
                    death_cycle=death[canonical],
                )
            )

        previous_bit: Optional[int] = None
        previous_key: Optional[Tuple] = None
        for bit, canonical in entries:
            key = (birth[canonical], death[canonical], producer[canonical])
            if (
                previous_bit is not None
                and bit == previous_bit + 1
                and key == previous_key
            ):
                run.append((bit, canonical))
            else:
                flush()
                run = [(bit, canonical)]
            previous_bit, previous_key = bit, key
        flush()
    groups.sort(key=lambda group: (group.birth_cycle, group.variable.name, group.low_bit))
    return groups


def allocate_registers(
    schedule: Schedule, library: TechnologyLibrary
) -> RegisterAllocation:
    """Left-edge register allocation over the cycle-crossing value groups.

    A value produced in cycle ``b`` and last consumed in cycle ``d > b``
    occupies a register during the interval ``(b, d]``; two values can share a
    register when their intervals do not overlap.  Groups are packed into the
    narrowest compatible register first so that 1-bit carries do not inflate a
    16-bit register's width.
    """
    groups = analyze_lifetimes(schedule)
    stored = [group for group in groups if group.needs_storage]
    allocation = RegisterAllocation(groups=groups)
    allocation.stored_bits = sum(group.width for group in stored)

    registers: List[RegisterInstance] = []
    register_last_death: Dict[int, int] = {}
    stored.sort(key=lambda group: (group.birth_cycle, -group.width))
    for group in stored:
        candidates = []
        for index, register in enumerate(registers):
            if register_last_death[index] <= group.birth_cycle:
                # Prefer a register that already fits the group's width, then
                # the narrowest one (which will have to grow the least).
                grow = max(0, group.width - register.width)
                candidates.append((grow, register.width, index))
        if candidates:
            candidates.sort()
            index = candidates[0][2]
            register = registers[index]
            register.width = max(register.width, group.width)
            register.groups.append(group)
            register_last_death[index] = group.death_cycle
        else:
            register = RegisterInstance(
                identifier=f"reg{len(registers)}", width=group.width, groups=[group]
            )
            registers.append(register)
            register_last_death[len(registers) - 1] = group.death_cycle
    for register in registers:
        register.area_gates = library.register_area(register.width)
    allocation.registers = registers
    return allocation
