"""Register allocation: lifetime analysis and left-edge sharing.

Only values that *cross a cycle boundary* need storage.  The paper leans on
this heavily: in the optimized schedule of the motivational example "most
result bits calculated in every cycle are also consumed in that same cycle",
so only five 1-bit values (two data bits and three carries per boundary, with
the two boundaries sharing registers) ever need flip-flops, against one full
16-bit register for the conventional schedule.

As in the paper's Table I accounting, the dedicated registers that stabilise
input and output ports are excluded ("they coincide in both implementations").

MOVE operations introduced by the specification rewrite are pure renamings of
wires; their destinations are treated as aliases of their sources so that the
same physical value is never counted twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...ir.operations import Operation, OpKind
from ...ir.spec import Specification
from ...ir.values import Variable
from ...techlib.library import TechnologyLibrary
from ..schedule import Schedule

#: a canonical value bit: (variable uid, bit index) after alias resolution
CanonicalBit = Tuple[int, int]


@dataclass(frozen=True)
class ValueGroup:
    """A run of bits of one variable sharing producer, birth and death cycles."""

    variable: Variable
    low_bit: int
    width: int
    producer: Optional[Operation]
    birth_cycle: int
    death_cycle: int

    @property
    def needs_storage(self) -> bool:
        return self.death_cycle > self.birth_cycle

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        hi = self.low_bit + self.width - 1
        return (
            f"{self.variable.name}[{hi}:{self.low_bit}] "
            f"({self.birth_cycle} -> {self.death_cycle})"
        )


@dataclass
class RegisterInstance:
    """One physical register and the value groups time-sharing it."""

    identifier: str
    width: int
    groups: List[ValueGroup] = field(default_factory=list)
    area_gates: float = 0.0


@dataclass
class RegisterAllocation:
    """All registers of the datapath plus lifetime statistics."""

    registers: List[RegisterInstance] = field(default_factory=list)
    groups: List[ValueGroup] = field(default_factory=list)
    stored_bits: int = 0

    @property
    def total_area(self) -> float:
        return sum(register.area_gates for register in self.registers)

    @property
    def register_count(self) -> int:
        return len(self.registers)

    def register_of(self, group: ValueGroup) -> Optional[RegisterInstance]:
        for register in self.registers:
            if group in register.groups:
                return register
        return None

    def describe(self) -> str:
        lines = [f"registers ({self.register_count}, {self.stored_bits} stored bits):"]
        for register in self.registers:
            stored = ", ".join(str(group) for group in register.groups)
            lines.append(
                f"  {register.identifier}[{register.width}] "
                f"({register.area_gates:.0f} gates) <- {stored}"
            )
        return "\n".join(lines)


#: Glue kinds that are pure wiring: their output bits are the very same nets
#: as their input bits, so storage and steering analyses must not count them
#: as separate values.
_WIRING_KINDS = frozenset({OpKind.MOVE, OpKind.CONCAT, OpKind.SHL, OpKind.SHR})


class _AliasResolver:
    """Resolves wiring-introduced aliases down to the physical producing bit.

    MOVEs, CONCATs and constant shifts introduced by the kernel extraction and
    by the fragment rewrite are renamings of existing nets; the resolver
    follows them (using the same kind-specific bit wiring as the bit-level
    dependency graph) so that every stored or steered bit is attributed to the
    operation that actually computes it.
    """

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self._cache: Dict[CanonicalBit, Optional[CanonicalBit]] = {}
        self._variables: Dict[int, Variable] = {
            variable.uid: variable for variable in specification.variables
        }

    def canonical(self, variable: Variable, bit: int) -> Optional[CanonicalBit]:
        """Physical (variable uid, bit) behind an IR bit; None for constants."""
        key = (variable.uid, bit)
        if key in self._cache:
            return self._cache[key]
        resolved = self._resolve(variable, bit, 0)
        self._cache[key] = resolved
        return resolved

    def _resolve(self, variable: Variable, bit: int, depth: int) -> Optional[CanonicalBit]:
        if depth > 64:
            return (variable.uid, bit)
        definition = self.specification.bit_writer(variable, bit)
        if definition is None:
            return (variable.uid, bit)
        operation = definition.operation
        if operation.kind not in _WIRING_KINDS:
            return (variable.uid, bit)
        from ...ir.dfg import BitDependencyGraph

        sources = BitDependencyGraph.glue_source_bits(operation, definition.result_bit)
        for operand, position in sources:
            if not operand.is_variable:
                return None
            source_bit = operand.range.lo + position
            return self._resolve(operand.variable, source_bit, depth + 1)
        # No driving operand (e.g. a shifted-in zero): the bit is a constant.
        return None

    def variable_of(self, canonical: CanonicalBit) -> Variable:
        return self._variables[canonical[0]]


def _storage_sources(
    specification: Specification,
    variable: Variable,
    bit: int,
    _depth: int = 0,
) -> List[CanonicalBit]:
    """The additive result bits that must be *stored* for a read of this bit.

    Glue logic of every kind (wiring as well as gates such as the partial
    product ANDs of a decomposed multiplication) is combinational and can be
    replicated next to its consumer, so what actually occupies a register when
    a glue output is consumed in a later cycle is the glue's transitive
    non-glue inputs -- additive operation results.  Input-port bits need no
    datapath register (the paper excludes the dedicated I/O registers from its
    accounting), so they resolve to nothing.
    """
    if _depth > 64:
        return []
    definition = specification.bit_writer(variable, bit)
    if definition is None:
        return []
    operation = definition.operation
    if operation.is_additive:
        return [(variable.uid, bit)]
    sources: List[CanonicalBit] = []
    from ...ir.dfg import BitDependencyGraph

    for operand, position in BitDependencyGraph.glue_source_bits(
        operation, definition.result_bit
    ):
        if not operand.is_variable:
            continue
        sources.extend(
            _storage_sources(
                specification, operand.variable, operand.range.lo + position, _depth + 1
            )
        )
    return sources


def analyze_lifetimes(schedule: Schedule) -> List[ValueGroup]:
    """Birth/death cycles of every produced value bit, grouped into runs."""
    spec = schedule.specification
    resolver = _AliasResolver(spec)
    birth: Dict[CanonicalBit, int] = {}
    death: Dict[CanonicalBit, int] = {}
    producer: Dict[CanonicalBit, Optional[Operation]] = {}

    # Births: every bit produced by an additive (functional-unit) operation.
    # Glue outputs are never stored: glue is combinational logic replicated
    # next to whichever cycle consumes it.
    for operation in spec.operations:
        if not operation.is_additive:
            continue
        cycle = schedule.cycle(operation)
        destination = operation.destination
        for bit in destination.range:
            canonical = (destination.variable.uid, bit)
            birth[canonical] = cycle
            producer[canonical] = operation
            death.setdefault(canonical, cycle)
    _ = resolver  # kept for interconnect sharing of the alias cache semantics

    # Deaths: the latest cycle any additive operation (transitively through
    # glue) reads the stored bit.
    cache: Dict[Tuple[int, int], List[CanonicalBit]] = {}
    for operation in spec.operations:
        if not operation.is_additive:
            continue
        cycle = schedule.cycle(operation)
        for operand in operation.all_read_operands():
            if not operand.is_variable:
                continue
            for bit in operand.range:
                key = (operand.variable.uid, bit)
                if key not in cache:
                    cache[key] = _storage_sources(spec, operand.variable, bit)
                for canonical in cache[key]:
                    if canonical in birth:
                        death[canonical] = max(death[canonical], cycle)

    # Group contiguous bits of the same variable with identical lifetimes.
    groups: List[ValueGroup] = []
    by_variable: Dict[int, List[Tuple[int, CanonicalBit]]] = {}
    for canonical in birth:
        by_variable.setdefault(canonical[0], []).append((canonical[1], canonical))
    for variable_uid, entries in by_variable.items():
        variable = resolver.variable_of((variable_uid, 0))
        entries.sort()
        run: List[Tuple[int, CanonicalBit]] = []

        def flush() -> None:
            if not run:
                return
            low = run[0][0]
            canonical = run[0][1]
            groups.append(
                ValueGroup(
                    variable=variable,
                    low_bit=low,
                    width=len(run),
                    producer=producer[canonical],
                    birth_cycle=birth[canonical],
                    death_cycle=death[canonical],
                )
            )

        previous_bit: Optional[int] = None
        previous_key: Optional[Tuple] = None
        for bit, canonical in entries:
            key = (birth[canonical], death[canonical], producer[canonical])
            if (
                previous_bit is not None
                and bit == previous_bit + 1
                and key == previous_key
            ):
                run.append((bit, canonical))
            else:
                flush()
                run = [(bit, canonical)]
            previous_bit, previous_key = bit, key
        flush()
    groups.sort(key=lambda group: (group.birth_cycle, group.variable.name, group.low_bit))
    return groups


def allocate_registers(
    schedule: Schedule, library: TechnologyLibrary
) -> RegisterAllocation:
    """Left-edge register allocation over the cycle-crossing value groups.

    A value produced in cycle ``b`` and last consumed in cycle ``d > b``
    occupies a register during the interval ``(b, d]``; two values can share a
    register when their intervals do not overlap.  Groups are packed into the
    narrowest compatible register first so that 1-bit carries do not inflate a
    16-bit register's width.
    """
    groups = analyze_lifetimes(schedule)
    stored = [group for group in groups if group.needs_storage]
    allocation = RegisterAllocation(groups=groups)
    allocation.stored_bits = sum(group.width for group in stored)

    registers: List[RegisterInstance] = []
    register_last_death: Dict[int, int] = {}
    stored.sort(key=lambda group: (group.birth_cycle, -group.width))
    for group in stored:
        candidates = []
        for index, register in enumerate(registers):
            if register_last_death[index] <= group.birth_cycle:
                # Prefer a register that already fits the group's width, then
                # the narrowest one (which will have to grow the least).
                grow = max(0, group.width - register.width)
                candidates.append((grow, register.width, index))
        if candidates:
            candidates.sort()
            index = candidates[0][2]
            register = registers[index]
            register.width = max(register.width, group.width)
            register.groups.append(group)
            register_last_death[index] = group.death_cycle
        else:
            register = RegisterInstance(
                identifier=f"reg{len(registers)}", width=group.width, groups=[group]
            )
            registers.append(register)
            register_last_death[len(registers) - 1] = group.death_cycle
    for register in registers:
        register.area_gates = library.register_area(register.width)
    allocation.registers = registers
    return allocation
