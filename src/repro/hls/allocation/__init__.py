"""Allocation and binding: functional units, registers, interconnect."""

from .functional_units import (
    FunctionalUnitAllocation,
    FunctionalUnitInstance,
    allocate_functional_units,
)
from .interconnect import (
    InterconnectEstimate,
    MultiplexerRequirement,
    estimate_interconnect,
)
from .registers import (
    RegisterAllocation,
    RegisterInstance,
    ValueGroup,
    allocate_registers,
    analyze_lifetimes,
    lifetime_skeleton,
    storage_sources,
)

__all__ = [
    "FunctionalUnitAllocation",
    "FunctionalUnitInstance",
    "InterconnectEstimate",
    "MultiplexerRequirement",
    "RegisterAllocation",
    "RegisterInstance",
    "ValueGroup",
    "allocate_functional_units",
    "allocate_registers",
    "analyze_lifetimes",
    "estimate_interconnect",
    "lifetime_skeleton",
    "storage_sources",
]
