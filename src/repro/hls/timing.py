"""Timing analysis of schedules.

Two views are needed, matching the two flows of the experiments:

* **operation-level chaining** (the conventional flow on the original
  specification): within a cycle, data-dependent operations chain and the
  cycle must accommodate the longest chain of functional-unit propagation
  delays (nanoseconds from :class:`~repro.techlib.TechnologyLibrary`);
* **bit-level chaining** (the optimized flow on the transformed
  specification, and the BLC baseline): the cycle must accommodate the
  longest chain of *1-bit additions*, counted on the
  :class:`~repro.ir.dfg.BitDependencyGraph` restricted to each cycle --
  operation results produced in earlier cycles arrive from registers at the
  start of the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.dfg import BitDependencyGraph, DataFlowGraph
from ..ir.operations import Operation
from ..techlib.library import TechnologyLibrary
from .schedule import Schedule


@dataclass(frozen=True)
class CycleTiming:
    """Per-cycle timing of a schedule plus the derived clock and run time."""

    latency: int
    #: worst chained delay of every cycle, nanoseconds
    cycle_delay_ns: Dict[int, float]
    #: worst chained 1-bit-addition depth of every cycle (bit-level metric)
    cycle_chained_bits: Dict[int, int]
    #: sequential overhead added once per cycle (register setup, clock skew)
    overhead_ns: float

    @property
    def cycle_length_ns(self) -> float:
        """Clock period: the slowest cycle plus the sequential overhead."""
        worst = max(self.cycle_delay_ns.values()) if self.cycle_delay_ns else 0.0
        return worst + self.overhead_ns

    @property
    def max_chained_bits(self) -> int:
        if not self.cycle_chained_bits:
            return 0
        return max(self.cycle_chained_bits.values())

    @property
    def execution_time_ns(self) -> float:
        """Total run time: latency times the clock period."""
        return self.latency * self.cycle_length_ns


def operation_level_cycle_delays(
    schedule: Schedule,
    library: TechnologyLibrary,
    graph: Optional[DataFlowGraph] = None,
) -> Dict[int, float]:
    """Worst chained functional-unit delay of every cycle (operation chaining).

    Operations are walked in dependency order; an operation chained after a
    same-cycle predecessor starts when the predecessor finishes, while values
    produced in earlier cycles are available at the start of the cycle.
    """
    spec = schedule.specification
    if graph is None:
        graph = spec.dataflow_graph()

    def compute() -> Dict[int, float]:
        finish: Dict[Operation, float] = {}
        delays: Dict[int, float] = {cycle: 0.0 for cycle in schedule.cycles()}
        for operation in graph.topological_order():
            cycle = schedule.cycle(operation)
            start = 0.0
            for predecessor in graph.predecessors(operation):
                if schedule.cycle(predecessor) == cycle:
                    start = max(start, finish[predecessor])
            finish[operation] = start + library.operation_delay_ns(operation)
            delays[cycle] = max(delays[cycle], finish[operation])
        return delays

    # The memo entry pins the graph and library it was computed against and
    # is validated by identity on every hit: the strong references keep the
    # objects alive, so a recycled id() can never alias a stale entry.
    cached = schedule.cached_analysis(
        "op_delays", lambda: (graph, library, compute())
    )
    if cached[0] is not graph or cached[1] is not library:
        cached = (graph, library, compute())
        schedule.store_analysis("op_delays", cached)
    return dict(cached[2])


def bit_level_cycle_depths(
    schedule: Schedule,
    graph: Optional[BitDependencyGraph] = None,
) -> Dict[int, int]:
    """Worst chained 1-bit-addition depth of every cycle (bit-level chaining).

    This is the quantity the paper annotates next to every cycle of Fig. 2 b
    ("6 bits delay"): result bits produced in earlier cycles arrive from
    registers at time zero, bits produced in the same cycle chain.
    """
    spec = schedule.specification
    if graph is None:
        graph = spec.bit_dependency_graph()

    def compute() -> Dict[int, int]:
        order, predecessors, _successors, costs = graph.dense_view()
        cycle_of = schedule.cycle_of
        depths: Dict[int, int] = {cycle: 0 for cycle in schedule.cycles()}
        cycles = [0] * len(order)
        arrivals = [0] * len(order)
        for index, node in enumerate(order):
            operation = node.operation
            cycle = cycle_of.get(operation)
            if cycle is None:
                # Preserve the descriptive error of Schedule.cycle().
                schedule.cycle(operation)
            cycles[index] = cycle
            start = 0
            for p in predecessors[index]:
                if cycles[p] == cycle and arrivals[p] > start:
                    start = arrivals[p]
            arrival = start + costs[index]
            arrivals[index] = arrival
            if arrival > depths[cycle]:
                depths[cycle] = arrival
        return depths

    cached = schedule.cached_analysis("bit_depths", lambda: (graph, compute()))
    if cached[0] is not graph:
        cached = (graph, compute())
        schedule.store_analysis("bit_depths", cached)
    return dict(cached[1])


def analyze_operation_level(
    schedule: Schedule, library: TechnologyLibrary
) -> CycleTiming:
    """Timing of a conventional (operation-chaining) schedule."""
    delays = operation_level_cycle_delays(schedule, library)
    chained = {
        cycle: int(round(library.ns_to_chained_bits(delay)))
        for cycle, delay in delays.items()
    }
    return CycleTiming(
        latency=schedule.latency,
        cycle_delay_ns=delays,
        cycle_chained_bits=chained,
        overhead_ns=library.gates.cycle_overhead_ns,
    )


def analyze_bit_level(
    schedule: Schedule,
    library: TechnologyLibrary,
    graph: Optional[BitDependencyGraph] = None,
) -> CycleTiming:
    """Timing of a bit-level-chaining schedule (optimized and BLC flows)."""
    depths = bit_level_cycle_depths(schedule, graph)
    delays = {
        cycle: library.chained_bits_to_ns(depth) for cycle, depth in depths.items()
    }
    return CycleTiming(
        latency=schedule.latency,
        cycle_delay_ns=delays,
        cycle_chained_bits=depths,
        overhead_ns=library.gates.cycle_overhead_ns,
    )
