"""FSM controller estimation and synthesis.

The controller of the synthesized circuit sequences the datapath: one state
per clock cycle of the schedule, and one control signal per multiplexer select
bit and per register load enable.  Two views are provided:

* :func:`estimate_controller` -- the linear cost model of
  :meth:`repro.techlib.TechnologyLibrary.controller_area`, which stands in
  for the controller gate counts Table I reports (60 / 32 / 62 gates for the
  three implementations of the motivational example);
* :func:`synthesize_controller` -- a real, synthesizable encoding consumed by
  the RTL emitter (:mod:`repro.rtl.emit`): a binary-counter FSM with one
  state per schedule cycle (cycle ``c`` encoded as ``c - 1``), wrapping back
  to the first state after the last cycle so the design streams one
  computation every ``latency`` clocks.  The emitter registers every select
  and load-enable net it decodes from the state with the synthesis record,
  so the *actual* control-signal count sits next to the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..techlib.library import TechnologyLibrary
from .allocation.interconnect import InterconnectEstimate
from .allocation.registers import RegisterAllocation
from .schedule import Schedule


@dataclass(frozen=True)
class ControllerEstimate:
    """States, control signals and area of the sequencing FSM."""

    states: int
    control_signals: int
    area_gates: float

    def describe(self) -> str:
        return (
            f"controller: {self.states} states, {self.control_signals} control "
            f"signals, {self.area_gates:.0f} gates"
        )


@dataclass
class ControllerSynthesis:
    """A synthesizable FSM encoding: one state per schedule cycle.

    ``encoding[c - 1]`` is the binary code of cycle ``c``; the counter wraps
    to state 0 after the last cycle.  ``control_signals`` records the names
    of the select/enable nets the RTL emitter decoded from the state, in
    creation order, so reports can compare the synthesized control word
    against :class:`ControllerEstimate`.
    """

    states: int
    state_bits: int
    encoding: Tuple[int, ...]
    control_signals: List[str] = field(default_factory=list)

    def code_of(self, cycle: int) -> int:
        """Binary state code of schedule cycle ``cycle`` (1-based)."""
        if not (1 <= cycle <= self.states):
            raise ValueError(f"cycle {cycle} outside [1, {self.states}]")
        return self.encoding[cycle - 1]

    def register_control(self, name: str) -> None:
        """Record one decoded control net (called by the RTL emitter)."""
        self.control_signals.append(name)

    def describe(self) -> str:
        return (
            f"controller: {self.states} states over {self.state_bits} state "
            f"bits, {len(self.control_signals)} decoded control signals"
        )


def synthesize_controller(latency: int) -> ControllerSynthesis:
    """Synthesize the binary-counter FSM encoding of a *latency*-cycle schedule."""
    if latency < 1:
        raise ValueError(f"latency must be >= 1, got {latency}")
    state_bits = max(1, (latency - 1).bit_length())
    return ControllerSynthesis(
        states=latency,
        state_bits=state_bits,
        encoding=tuple(range(latency)),
    )


def estimate_controller(
    schedule: Schedule,
    registers: RegisterAllocation,
    interconnect: InterconnectEstimate,
    library: TechnologyLibrary,
) -> ControllerEstimate:
    """Estimate the FSM controller of a bound datapath."""
    states = max(1, schedule.latency)
    control_signals = (
        interconnect.total_select_signals + registers.register_count
    )
    area = library.controller_area(states, control_signals)
    return ControllerEstimate(
        states=states, control_signals=control_signals, area_gates=area
    )
