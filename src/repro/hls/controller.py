"""FSM controller estimation.

The controller of the synthesized circuit sequences the datapath: one state
per clock cycle of the schedule, and one control signal per multiplexer select
bit and per register load enable.  Its cost is estimated with the linear model
of :meth:`repro.techlib.TechnologyLibrary.controller_area`, which stands in
for the controller gate counts Table I reports (60 / 32 / 62 gates for the
three implementations of the motivational example).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..techlib.library import TechnologyLibrary
from .allocation.interconnect import InterconnectEstimate
from .allocation.registers import RegisterAllocation
from .schedule import Schedule


@dataclass(frozen=True)
class ControllerEstimate:
    """States, control signals and area of the sequencing FSM."""

    states: int
    control_signals: int
    area_gates: float

    def describe(self) -> str:
        return (
            f"controller: {self.states} states, {self.control_signals} control "
            f"signals, {self.area_gates:.0f} gates"
        )


def estimate_controller(
    schedule: Schedule,
    registers: RegisterAllocation,
    interconnect: InterconnectEstimate,
    library: TechnologyLibrary,
) -> ControllerEstimate:
    """Estimate the FSM controller of a bound datapath."""
    states = max(1, schedule.latency)
    control_signals = (
        interconnect.total_select_signals + registers.register_count
    )
    area = library.controller_area(states, control_signals)
    return ControllerEstimate(
        states=states, control_signals=control_signals, area_gates=area
    )
