"""End-to-end synthesis flows.

:func:`synthesize` is the substitute for Synopsys Behavioral Compiler +
Design Compiler in the paper's experiments: it takes a behavioural
specification and a latency and returns the schedule, datapath and the
performance/area figures the tables of the paper report.

Three flows are available:

* ``conventional`` -- the baseline applied to the *original* specification:
  minimise the clock period under the latency constraint with operation-level
  chaining, then allocate and bind.  This produces the "Original
  specification" columns of Tables I-III.
* ``fragmented`` -- the flow applied to the *transformed* specification: a
  conventional scheduler places the fragments inside their mobility windows
  under the chained-bit budget, then the same allocation and binding run.
  This produces the "Optimized specification" columns.
* ``blc`` -- the bit-level chaining baseline of Fig. 1 d: the untransformed
  specification, fully chained, no resource sharing across operations of the
  same cycle.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.dfg import BitDependencyGraph
from ..ir.spec import Specification
from ..techlib.library import TechnologyLibrary, default_library
from .datapath import Datapath, build_datapath
from .schedule import Schedule
from .scheduling.chaining import schedule_bit_level_chaining
from .scheduling.fragment_scheduler import FragmentSchedulerOptions, schedule_fragments
from .scheduling.list_scheduler import schedule_conventional
from .timing import CycleTiming, analyze_bit_level, analyze_operation_level


class FlowMode(enum.Enum):
    """Which synthesis flow to run."""

    CONVENTIONAL = "conventional"
    FRAGMENTED = "fragmented"
    BLC = "blc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis run."""

    specification: Specification
    latency: int
    mode: FlowMode
    schedule: Schedule
    timing: CycleTiming
    datapath: Datapath
    library: TechnologyLibrary
    chained_bits_per_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def cycle_length_ns(self) -> float:
        """Clock period of the implementation."""
        return self.timing.cycle_length_ns

    @property
    def execution_time_ns(self) -> float:
        """Latency times the clock period (the paper's execution time)."""
        return self.timing.execution_time_ns

    @property
    def fu_area(self) -> float:
        return self.datapath.fu_area

    @property
    def register_area(self) -> float:
        return self.datapath.register_area

    @property
    def routing_area(self) -> float:
        return self.datapath.routing_area

    @property
    def controller_area(self) -> float:
        return self.datapath.controller_area

    @property
    def datapath_area(self) -> float:
        return self.datapath.datapath_area

    @property
    def total_area(self) -> float:
        return self.datapath.total_area

    def area_breakdown(self) -> Dict[str, float]:
        return self.datapath.area_breakdown()

    def summary(self) -> str:
        lines = [
            f"{self.specification.name} [{self.mode}] latency={self.latency}",
            f"  cycle length  : {self.cycle_length_ns:.2f} ns",
            f"  execution time: {self.execution_time_ns:.2f} ns",
            f"  FU area       : {self.fu_area:.0f} gates",
            f"  register area : {self.register_area:.0f} gates",
            f"  routing area  : {self.routing_area:.0f} gates",
            f"  controller    : {self.controller_area:.0f} gates",
            f"  total area    : {self.total_area:.0f} gates",
        ]
        return "\n".join(lines)


def _default_budget(specification: Specification, latency: int) -> int:
    """Per-cycle chained-bit budget when the caller did not provide one."""
    critical = BitDependencyGraph(specification).critical_depth()
    if critical == 0:
        return 1
    return max(1, math.ceil(critical / latency))


def synthesize(
    specification: Specification,
    latency: int,
    library: Optional[TechnologyLibrary] = None,
    mode: FlowMode = FlowMode.CONVENTIONAL,
    chained_bits_per_cycle: Optional[int] = None,
    balance_fragments: bool = True,
) -> SynthesisResult:
    """Synthesize *specification* with the selected flow.

    Parameters
    ----------
    specification:
        The behavioural specification to synthesize (original or transformed).
    latency:
        Number of clock cycles (the paper's lambda).
    library:
        Technology library; defaults to the Table I calibrated one.
    mode:
        Which flow to run (see :class:`FlowMode`).
    chained_bits_per_cycle:
        For the ``fragmented`` flow, the per-cycle budget estimated by the
        transformation; derived from the specification when omitted.
    balance_fragments:
        Whether the fragment scheduler balances addition bits across cycles
        (disable to obtain a pure ASAP placement).
    """
    library = library or default_library()
    if mode is FlowMode.CONVENTIONAL:
        schedule, _search = schedule_conventional(specification, latency, library)
        timing = analyze_operation_level(schedule, library)
        budget_used: Optional[int] = None
    elif mode is FlowMode.FRAGMENTED:
        budget = chained_bits_per_cycle or _default_budget(specification, latency)
        options = FragmentSchedulerOptions(balance=balance_fragments)
        schedule = schedule_fragments(specification, latency, budget, options)
        timing = analyze_bit_level(schedule, library)
        budget_used = budget
    elif mode is FlowMode.BLC:
        blc = schedule_bit_level_chaining(specification, latency)
        schedule = blc.schedule
        timing = analyze_bit_level(schedule, library)
        budget_used = blc.chained_bits_per_cycle
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown flow mode {mode}")
    datapath = build_datapath(schedule, library)
    return SynthesisResult(
        specification=specification,
        latency=latency,
        mode=mode,
        schedule=schedule,
        timing=timing,
        datapath=datapath,
        library=library,
        chained_bits_per_cycle=budget_used,
    )


class HlsFlow:
    """Object-oriented facade over :func:`synthesize` for repeated runs."""

    def __init__(self, library: Optional[TechnologyLibrary] = None) -> None:
        self.library = library or default_library()

    def conventional(self, specification: Specification, latency: int) -> SynthesisResult:
        return synthesize(specification, latency, self.library, FlowMode.CONVENTIONAL)

    def fragmented(
        self,
        specification: Specification,
        latency: int,
        chained_bits_per_cycle: Optional[int] = None,
    ) -> SynthesisResult:
        return synthesize(
            specification,
            latency,
            self.library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=chained_bits_per_cycle,
        )

    def bit_level_chaining(
        self, specification: Specification, latency: int = 1
    ) -> SynthesisResult:
        return synthesize(specification, latency, self.library, FlowMode.BLC)
