"""End-to-end synthesis flows.

:func:`synthesize` is the substitute for Synopsys Behavioral Compiler +
Design Compiler in the paper's experiments: it takes a behavioural
specification and a latency and returns the schedule, datapath and the
performance/area figures the tables of the paper report.

Three flows are available:

* ``conventional`` -- the baseline applied to the *original* specification:
  minimise the clock period under the latency constraint with operation-level
  chaining, then allocate and bind.  This produces the "Original
  specification" columns of Tables I-III.
* ``fragmented`` -- the flow applied to the *transformed* specification: a
  conventional scheduler places the fragments inside their mobility windows
  under the chained-bit budget, then the same allocation and binding run.
  This produces the "Optimized specification" columns.
* ``blc`` -- the bit-level chaining baseline of Fig. 1 d: the untransformed
  specification, fully chained, no resource sharing across operations of the
  same cycle.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..ir.spec import Specification
from ..techlib.library import TechnologyLibrary, default_library
from ..util import coerce_enum
from .datapath import Datapath, build_datapath
from .schedule import Schedule
from .scheduling.chaining import schedule_bit_level_chaining
from .scheduling.fragment_scheduler import FragmentSchedulerOptions, schedule_fragments
from .scheduling.list_scheduler import schedule_conventional
from .scheduling.policy import SchedulerPolicy
from .scheduling.search import (
    SearchProvenance,
    search_conventional,
    search_fragmented,
)
from .timing import CycleTiming, analyze_bit_level, analyze_operation_level


class FlowMode(enum.Enum):
    """Which synthesis flow to run."""

    CONVENTIONAL = "conventional"
    FRAGMENTED = "fragmented"
    BLC = "blc"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def coerce(cls, value: Union["FlowMode", str]) -> "FlowMode":
        """Accept a :class:`FlowMode` or its string name, case-insensitively.

        Raises :class:`ValueError` listing the valid modes on anything else,
        so callers (CLI, config files) get an actionable message.
        """
        return coerce_enum(cls, value, "flow mode")


#: Anything :func:`synthesize` accepts as a flow mode.
FlowModeLike = Union[FlowMode, str]


@dataclass
class SynthesisResult:
    """Everything produced by one synthesis run."""

    specification: Specification
    latency: int
    mode: FlowMode
    schedule: Schedule
    timing: CycleTiming
    datapath: Datapath
    library: TechnologyLibrary
    chained_bits_per_cycle: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def cycle_length_ns(self) -> float:
        """Clock period of the implementation."""
        return self.timing.cycle_length_ns

    @property
    def execution_time_ns(self) -> float:
        """Latency times the clock period (the paper's execution time)."""
        return self.timing.execution_time_ns

    @property
    def fu_area(self) -> float:
        return self.datapath.fu_area

    @property
    def register_area(self) -> float:
        return self.datapath.register_area

    @property
    def routing_area(self) -> float:
        return self.datapath.routing_area

    @property
    def controller_area(self) -> float:
        return self.datapath.controller_area

    @property
    def datapath_area(self) -> float:
        return self.datapath.datapath_area

    @property
    def total_area(self) -> float:
        return self.datapath.total_area

    def area_breakdown(self) -> Dict[str, float]:
        return self.datapath.area_breakdown()

    def summary(self) -> str:
        lines = [
            f"{self.specification.name} [{self.mode}] latency={self.latency}",
            f"  cycle length  : {self.cycle_length_ns:.2f} ns",
            f"  execution time: {self.execution_time_ns:.2f} ns",
            f"  FU area       : {self.fu_area:.0f} gates",
            f"  register area : {self.register_area:.0f} gates",
            f"  routing area  : {self.routing_area:.0f} gates",
            f"  controller    : {self.controller_area:.0f} gates",
            f"  total area    : {self.total_area:.0f} gates",
        ]
        return "\n".join(lines)


def _default_budget(specification: Specification, latency: int) -> int:
    """Per-cycle chained-bit budget when the caller did not provide one."""
    critical = specification.bit_dependency_graph().critical_depth()
    if critical == 0:
        return 1
    return max(1, math.ceil(critical / latency))


def resolve_budget(
    specification: Specification,
    latency: int,
    chained_bits_per_cycle: Optional[int],
) -> int:
    """Validate an explicit per-cycle budget or derive the default one.

    ``None`` means "derive from the specification"; an explicit value must be
    a positive integer (0 is *not* treated as unset).
    """
    if chained_bits_per_cycle is None:
        return _default_budget(specification, latency)
    if chained_bits_per_cycle <= 0:
        raise ValueError(
            "chained_bits_per_cycle must be a positive number of chained "
            f"1-bit additions, got {chained_bits_per_cycle!r} "
            "(pass None to derive the budget from the specification)"
        )
    return chained_bits_per_cycle


def run_schedule_with_policy(
    specification: Specification,
    latency: int,
    library: TechnologyLibrary,
    mode: FlowModeLike = FlowMode.CONVENTIONAL,
    policy: Optional[SchedulerPolicy] = None,
    chained_bits_per_cycle: Optional[int] = None,
) -> Tuple[Schedule, Optional[int], Optional[SearchProvenance]]:
    """The scheduling stage under an explicit :class:`SchedulerPolicy`.

    Returns the schedule, the chained-bit budget actually used (``None`` for
    the conventional flow) and, when the policy enables search, the
    provenance record of the winning start.  *chained_bits_per_cycle*
    overrides the policy's budget -- the pipeline passes the budget already
    derived by the transformation stage here.

    The paper policy (the default) takes exactly the historical code paths,
    bit-identically.
    """
    mode = FlowMode.coerce(mode)
    policy = policy or SchedulerPolicy()
    budget_hint = (
        chained_bits_per_cycle
        if chained_bits_per_cycle is not None
        else policy.chained_bits_per_cycle
    )
    if mode is FlowMode.CONVENTIONAL:
        if policy.search_enabled:
            outcome = search_conventional(specification, latency, library, policy)
            return outcome.schedule, None, outcome.provenance
        schedule, _search = schedule_conventional(specification, latency, library)
        return schedule, None, None
    if mode is FlowMode.FRAGMENTED:
        budget = resolve_budget(specification, latency, budget_hint)
        if policy.search_enabled:
            outcome = search_fragmented(
                specification, latency, budget, library, policy
            )
            return outcome.schedule, budget, outcome.provenance
        options = FragmentSchedulerOptions(balance=policy.balance_fragments)
        schedule = schedule_fragments(specification, latency, budget, options)
        return schedule, budget, None
    if mode is FlowMode.BLC:
        if policy.search_enabled:
            raise ValueError(
                "the blc flow has no scheduling freedom to search over; use "
                'policy="paper" with mode=blc'
            )
        blc = schedule_bit_level_chaining(specification, latency)
        return blc.schedule, blc.chained_bits_per_cycle, None
    raise ValueError(f"unknown flow mode {mode}")  # pragma: no cover - coerce()


def run_schedule(
    specification: Specification,
    latency: int,
    library: TechnologyLibrary,
    mode: FlowModeLike = FlowMode.CONVENTIONAL,
    chained_bits_per_cycle: Optional[int] = None,
    balance_fragments: bool = True,
) -> Tuple[Schedule, Optional[int]]:
    """The scheduling stage of the flow, shared by :func:`synthesize` and the
    :mod:`repro.api` pipeline.

    Returns the schedule together with the chained-bit budget actually used
    (``None`` for the conventional flow, which chains whole operations).
    """
    schedule, budget, _provenance = run_schedule_with_policy(
        specification,
        latency,
        library,
        mode,
        policy=SchedulerPolicy(balance_fragments=balance_fragments),
        chained_bits_per_cycle=chained_bits_per_cycle,
    )
    return schedule, budget


def run_timing(
    schedule: Schedule, library: TechnologyLibrary, mode: FlowModeLike
) -> CycleTiming:
    """The timing-analysis stage of the flow.

    The conventional flow chains whole operations, the fragmented and BLC
    flows chain individual result bits, hence the two analyses.
    """
    mode = FlowMode.coerce(mode)
    if mode is FlowMode.CONVENTIONAL:
        return analyze_operation_level(schedule, library)
    return analyze_bit_level(schedule, library)


def synthesize(
    specification: Specification,
    latency: int,
    library: Optional[TechnologyLibrary] = None,
    mode: FlowModeLike = FlowMode.CONVENTIONAL,
    chained_bits_per_cycle: Optional[int] = None,
    balance_fragments: bool = True,
) -> SynthesisResult:
    """Synthesize *specification* with the selected flow.

    Parameters
    ----------
    specification:
        The behavioural specification to synthesize (original or transformed).
    latency:
        Number of clock cycles (the paper's lambda).
    library:
        Technology library; defaults to the Table I calibrated one.
    mode:
        Which flow to run: a :class:`FlowMode` or its string name
        (``"conventional"``, ``"fragmented"``, ``"blc"``).
    chained_bits_per_cycle:
        For the ``fragmented`` flow, the per-cycle budget estimated by the
        transformation; derived from the specification when ``None``.  Must
        be positive when given explicitly.
    balance_fragments:
        Whether the fragment scheduler balances addition bits across cycles
        (disable to obtain a pure ASAP placement).
    """
    library = library or default_library()
    mode = FlowMode.coerce(mode)
    schedule, budget_used = run_schedule(
        specification,
        latency,
        library,
        mode,
        chained_bits_per_cycle=chained_bits_per_cycle,
        balance_fragments=balance_fragments,
    )
    timing = run_timing(schedule, library, mode)
    datapath = build_datapath(schedule, library)
    return SynthesisResult(
        specification=specification,
        latency=latency,
        mode=mode,
        schedule=schedule,
        timing=timing,
        datapath=datapath,
        library=library,
        chained_bits_per_cycle=budget_used,
    )


class HlsFlow:
    """Object-oriented facade over :func:`synthesize` for repeated runs."""

    def __init__(self, library: Optional[TechnologyLibrary] = None) -> None:
        self.library = library or default_library()

    def conventional(self, specification: Specification, latency: int) -> SynthesisResult:
        return synthesize(specification, latency, self.library, FlowMode.CONVENTIONAL)

    def fragmented(
        self,
        specification: Specification,
        latency: int,
        chained_bits_per_cycle: Optional[int] = None,
    ) -> SynthesisResult:
        return synthesize(
            specification,
            latency,
            self.library,
            FlowMode.FRAGMENTED,
            chained_bits_per_cycle=chained_bits_per_cycle,
        )

    def bit_level_chaining(
        self, specification: Specification, latency: int = 1
    ) -> SynthesisResult:
        return synthesize(specification, latency, self.library, FlowMode.BLC)
