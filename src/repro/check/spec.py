"""Specification-level checks (``SPEC0xx``).

All facts are re-derived from the operation list itself: the checker builds
its own def-use maps by scanning operations in program order instead of
reading the specification's incrementally maintained index, so a corrupted
index, a hand-built mutant, or a bug in ``add_operation`` is still caught.

Invariants:

* ``SPEC001`` -- bit-level single assignment: no variable bit has two writers;
* ``SPEC002`` -- def-before-use: every read of a non-input bit sees a writer
  earlier in program order (never-written internal/output bits included);
* ``SPEC003`` -- width/type consistency: comparison results are 1 bit,
  carry-ins are 1 bit, SELECT has a 1-bit condition and three operands, and
  no destination or operand range reaches past its variable's width;
* ``SPEC004`` -- every output-port bit is driven;
* ``SPEC005`` (warning) -- dead definition: an *additive* operation writing
  an internal variable none of whose destination bits is ever read (dead
  wiring costs nothing; dead functional-unit work is paid for);
* ``SPEC006`` -- combinational self-dependence: a cycle in the bit-level
  wiring (a bit transitively feeding itself).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.operations import COMPARISON_KINDS, Operation, OpKind
from ..ir.spec import Specification
from ._trace import BitKey, glue_wiring
from .diagnostics import Diagnostic, SourceSpan, diagnostic


def _bit_span(variable_name: str, bit: int) -> SourceSpan:
    return SourceSpan(kind="bit", name=variable_name, bit=bit)


def check_specification(specification: Specification) -> List[Diagnostic]:
    """Run every specification-level check; returns the findings."""
    found: List[Diagnostic] = []
    operations = list(specification.operations)
    order_of: Dict[int, int] = {op.uid: index for index, op in enumerate(operations)}

    # Own def map: program-order scan, every writer recorded.
    writers: Dict[BitKey, List[Tuple[Operation, int]]] = {}
    names: Dict[int, str] = {v.uid: v.name for v in specification.variables}
    for operation in operations:
        destination = operation.destination
        uid = destination.variable.uid
        for result_bit, bit in enumerate(destination.range):
            writers.setdefault((uid, bit), []).append((operation, result_bit))

    # SPEC001: multiple writers of one bit (report once per bit).
    for (uid, bit), writer_list in writers.items():
        if len(writer_list) > 1:
            authors = ", ".join(op.name for op, _ in writer_list)
            found.append(
                diagnostic(
                    "SPEC001",
                    f"bit {bit} of {names.get(uid, uid)} written by {authors}",
                    span=_bit_span(names.get(uid, str(uid)), bit),
                )
            )

    # SPEC002: reads must see an earlier writer (inputs are externally fed).
    reported_reads: Set[Tuple[int, int]] = set()
    for operation in operations:
        reader_index = order_of[operation.uid]
        for operand in operation.all_read_operands():
            if not operand.is_variable:
                continue
            variable = operand.variable
            for bit in operand.range:
                key = (variable.uid, bit)
                writer_list = writers.get(key)
                if writer_list is None:
                    if variable.is_input():
                        continue
                    if (operation.uid, variable.uid) in reported_reads:
                        continue
                    reported_reads.add((operation.uid, variable.uid))
                    found.append(
                        diagnostic(
                            "SPEC002",
                            f"{operation.name} reads bit {bit} of "
                            f"{variable.name}, which is never written",
                            span=_bit_span(variable.name, bit),
                        )
                    )
                    continue
                first_writer = writer_list[0][0]
                if order_of[first_writer.uid] > reader_index:
                    if (operation.uid, variable.uid) in reported_reads:
                        continue
                    reported_reads.add((operation.uid, variable.uid))
                    found.append(
                        diagnostic(
                            "SPEC002",
                            f"{operation.name} reads bit {bit} of {variable.name} "
                            f"before its writer {first_writer.name} executes",
                            span=_bit_span(variable.name, bit),
                        )
                    )

    # SPEC003: width and type consistency.
    for operation in operations:
        destination = operation.destination
        span = SourceSpan(kind="operation", name=operation.name or str(operation.uid))
        if operation.kind in COMPARISON_KINDS and destination.width != 1:
            found.append(
                diagnostic(
                    "SPEC003",
                    f"comparison {operation.name} writes a "
                    f"{destination.width}-bit destination (must be 1 bit)",
                    span=span,
                )
            )
        if operation.carry_in is not None and operation.carry_in.width != 1:
            found.append(
                diagnostic(
                    "SPEC003",
                    f"{operation.name} has a {operation.carry_in.width}-bit "
                    "carry-in (must be 1 bit)",
                    span=span,
                )
            )
        if operation.kind is OpKind.SELECT:
            if len(operation.operands) != 3:
                found.append(
                    diagnostic(
                        "SPEC003",
                        f"select {operation.name} has {len(operation.operands)} "
                        "operands (must be condition plus two arms)",
                        span=span,
                    )
                )
            elif operation.operands[0].width != 1:
                found.append(
                    diagnostic(
                        "SPEC003",
                        f"select {operation.name} has a "
                        f"{operation.operands[0].width}-bit condition",
                        span=span,
                    )
                )
        if destination.range.hi >= destination.variable.width:
            found.append(
                diagnostic(
                    "SPEC003",
                    f"{operation.name} writes up to bit {destination.range.hi} "
                    f"of {destination.variable.name}, which is only "
                    f"{destination.variable.width} bits wide",
                    span=span,
                )
            )
        for operand in operation.all_read_operands():
            if operand.is_variable and operand.range.hi >= operand.variable.width:
                found.append(
                    diagnostic(
                        "SPEC003",
                        f"{operation.name} reads up to bit {operand.range.hi} "
                        f"of {operand.variable.name}, which is only "
                        f"{operand.variable.width} bits wide",
                        span=span,
                    )
                )

    # SPEC004: undriven output bits (own scan, not the spec's helper).
    for variable in specification.outputs():
        for bit in range(variable.width):
            if (variable.uid, bit) not in writers:
                found.append(
                    diagnostic(
                        "SPEC004",
                        f"output bit {bit} of {variable.name} is never driven",
                        span=_bit_span(variable.name, bit),
                    )
                )

    # SPEC005: dead *additive* definitions (internal destination entirely
    # unread).  Dead wiring/glue costs nothing -- comparison kernels leave
    # their difference bits unread by design -- but a dead additive result is
    # functional-unit work the datapath pays for and discards.
    read_bits: Set[BitKey] = set()
    for operation in operations:
        for operand in operation.all_read_operands():
            if not operand.is_variable:
                continue
            uid = operand.variable.uid
            for bit in operand.range:
                read_bits.add((uid, bit))
    for operation in operations:
        if not operation.is_additive:
            continue
        destination = operation.destination
        variable = destination.variable
        if variable.is_output() or variable.is_input():
            continue
        if any((variable.uid, bit) in read_bits for bit in destination.range):
            continue
        found.append(
            diagnostic(
                "SPEC005",
                f"{operation.name} writes {destination.describe()} "
                "but no bit of it is ever read",
                span=SourceSpan(kind="operation", name=operation.name or str(operation.uid)),
            )
        )

    # SPEC006: combinational self-dependence (own bit-level cycle walk).
    found.extend(_check_cycles(specification, writers, names))
    return found


def _check_cycles(
    specification: Specification,
    writers: Dict[BitKey, List[Tuple[Operation, int]]],
    names: Dict[int, str],
) -> List[Diagnostic]:
    """Detect cycles in the bit-level combinational wiring.

    Every written bit depends on the bits its definition reads: glue bits on
    their kind-specific wiring, additive result bit *i* on all operand bits
    at positions up to *i* (the ripple chain) plus the carry-in.  A cycle in
    this relation means some bit combinationally feeds itself.
    """

    def predecessors(key: BitKey) -> List[BitKey]:
        writer_list = writers.get(key)
        if not writer_list:
            return []
        operation, result_bit = writer_list[0]
        pairs = []
        if operation.is_glue:
            pairs = glue_wiring(operation, result_bit)
        else:
            for operand in operation.operands:
                top = min(result_bit + 1, operand.width)
                pairs.extend((operand, position) for position in range(top))
            if operation.carry_in is not None:
                pairs.append((operation.carry_in, 0))
        keys: List[BitKey] = []
        for operand, position in pairs:
            if operand.is_variable:
                keys.append((operand.variable.uid, operand.range.lo + position))
        return keys

    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[BitKey, int] = {}
    found: List[Diagnostic] = []
    for start in writers:
        if color.get(start, WHITE) is not WHITE:
            continue
        # Iterative DFS; a grey neighbour is a back edge, i.e. a cycle.
        stack: List[Tuple[BitKey, int]] = [(start, 0)]
        color[start] = GREY
        adjacency: Dict[BitKey, List[BitKey]] = {start: predecessors(start)}
        while stack:
            node, cursor = stack[-1]
            edges = adjacency[node]
            if cursor >= len(edges):
                color[node] = BLACK
                stack.pop()
                continue
            stack[-1] = (node, cursor + 1)
            neighbour = edges[cursor]
            state = color.get(neighbour, WHITE)
            if state == GREY:
                uid, bit = neighbour
                found.append(
                    diagnostic(
                        "SPEC006",
                        f"bit {bit} of {names.get(uid, uid)} combinationally "
                        "depends on itself",
                        span=_bit_span(names.get(uid, str(uid)), bit),
                    )
                )
                return found  # one witness is enough; the wiring is cyclic
            if state == WHITE:
                color[neighbour] = GREY
                adjacency[neighbour] = predecessors(neighbour)
                stack.append((neighbour, 0))
    return found
