"""Run the per-level checkers over a pipeline artifact.

:func:`check_artifact` is the integration point of the static verification
layer: it walks the IR levels in pipeline order (``spec`` -> ``schedule`` ->
``allocation`` -> ``netlist``), runs every checker whose subject the artifact
actually carries, and folds the findings into one
:class:`~repro.check.diagnostics.CheckReport`.
"""

from __future__ import annotations

from typing import Optional

from ..hls.flow import FlowMode
from .allocation import check_allocation
from .diagnostics import LEVELS, CheckError, CheckReport
from .netlist import check_design
from .schedule import check_schedule
from .spec import check_specification


def check_artifact(artifact, level: Optional[str] = None) -> CheckReport:
    """Check every IR level of a run artifact up to (and including) *level*.

    ``level`` names the deepest level to check (default: every level the
    artifact carries).  A level whose subject the artifact does not carry is
    skipped silently -- except an explicitly requested deepest level, whose
    absence is a caller error (e.g. asking for ``netlist`` without emission).
    """
    if level is not None and level not in LEVELS:
        raise CheckError(
            f"unknown check level {level!r}; expected one of {', '.join(LEVELS)}"
        )
    wanted = LEVELS if level is None else LEVELS[: LEVELS.index(level) + 1]
    config = artifact.config
    subject = config.workload or (
        artifact.working_specification.name
        if artifact.working_specification is not None
        else "<unnamed>"
    )
    report = CheckReport(subject=subject)
    bit_level = config.mode is not FlowMode.CONVENTIONAL

    specification = artifact.working_specification
    if "spec" in wanted and specification is not None:
        report.extend("spec", check_specification(specification))

    schedule = artifact.schedule
    if "schedule" in wanted and schedule is not None:
        report.extend(
            "schedule",
            check_schedule(
                schedule,
                budget=artifact.budget if bit_level else None,
                timing=artifact.timing,
                bit_level=bit_level,
            ),
        )

    if "allocation" in wanted and artifact.datapath is not None and schedule is not None:
        report.extend(
            "allocation",
            check_allocation(schedule, artifact.datapath, artifact.library),
        )

    if "netlist" in wanted and artifact.emission is not None:
        report.extend("netlist", check_design(artifact.emission.design))
    elif level == "netlist" and artifact.emission is None:
        raise CheckError(
            "check level 'netlist' needs an emitted design; "
            "run with emit=True (CLI: the check verb emits automatically)"
        )
    return report
