"""Mutation self-test harness: seeded corruptions the checkers must catch.

A static checker that never fires is indistinguishable from one that works.
This module keeps :mod:`repro.check` honest by applying one single-point
corruption per diagnostic code to a freshly built clean artifact and
asserting that (a) the unmutated artifact produces zero diagnostics and
(b) the corrupted artifact is flagged with exactly the intended code (other
codes may co-fire when one corruption violates several invariants at once --
e.g. unbinding an operation both orphans its unit and changes the expected
steering -- but the intended code must be among them).

Every mutation builds its own private artifact -- a fresh factory
specification, an unshared schedule, a ``reuse=False`` datapath, a fresh
emission -- so the corruptions can never leak into the memoized production
objects other callers (or later mutations) observe.  Corruptions are applied
through the same back doors a buggy analysis would use: list internals,
direct dictionary pokes, in-place dataclass surgery -- deliberately bypassing
the constructor guards whose absence the checkers must compensate for.

Entry points: :func:`run_mutations` returns one :class:`MutationOutcome` per
registered mutation; :func:`self_test` raises :class:`~repro.check.CheckError`
unless every mutation is caught and every baseline is clean (used by
``repro check --mutate`` and the CI mutation smoke).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from random import Random
from typing import Callable, Dict, List, Tuple

from ..core import TransformOptions, transform
from ..hls.allocation.functional_units import FunctionalUnitInstance
from ..hls.datapath import build_datapath
from ..hls.flow import FlowMode, run_schedule, run_timing
from ..ir.operations import Operation, OpKind
from ..ir.spec import Specification
from ..ir.types import BitVectorType
from ..ir.values import Destination, Variable
from ..rtl.design import RtlDesign
from ..rtl.emit import emit_design
from ..rtl.netlist import Gate, GateKind, Net
from ..techlib.library import default_library
from ..workloads import ALL_WORKLOADS
from ._trace import AdditiveTracer, build_writer_map, operand_bit_keys
from .allocation import check_allocation
from .diagnostics import CODE_REGISTRY, CheckError, Diagnostic, diagnostic
from .netlist import check_design
from .schedule import check_schedule
from .spec import check_specification

#: Workload every mutation corrupts; any workload with a multi-cycle
#: fragmented schedule and at least two registers works.
MUTATION_WORKLOAD = "motivational"
MUTATION_LATENCY = 3

_Findings = List[Diagnostic]
_MutationFn = Callable[[Random], Tuple[_Findings, _Findings]]
_MUTATIONS: List[Tuple[str, str, _MutationFn]] = []


class MutationError(CheckError):
    """Raised when a mutation cannot find a corruption site (harness bug)."""


@dataclass(frozen=True)
class MutationOutcome:
    """Result of one seeded corruption run."""

    name: str
    code: str
    level: str
    clean_before: bool
    caught: bool
    reported: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.clean_before and self.caught

    def describe(self) -> str:
        verdict = "ok" if self.ok else "MISSED"
        detail = ", ".join(self.reported) or "nothing"
        return f"{self.name} [{self.code}]: {verdict} (reported {detail})"


def _mutation(code: str) -> Callable[[_MutationFn], _MutationFn]:
    if code not in CODE_REGISTRY:
        raise MutationError(f"mutation registered for unknown code {code}")

    def register(fn: _MutationFn) -> _MutationFn:
        _MUTATIONS.append((fn.__name__, code, fn))
        return fn

    return register


# ----------------------------------------------------------------------
# Fresh-artifact builders (never the memoized production objects).
# ----------------------------------------------------------------------
def _fresh_spec() -> Specification:
    return ALL_WORKLOADS[MUTATION_WORKLOAD]()


def _scheduled():
    """A fresh fragmented schedule plus its budget and library."""
    spec = _fresh_spec()
    library = default_library()
    result = transform(spec, MUTATION_LATENCY, TransformOptions(check_equivalence=False))
    schedule, budget = run_schedule(
        result.transformed,
        MUTATION_LATENCY,
        library,
        FlowMode.FRAGMENTED,
        chained_bits_per_cycle=result.chained_bits_per_cycle,
    )
    return schedule, budget, library


def _allocated():
    schedule, _budget, library = _scheduled()
    datapath = build_datapath(schedule, library, reuse=False)
    return schedule, datapath, library


def _emitted() -> RtlDesign:
    schedule, _budget, library = _scheduled()
    datapath = build_datapath(schedule, library, reuse=False)
    return emit_design(schedule, library, datapath, name="mutant").design


def _pick(rng: Random, candidates, what: str):
    if not candidates:
        raise MutationError(f"no corruption site for {what}")
    return candidates[rng.randrange(len(candidates))]


def _ranges_overlap(a, b) -> bool:
    return a.lo <= b.hi and b.lo <= a.hi


def _reads_destination(reader: Operation, producer: Operation) -> bool:
    destination = producer.destination
    for operand in reader.all_read_operands():
        if operand.is_variable and operand.variable is destination.variable:
            if _ranges_overlap(operand.range, destination.range):
                return True
    return False


# ----------------------------------------------------------------------
# Specification-level mutations.
# ----------------------------------------------------------------------
@_mutation("SPEC001")
def duplicate_writer(rng: Random) -> Tuple[_Findings, _Findings]:
    """Append a second copy of an operation: its bits gain two writers."""
    spec = _fresh_spec()
    before = check_specification(spec)
    spec._operations.append(_pick(rng, list(spec._operations), "SPEC001"))
    return before, check_specification(spec)


@_mutation("SPEC002")
def read_before_write(rng: Random) -> Tuple[_Findings, _Findings]:
    """Move a producer after one of its readers in program order."""
    spec = _fresh_spec()
    before = check_specification(spec)
    operations = spec._operations
    candidates = [
        index
        for index, producer in enumerate(operations)
        if any(
            _reads_destination(reader, producer)
            for reader in operations[index + 1 :]
        )
    ]
    index = _pick(rng, candidates, "SPEC002")
    operations.append(operations.pop(index))
    return before, check_specification(spec)


@_mutation("SPEC003")
def shrink_variable(rng: Random) -> Tuple[_Findings, _Findings]:
    """Narrow a variable's type under its existing full-width accesses."""
    spec = _fresh_spec()
    before = check_specification(spec)
    candidates = [
        operation.destination.variable
        for operation in spec.operations
        if operation.destination.variable.width >= 2
        and operation.destination.range.hi == operation.destination.variable.width - 1
    ]
    variable = _pick(rng, candidates, "SPEC003")
    variable.type = BitVectorType(variable.width - 1, variable.signed)
    return before, check_specification(spec)


@_mutation("SPEC004")
def drop_output_writer(rng: Random) -> Tuple[_Findings, _Findings]:
    """Delete an operation that drives an output port."""
    spec = _fresh_spec()
    before = check_specification(spec)
    candidates = [
        operation
        for operation in spec._operations
        if operation.destination.variable.is_output()
    ]
    spec._operations.remove(_pick(rng, candidates, "SPEC004"))
    return before, check_specification(spec)


@_mutation("SPEC005")
def dead_addition(rng: Random) -> Tuple[_Findings, _Findings]:
    """Add an ADD whose result no operation ever reads."""
    spec = _fresh_spec()
    before = check_specification(spec)
    inputs = [variable for variable in spec.variables if variable.is_input()]
    a = _pick(rng, inputs, "SPEC005")
    b = _pick(rng, inputs, "SPEC005")
    dead = Variable(
        "mutant_dead_sum", BitVectorType(max(a.width, b.width) + 1, False)
    )
    spec._variables[dead.name] = dead
    spec._operations.append(
        Operation(
            kind=OpKind.ADD,
            operands=(a.whole(), b.whole()),
            destination=Destination(dead, dead.full_range()),
            name="mutant_dead_add",
        )
    )
    return before, check_specification(spec)


@_mutation("SPEC006")
def self_dependence(rng: Random) -> Tuple[_Findings, _Findings]:
    """Add a MOVE that copies a fresh variable onto itself."""
    spec = _fresh_spec()
    before = check_specification(spec)
    loop = Variable("mutant_loop", BitVectorType(2 + rng.randrange(3), False))
    spec._variables[loop.name] = loop
    spec._operations.append(
        Operation(
            kind=OpKind.MOVE,
            operands=(loop.whole(),),
            destination=Destination(loop, loop.full_range()),
            name="mutant_loop_move",
        )
    )
    return before, check_specification(spec)


# ----------------------------------------------------------------------
# Schedule-level mutations.
# ----------------------------------------------------------------------
@_mutation("SCHED001")
def unscheduled_operation(rng: Random) -> Tuple[_Findings, _Findings]:
    """Drop one operation's cycle assignment."""
    schedule, _budget, _library = _scheduled()
    before = check_schedule(schedule)
    victim = _pick(rng, list(schedule.cycle_of), "SCHED001")
    del schedule.cycle_of[victim]
    return before, check_schedule(schedule)


@_mutation("SCHED002")
def cycle_out_of_range(rng: Random) -> Tuple[_Findings, _Findings]:
    """Poke a cycle past the latency (bypassing the assign() guard)."""
    schedule, _budget, _library = _scheduled()
    before = check_schedule(schedule)
    victim = _pick(rng, list(schedule.cycle_of), "SCHED002")
    schedule.cycle_of[victim] = schedule.latency + 1 + rng.randrange(3)
    return before, check_schedule(schedule)


@_mutation("SCHED003")
def producer_after_consumer(rng: Random) -> Tuple[_Findings, _Findings]:
    """Reschedule an additive producer after one of its additive consumers."""
    schedule, _budget, _library = _scheduled()
    before = check_schedule(schedule)
    writers = build_writer_map(schedule.specification)
    tracer = AdditiveTracer(writers)
    candidates = []
    for consumer, consumer_cycle in schedule.cycle_of.items():
        if not consumer.is_additive or consumer_cycle >= schedule.latency:
            continue
        for uid, bit in operand_bit_keys(consumer):
            for source in tracer.sources(uid, bit):
                producer = writers[source][0]
                if producer is consumer:
                    continue
                producer_cycle = schedule.cycle_of.get(producer)
                if producer_cycle is not None and producer_cycle <= consumer_cycle:
                    candidates.append((producer, consumer_cycle))
    producer, consumer_cycle = _pick(rng, candidates, "SCHED003")
    schedule.cycle_of[producer] = consumer_cycle + 1
    return before, check_schedule(schedule)


@_mutation("SCHED004")
def budget_blown(rng: Random) -> Tuple[_Findings, _Findings]:
    """Collapse the whole schedule into cycle 1: the chain exceeds the budget."""
    schedule, budget, _library = _scheduled()
    before = check_schedule(schedule, budget=budget)
    for operation in list(schedule.cycle_of):
        schedule.cycle_of[operation] = 1
    return before, check_schedule(schedule, budget=budget)


@_mutation("SCHED005")
def tampered_timing(rng: Random) -> Tuple[_Findings, _Findings]:
    """Corrupt one cycle of the recorded timing analysis."""
    schedule, _budget, library = _scheduled()
    timing = run_timing(schedule, library, FlowMode.FRAGMENTED)
    before = check_schedule(schedule, timing=timing)
    cycle = _pick(rng, sorted(timing.cycle_chained_bits), "SCHED005")
    timing.cycle_chained_bits[cycle] += 1
    return before, check_schedule(schedule, timing=timing)


@_mutation("SCHED006")
def poisoned_window(rng: Random) -> Tuple[_Findings, _Findings]:
    """Hand the list scheduler a mobility window past the latency horizon.

    Unlike the other mutations this one corrupts a scheduler *input* rather
    than a finished artifact: the list scheduler must refuse the infeasible
    window with a coded :class:`SchedulingError` instead of silently clamping
    the operation somewhere illegal (the pre-SCHED006 fallback did exactly
    that).  The coded raise is converted into the matching diagnostic so the
    harness can assert it fires.
    """
    from ..hls.scheduling.asap_alap import (
        SchedulingError,
        alap_chained,
        asap_chained,
        mobility_windows,
    )
    from ..hls.scheduling.list_scheduler import list_schedule, minimize_clock_period

    spec = _fresh_spec()
    library = default_library()
    search = minimize_clock_period(spec, MUTATION_LATENCY, library)
    before = check_schedule(
        list_schedule(spec, MUTATION_LATENCY, search.clock_period_ns, library)
    )
    graph = spec.dataflow_graph()
    asap = asap_chained(spec, search.clock_period_ns, library, graph)
    alap = alap_chained(spec, search.clock_period_ns, MUTATION_LATENCY, library, graph)
    windows = dict(mobility_windows(asap, alap))
    victim = _pick(rng, sorted(windows, key=lambda op: op.name), "SCHED006")
    windows[victim] = (MUTATION_LATENCY + 1, MUTATION_LATENCY + 1)
    try:
        list_schedule(
            spec, MUTATION_LATENCY, search.clock_period_ns, library, windows=windows
        )
    except SchedulingError as error:
        if error.code != "SCHED006":
            raise MutationError(
                f"expected a SCHED006 refusal, got code {error.code!r}"
            ) from error
        after = [diagnostic("SCHED006", str(error))]
    else:
        raise MutationError("the scheduler accepted an infeasible window")
    return before, after


# ----------------------------------------------------------------------
# Allocation-level mutations.
# ----------------------------------------------------------------------
@_mutation("ALLOC001")
def overlapping_groups(rng: Random) -> Tuple[_Findings, _Findings]:
    """Move a value group into a register whose tenant's lifetime overlaps."""
    schedule, datapath, library = _allocated()
    before = check_allocation(schedule, datapath, library)
    registers = datapath.registers.registers
    candidates = []
    for source in registers:
        for group in source.groups:
            for target in registers:
                if target is source or group.width > target.width:
                    continue
                if any(
                    group.birth_cycle < tenant.death_cycle
                    and tenant.birth_cycle < group.death_cycle
                    for tenant in target.groups
                ):
                    candidates.append((source, group, target))
    source, group, target = _pick(rng, candidates, "ALLOC001")
    source.groups.remove(group)
    target.groups.append(group)
    return before, check_allocation(schedule, datapath, library)


@_mutation("ALLOC002")
def double_booked_unit(rng: Random) -> Tuple[_Findings, _Findings]:
    """Rebind an operation onto a unit already busy in its cycle."""
    schedule, datapath, library = _allocated()
    before = check_allocation(schedule, datapath, library)
    binding = datapath.functional_units.binding
    occupied: Dict[str, Dict[int, Operation]] = {}
    for operation, instance in binding.items():
        occupied.setdefault(instance.identifier, {})[
            schedule.cycle_of[operation]
        ] = operation
    candidates = []
    for operation, instance in binding.items():
        cycle = schedule.cycle_of[operation]
        for other in datapath.functional_units.instances:
            if other.identifier == instance.identifier:
                continue
            if other.category != instance.category or other.width < instance.width:
                continue
            if cycle in occupied.get(other.identifier, {}):
                candidates.append((operation, other))
    operation, other = _pick(rng, candidates, "ALLOC002")
    binding[operation] = other
    return before, check_allocation(schedule, datapath, library)


@_mutation("ALLOC003")
def understated_multiplexer(rng: Random) -> Tuple[_Findings, _Findings]:
    """Shrink one recorded multiplexer's fan-in by one."""
    schedule, datapath, library = _allocated()
    before = check_allocation(schedule, datapath, library)
    multiplexers = datapath.interconnect.multiplexers
    candidates = [
        index for index, mux in enumerate(multiplexers) if mux.fan_in >= 2
    ]
    index = _pick(rng, candidates, "ALLOC003")
    multiplexers[index] = replace(
        multiplexers[index], fan_in=multiplexers[index].fan_in - 1
    )
    return before, check_allocation(schedule, datapath, library)


@_mutation("ALLOC004")
def orphaned_unit(rng: Random) -> Tuple[_Findings, _Findings]:
    """Append a functional unit that hosts no operation."""
    schedule, datapath, library = _allocated()
    before = check_allocation(schedule, datapath, library)
    datapath.functional_units.instances.append(
        FunctionalUnitInstance(
            identifier="mutant_spare0",
            category="adder",
            width=2 + rng.randrange(4),
            area_gates=0.0,
        )
    )
    return before, check_allocation(schedule, datapath, library)


@_mutation("ALLOC005")
def unbound_operation(rng: Random) -> Tuple[_Findings, _Findings]:
    """Delete one operation's functional-unit binding."""
    schedule, datapath, library = _allocated()
    before = check_allocation(schedule, datapath, library)
    binding = datapath.functional_units.binding
    victim = _pick(rng, list(binding), "ALLOC005")
    del binding[victim]
    return before, check_allocation(schedule, datapath, library)


@_mutation("ALLOC006")
def stretched_lifetime(rng: Random) -> Tuple[_Findings, _Findings]:
    """Extend one stored group's recorded death past its real last use."""
    schedule, datapath, library = _allocated()
    before = check_allocation(schedule, datapath, library)
    candidates = [
        (register, index)
        for register in datapath.registers.registers
        for index, group in enumerate(register.groups)
        if group.needs_storage
    ]
    register, index = _pick(rng, candidates, "ALLOC006")
    group = register.groups[index]
    register.groups[index] = replace(group, death_cycle=group.death_cycle + 2)
    return before, check_allocation(schedule, datapath, library)


# ----------------------------------------------------------------------
# Netlist-level mutations.
# ----------------------------------------------------------------------
def _net_uses(design: RtlDesign) -> Dict[Net, int]:
    uses: Dict[Net, int] = {}
    for gate in design.netlist.gates:
        for net in gate.inputs:
            uses[net] = uses.get(net, 0) + 1
    for nets in design.output_ports.values():
        for net in nets:
            uses[net] = uses.get(net, 0) + 1
    for element in design.state_elements:
        for net in element.d_nets:
            uses[net] = uses.get(net, 0) + 1
    for net in design.netlist.outputs:
        uses[net] = uses.get(net, 0) + 1
    return uses


@_mutation("NET001")
def combinational_loop(rng: Random) -> Tuple[_Findings, _Findings]:
    """Feed a gate's own output back into its first input."""
    design = _emitted()
    before = check_design(design)
    uses = _net_uses(design)
    candidates = [
        gate
        for gate in design.netlist.gates
        if len(gate.inputs) == 2 and uses.get(gate.inputs[0], 0) >= 2
    ]
    gate = _pick(rng, candidates, "NET001")
    gate.inputs = (gate.output, gate.inputs[1])
    return before, check_design(design)


@_mutation("NET002")
def double_driver(rng: Random) -> Tuple[_Findings, _Findings]:
    """Smuggle in a second gate driving an already-driven net."""
    design = _emitted()
    before = check_design(design)
    netlist = design.netlist
    source = _pick(rng, list(netlist.inputs), "NET002")
    victim = _pick(rng, list(netlist.gates), "NET002")
    netlist._gates.append(
        Gate(
            kind=GateKind.BUF,
            inputs=(source,),
            output=victim.output,
            name="mutant_buf",
        )
    )
    return before, check_design(design)


@_mutation("NET003")
def floating_input(rng: Random) -> Tuple[_Findings, _Findings]:
    """Rewire a gate input to a net nothing drives."""
    design = _emitted()
    before = check_design(design)
    uses = _net_uses(design)
    candidates = [
        gate
        for gate in design.netlist.gates
        if len(gate.inputs) == 2 and uses.get(gate.inputs[0], 0) >= 2
    ]
    gate = _pick(rng, candidates, "NET003")
    gate.inputs = (Net("mutant_floating"), gate.inputs[1])
    return before, check_design(design)


@_mutation("NET004")
def widened_element(rng: Random) -> Tuple[_Findings, _Findings]:
    """Declare one extra bit on a state element without wiring it."""
    design = _emitted()
    before = check_design(design)
    candidates = [
        element for element in design.state_elements if element.role != "fsm"
    ]
    element = _pick(rng, candidates, "NET004")
    element.width += 1
    return before, check_design(design)


@_mutation("NET005")
def unobservable_gate(rng: Random) -> Tuple[_Findings, _Findings]:
    """Add a gate whose output reaches no output or state element."""
    design = _emitted()
    before = check_design(design)
    netlist = design.netlist
    inputs = list(netlist.inputs)
    a = _pick(rng, inputs, "NET005")
    b = _pick(rng, inputs, "NET005")
    netlist.add_gate(GateKind.AND, (a, b))
    return before, check_design(design)


@_mutation("NET006")
def stuck_state_bit(rng: Random) -> Tuple[_Findings, _Findings]:
    """Force one FSM next-state bit to zero: states become unreachable."""
    design = _emitted()
    before = check_design(design)
    fsm = _pick(rng, design.elements_of("fsm"), "NET006")
    bit = rng.randrange(len(fsm.d_nets))
    fsm.d_nets[bit] = design.netlist.constant(0)
    return before, check_design(design)


@_mutation("NET007")
def never_loaded_register(rng: Random) -> Tuple[_Findings, _Findings]:
    """Wire a capture register's d straight back to its q: it never loads."""
    design = _emitted()
    before = check_design(design)
    element = _pick(rng, design.elements_of("capture"), "NET007")
    element.d_nets = list(element.q_nets)
    return before, check_design(design)


# ----------------------------------------------------------------------
# Harness entry points.
# ----------------------------------------------------------------------
def run_mutations(seed: int = 2005) -> List[MutationOutcome]:
    """Run every registered mutation; returns one outcome per diagnostic code."""
    master = Random(seed)
    outcomes: List[MutationOutcome] = []
    for name, code, fn in _MUTATIONS:
        rng = Random(master.randrange(2**32))
        before, after = fn(rng)
        reported = tuple(sorted({finding.code for finding in after}))
        outcomes.append(
            MutationOutcome(
                name=name,
                code=code,
                level=CODE_REGISTRY[code][0],
                clean_before=not before,
                caught=code in reported,
                reported=reported,
            )
        )
    return outcomes


def self_test(seed: int = 2005) -> List[MutationOutcome]:
    """Raise :class:`CheckError` unless every seeded corruption is caught."""
    outcomes = run_mutations(seed)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        lines = "\n".join(f"  {outcome.describe()}" for outcome in failures)
        raise CheckError(
            f"{len(failures)} of {len(outcomes)} mutations escaped the "
            f"checkers:\n{lines}"
        )
    return outcomes
