"""Allocation-level checks (``ALLOC0xx``).

The checker recomputes value lifetimes and steering requirements from first
principles -- its own writer map, its own glue trace, its own run-compressed
source classification -- and compares them against what the allocator
actually recorded in the :class:`~repro.hls.datapath.Datapath`.  It never
calls :func:`~repro.hls.allocation.registers.analyze_lifetimes`,
:func:`~repro.hls.allocation.interconnect.estimate_interconnect` or their
shared per-specification caches.

Invariants:

* ``ALLOC001`` -- no two value groups hosted by one register have
  overlapping live intervals (a value lives over ``(birth, death]``);
* ``ALLOC002`` -- no functional-unit instance executes two operations in
  the same cycle;
* ``ALLOC003`` -- the recorded multiplexer list matches the independently
  recomputed steering requirements (location, fan-in and width);
* ``ALLOC004`` (warning) -- no allocated register or functional unit is
  orphaned (hosting nothing);
* ``ALLOC005`` -- every bindable operation is bound to an instance of the
  right category and sufficient width, and no glue operation is bound;
* ``ALLOC006`` -- every stored value group agrees with the independently
  recomputed lifetime (birth, death, producer, register coverage), and every
  cycle-crossing additive result bit is stored somewhere.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..hls.datapath import Datapath
from ..hls.schedule import Schedule
from ..ir.operations import Operation
from ..techlib.library import TechnologyLibrary
from ._trace import AdditiveTracer, BitKey, build_writer_map, wiring_canonical
from .diagnostics import Diagnostic, SourceSpan, diagnostic

#: Unit categories sized by the operation's carry-chain length rather than
#: the destination width (mirrors the binder's ``_operation_fu_width``).
_CHAIN_SIZED_CATEGORIES = ("adder", "comparator", "maxmin")


def check_allocation(
    schedule: Schedule,
    datapath: Datapath,
    library: TechnologyLibrary,
) -> List[Diagnostic]:
    """Run every allocation-level check; returns the findings."""
    found: List[Diagnostic] = []
    specification = schedule.specification
    cycle_of = schedule.cycle_of
    functional_units = datapath.functional_units
    registers = datapath.registers.registers

    writers = build_writer_map(specification)
    tracer = AdditiveTracer(writers)

    # ------------------------------------------------------------------
    # ALLOC005: binding completeness and fitness.
    for operation in specification.operations:
        unit_spec = library.functional_unit_for(operation)
        bound = functional_units.binding.get(operation)
        span = SourceSpan(kind="operation", name=operation.name or str(operation.uid))
        if unit_spec is None:
            if bound is not None:
                found.append(
                    diagnostic(
                        "ALLOC005",
                        f"glue operation {operation.name} is bound to "
                        f"{bound.identifier}",
                        span=span,
                    )
                )
            continue
        if bound is None:
            found.append(
                diagnostic(
                    "ALLOC005",
                    f"operation {operation.name} needs a {unit_spec.category} "
                    "but is not bound to any instance",
                    span=span,
                )
            )
            continue
        if bound.category != unit_spec.category:
            found.append(
                diagnostic(
                    "ALLOC005",
                    f"operation {operation.name} needs a {unit_spec.category} "
                    f"but is bound to {bound.identifier} ({bound.category})",
                    span=span,
                )
            )
            continue
        if unit_spec.category in _CHAIN_SIZED_CATEGORIES:
            needed = max(operation.max_operand_width(), 1)
        else:
            needed = unit_spec.width
        if bound.width < needed:
            found.append(
                diagnostic(
                    "ALLOC005",
                    f"operation {operation.name} needs {needed} bits but "
                    f"{bound.identifier} is {bound.width} bits wide",
                    span=span,
                )
            )

    # ------------------------------------------------------------------
    # ALLOC002: per-instance cycle conflicts (own occupancy table).
    occupancy: Dict[str, Dict[int, Operation]] = {}
    for operation, instance in functional_units.binding.items():
        cycle = cycle_of.get(operation)
        if cycle is None:
            continue  # SCHED001 territory
        holders = occupancy.setdefault(instance.identifier, {})
        other = holders.get(cycle)
        if other is not None:
            found.append(
                diagnostic(
                    "ALLOC002",
                    f"{instance.identifier} executes both {other.name} and "
                    f"{operation.name} in cycle {cycle}",
                    span=SourceSpan(
                        kind="unit", name=instance.identifier, cycle=cycle
                    ),
                )
            )
        else:
            holders[cycle] = operation

    # ------------------------------------------------------------------
    # ALLOC004 (warning): orphaned resources.
    bound_instances = {instance.identifier for instance in functional_units.binding.values()}
    for instance in functional_units.instances:
        if instance.identifier not in bound_instances:
            found.append(
                diagnostic(
                    "ALLOC004",
                    f"functional unit {instance.identifier} hosts no operation",
                    span=SourceSpan(kind="unit", name=instance.identifier),
                )
            )
    for register in registers:
        if not register.groups:
            found.append(
                diagnostic(
                    "ALLOC004",
                    f"register {register.identifier} stores no value group",
                    span=SourceSpan(kind="register", name=register.identifier),
                )
            )

    # ------------------------------------------------------------------
    # Independent lifetime recomputation: birth/producer of every additive
    # destination bit, death = latest additive consumer traced through glue.
    birth: Dict[BitKey, int] = {}
    death: Dict[BitKey, int] = {}
    producer_of: Dict[BitKey, Operation] = {}
    complete = True
    for operation in specification.operations:
        if not operation.is_additive:
            continue
        cycle = cycle_of.get(operation)
        if cycle is None:
            complete = False
            continue
        destination = operation.destination
        uid = destination.variable.uid
        for bit in destination.range:
            key = (uid, bit)
            if key in birth:
                continue  # SPEC001 territory; first writer wins
            birth[key] = cycle
            death[key] = cycle
            producer_of[key] = operation
    for operation in specification.operations:
        if not operation.is_additive:
            continue
        cycle = cycle_of.get(operation)
        if cycle is None:
            continue
        for operand in operation.all_read_operands():
            if not operand.is_variable:
                continue
            uid = operand.variable.uid
            for bit in operand.range:
                for source in tracer.sources(uid, bit):
                    if source in birth and death[source] < cycle:
                        death[source] = cycle

    # ------------------------------------------------------------------
    # ALLOC006: every hosted group against the recomputed lifetimes.
    hosted_bits: Dict[BitKey, str] = {}
    names = {variable.uid: variable.name for variable in specification.variables}
    for register in registers:
        span = SourceSpan(kind="register", name=register.identifier)
        for group in register.groups:
            label = f"{group.variable.name}[{group.low_bit + group.width - 1}:{group.low_bit}]"
            if group.width > register.width:
                found.append(
                    diagnostic(
                        "ALLOC006",
                        f"group {label} is wider than {register.identifier} "
                        f"({group.width} > {register.width})",
                        span=span,
                    )
                )
            for bit in range(group.low_bit, group.low_bit + group.width):
                key = (group.variable.uid, bit)
                previous = hosted_bits.get(key)
                if previous is not None:
                    found.append(
                        diagnostic(
                            "ALLOC006",
                            f"bit {bit} of {group.variable.name} is stored in "
                            f"both {previous} and {register.identifier}",
                            span=SourceSpan(
                                kind="bit", name=group.variable.name, bit=bit
                            ),
                        )
                    )
                else:
                    hosted_bits[key] = register.identifier
                if key not in birth:
                    if complete:
                        found.append(
                            diagnostic(
                                "ALLOC006",
                                f"group {label} stores bit {bit} of "
                                f"{group.variable.name}, which no scheduled "
                                "additive operation produces",
                                span=span,
                            )
                        )
                    continue
                if birth[key] != group.birth_cycle or death[key] != group.death_cycle:
                    found.append(
                        diagnostic(
                            "ALLOC006",
                            f"group {label} records lifetime "
                            f"({group.birth_cycle} -> {group.death_cycle}) but "
                            f"recomputation finds ({birth[key]} -> {death[key]})",
                            span=span,
                        )
                    )
                elif group.producer is not producer_of[key]:
                    recorded = group.producer.name if group.producer else "nothing"
                    found.append(
                        diagnostic(
                            "ALLOC006",
                            f"group {label} records producer {recorded} but "
                            f"{producer_of[key].name} writes it",
                            span=span,
                        )
                    )
    if complete:
        for key, born in birth.items():
            if death[key] > born and key not in hosted_bits:
                uid, bit = key
                found.append(
                    diagnostic(
                        "ALLOC006",
                        f"bit {bit} of {names.get(uid, uid)} lives from cycle "
                        f"{born} to {death[key]} but no register stores it",
                        span=SourceSpan(kind="bit", name=names.get(uid, str(uid)), bit=bit),
                    )
                )

    # ------------------------------------------------------------------
    # ALLOC001: interval overlap inside one register, recorded intervals.
    for register in registers:
        groups = sorted(
            register.groups, key=lambda group: (group.birth_cycle, group.death_cycle)
        )
        for first, second in zip(groups, groups[1:]):
            # Values occupy (birth, death]; adjacent groups may share the
            # boundary cycle (one dies as the other is born).
            if first.birth_cycle < second.death_cycle and second.birth_cycle < first.death_cycle:
                found.append(
                    diagnostic(
                        "ALLOC001",
                        f"{register.identifier} stores {first.variable.name}"
                        f"({first.birth_cycle} -> {first.death_cycle}) and "
                        f"{second.variable.name}({second.birth_cycle} -> "
                        f"{second.death_cycle}) with overlapping lifetimes",
                        span=SourceSpan(kind="register", name=register.identifier),
                    )
                )

    # ------------------------------------------------------------------
    # ALLOC003: recorded multiplexers against an independent recomputation.
    if complete:
        found.extend(
            _check_interconnect(schedule, datapath, writers, tracer)
        )
    return found


def _check_interconnect(
    schedule: Schedule,
    datapath: Datapath,
    writers: Dict[BitKey, Tuple[Operation, int]],
    tracer: AdditiveTracer,
) -> List[Diagnostic]:
    """Recompute every steering requirement and diff against the record."""
    specification = schedule.specification
    cycle_of = schedule.cycle_of
    functional_units = datapath.functional_units
    registers = datapath.registers.registers

    group_register: Dict[BitKey, int] = {}
    for index, register in enumerate(registers):
        for group in register.groups:
            for bit in range(group.low_bit, group.low_bit + group.width):
                group_register.setdefault((group.variable.uid, bit), index)

    def bit_source(consumer_cycle: int, uid: int, bit: int) -> Tuple:
        canonical = wiring_canonical(writers, uid, bit)
        if canonical is None:
            return (("const", 0), 0)
        definition = writers.get(canonical)
        if definition is None:
            return (("port", canonical[0]), canonical[1])
        producer = definition[0]
        producer_cycle = cycle_of.get(producer)
        if producer_cycle == consumer_cycle:
            instance = functional_units.binding.get(producer)
            if instance is None:
                return (("glue", producer.uid), canonical[1])
            return (("fu", instance.identifier), canonical[1])
        register_index = group_register.get(canonical)
        if register_index is None:
            return (("wire", canonical[0]), canonical[1])
        return (("reg", register_index), canonical[1])

    def operand_signature(operation: Operation, operand) -> Tuple:
        if not operand.is_variable:
            return (("const", operand.constant.value, operand.width),)
        consumer_cycle = cycle_of[operation]
        uid = operand.variable.uid
        runs: List[Tuple] = []
        for bit in operand.range:
            head, position = bit_source(consumer_cycle, uid, bit)
            if runs:
                last_head, last_start, last_length = runs[-1]
                if last_head == head and position == last_start + last_length:
                    runs[-1] = (last_head, last_start, last_length + 1)
                    continue
            runs.append((head, position, 1))
        return tuple(runs)

    # Expected multiplexers: location -> (fan_in, width).
    expected: Dict[str, Tuple[int, int]] = {}
    hosted: Dict[str, List[Operation]] = {}
    for operation, instance in functional_units.binding.items():
        hosted.setdefault(instance.identifier, []).append(operation)
    for instance in functional_units.instances:
        operations = hosted.get(instance.identifier, [])
        if not operations:
            continue  # unhosted instances get no steering (ALLOC004 covers them)
        port_sources: Dict[int, Set[Tuple]] = {}
        carry_sources: Set[Tuple] = set()
        for operation in operations:
            for port_index, operand in enumerate(operation.operands):
                port_sources.setdefault(port_index, set()).add(
                    operand_signature(operation, operand)
                )
            if operation.carry_in is not None:
                carry_sources.add(operand_signature(operation, operation.carry_in))
        for port_index, sources in port_sources.items():
            expected[f"{instance.identifier}.in{port_index}"] = (
                max(1, len(sources)),
                instance.width,
            )
        if carry_sources:
            expected[f"{instance.identifier}.carry"] = (max(1, len(carry_sources)), 1)
    for index, register in enumerate(registers):
        writer_keys: Set[Tuple] = set()
        for group in register.groups:
            if group.producer is None:
                continue
            instance = functional_units.binding.get(group.producer)
            if instance is None:
                writer_keys.add(("glue", group.producer.uid))
            else:
                writer_keys.add(("fu", instance.identifier))
        expected[f"reg{index}.in"] = (max(1, len(writer_keys)), register.width)

    found: List[Diagnostic] = []
    recorded: Dict[str, Tuple[int, int]] = {}
    for mux in datapath.interconnect.multiplexers:
        span = SourceSpan(kind="mux", name=mux.location)
        if mux.location in recorded:
            found.append(
                diagnostic(
                    "ALLOC003",
                    f"multiplexer {mux.location} is recorded twice",
                    span=span,
                )
            )
            continue
        recorded[mux.location] = (mux.fan_in, mux.width)
    for location, (fan_in, width) in expected.items():
        have = recorded.pop(location, None)
        span = SourceSpan(kind="mux", name=location)
        if have is None:
            found.append(
                diagnostic(
                    "ALLOC003",
                    f"multiplexer {location} ({fan_in}-to-1 x {width}) is "
                    "required but not recorded",
                    span=span,
                )
            )
        elif have != (fan_in, width):
            found.append(
                diagnostic(
                    "ALLOC003",
                    f"multiplexer {location} recorded as {have[0]}-to-1 x "
                    f"{have[1]} bits, recomputation requires {fan_in}-to-1 x "
                    f"{width} bits",
                    span=span,
                )
            )
    for location in recorded:
        found.append(
            diagnostic(
                "ALLOC003",
                f"multiplexer {location} is recorded but no operand needs it",
                span=SourceSpan(kind="mux", name=location),
            )
        )
    return found
