"""Static verification layer: independent checkers over every IR level.

The flow's artifacts -- behavioural specification, chained-bit schedule,
allocated datapath, emitted gate-level design -- each promise a set of
structural invariants.  This package re-derives those invariants from first
principles (its own def-use maps, its own glue trace, its own lifetime and
steering recomputation, its own netlist walks) and diffs them against what
the production analyses recorded, reporting disagreements as stable-coded
:class:`Diagnostic` findings.  The checkers deliberately share no code or
caches with the analyses they audit, so a bug on either side surfaces as a
diagnostic instead of being validated against itself.

The mutation harness (:mod:`repro.check.mutate`) keeps the checkers honest:
it applies seeded single-point corruptions to clean artifacts and asserts
each one is caught by exactly the intended error code.
"""

from .allocation import check_allocation
from .diagnostics import (
    CODE_REGISTRY,
    LEVELS,
    CheckError,
    CheckReport,
    Diagnostic,
    Severity,
    SourceSpan,
    diagnostic,
)
from .mutate import MutationOutcome, run_mutations, self_test
from .netlist import check_design
from .runner import check_artifact
from .schedule import check_schedule
from .spec import check_specification

__all__ = [
    "CODE_REGISTRY",
    "LEVELS",
    "CheckError",
    "CheckReport",
    "Diagnostic",
    "MutationOutcome",
    "Severity",
    "SourceSpan",
    "check_allocation",
    "check_artifact",
    "check_design",
    "check_schedule",
    "check_specification",
    "diagnostic",
    "run_mutations",
    "self_test",
]
