"""Netlist-level checks (``NET0xx``) over an emitted :class:`RtlDesign`.

Structure is re-derived by scanning the gate list directly (own driver map,
own topological sort, own reachability closures) rather than trusting the
:class:`~repro.rtl.netlist.Netlist` bookkeeping, so a netlist corrupted past
``add_gate``'s guards is still caught.  The behavioural checks (FSM
reachability, load-enable coverage) run on a small lane-packed evaluator of
this module -- not on the production simulator -- with two probe lanes per
state element.

Invariants:

* ``NET001`` -- the combinational cloud is acyclic;
* ``NET002`` -- no net has two driving gates;
* ``NET003`` -- every consumed net (gate input, output-port bit, state
  element ``d``) is driven by a gate or is a primary input;
* ``NET004`` -- module boundaries are width-consistent: state elements have
  ``width`` matching their ``q``/``d`` buses, ``q`` bits and input-port bits
  are primary inputs of the cloud;
* ``NET005`` (warning) -- every gate output reaches an observable root (an
  output port or a state element ``d``);
* ``NET006`` -- the FSM is autonomous (its next state reads nothing but its
  own ``q``) and walks every one of its ``latency`` states from reset;
* ``NET007`` -- every non-FSM state element is load-enabled in at least one
  reachable FSM state (a register nothing ever writes stores nothing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rtl.design import RtlDesign
from ..rtl.netlist import Gate, GateKind, Net
from .diagnostics import Diagnostic, SourceSpan, diagnostic


def check_design(design: RtlDesign) -> List[Diagnostic]:
    """Run every netlist-level check; returns the findings."""
    found: List[Diagnostic] = []
    netlist = design.netlist
    gates: Sequence[Gate] = netlist.gates
    primary: Set[Net] = set(netlist.inputs)

    # Own driver map (NET002 on collisions).
    driver: Dict[Net, Gate] = {}
    for gate in gates:
        other = driver.get(gate.output)
        if other is not None:
            found.append(
                diagnostic(
                    "NET002",
                    f"net {gate.output.name} is driven by both {other.name} "
                    f"and {gate.name}",
                    span=SourceSpan(kind="net", name=gate.output.name),
                )
            )
        else:
            driver[gate.output] = gate

    # NET001: own topological sort of the gate graph.
    order = _topological_order(gates, driver)
    if order is None:
        cyclic = _cycle_witness(gates, driver)
        found.append(
            diagnostic(
                "NET001",
                f"combinational cycle through gate {cyclic.name}"
                if cyclic is not None
                else "combinational cycle in the gate graph",
                span=SourceSpan(kind="gate", name=cyclic.name) if cyclic else None,
            )
        )

    # NET003: every consumed net must be driven or primary.
    consumed: Dict[Net, str] = {}
    for gate in gates:
        for net in gate.inputs:
            consumed.setdefault(net, f"gate {gate.name}")
    for port, nets in design.output_ports.items():
        for bit, net in enumerate(nets):
            consumed.setdefault(net, f"output {port}[{bit}]")
    for element in design.state_elements:
        for bit, net in enumerate(element.d_nets):
            consumed.setdefault(net, f"element {element.name}.d[{bit}]")
    for net in netlist.outputs:
        consumed.setdefault(net, "netlist output")
    for net, reader in consumed.items():
        if net not in driver and net not in primary:
            found.append(
                diagnostic(
                    "NET003",
                    f"net {net.name} feeds {reader} but nothing drives it",
                    span=SourceSpan(kind="net", name=net.name),
                )
            )

    # NET004: boundary width and port wiring consistency.
    for element in design.state_elements:
        span = SourceSpan(kind="element", name=element.name)
        if len(element.q_nets) != element.width or len(element.d_nets) != element.width:
            found.append(
                diagnostic(
                    "NET004",
                    f"element {element.name} declares {element.width} bits but "
                    f"has {len(element.q_nets)} q / {len(element.d_nets)} d nets",
                    span=span,
                )
            )
            continue
        for bit, net in enumerate(element.q_nets):
            if net not in primary:
                found.append(
                    diagnostic(
                        "NET004",
                        f"q bit {bit} of element {element.name} "
                        f"({net.name}) is not a primary input of the cloud",
                        span=SourceSpan(kind="element", name=element.name, bit=bit),
                    )
                )
    for port, nets in design.input_ports.items():
        for bit, net in enumerate(nets):
            if net not in primary:
                found.append(
                    diagnostic(
                        "NET004",
                        f"input bit {bit} of port {port} ({net.name}) is not "
                        "a primary input of the cloud",
                        span=SourceSpan(kind="net", name=net.name, bit=bit),
                    )
                )

    # NET005 (warning): gates whose output reaches no observable root.
    roots: List[Net] = []
    for nets in design.output_ports.values():
        roots.extend(nets)
    for element in design.state_elements:
        roots.extend(element.d_nets)
    roots.extend(netlist.outputs)
    reached: Set[Net] = set()
    stack = [net for net in roots]
    while stack:
        net = stack.pop()
        if net in reached:
            continue
        reached.add(net)
        gate = driver.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
    for gate in gates:
        if gate.output not in reached:
            found.append(
                diagnostic(
                    "NET005",
                    f"gate {gate.name} drives {gate.output.name}, which "
                    "reaches no output or state element",
                    span=SourceSpan(kind="gate", name=gate.name),
                )
            )

    # Behavioural checks need a sound evaluation order.
    if order is None:
        return found
    found.extend(_check_state_machine(design, driver, order, primary))
    return found


def _topological_order(
    gates: Sequence[Gate], driver: Dict[Net, Gate]
) -> Optional[List[Gate]]:
    """Kahn order of the gate graph; ``None`` when it is cyclic."""
    dependents: Dict[Gate, List[Gate]] = {}
    in_degree: Dict[Gate, int] = {}
    for gate in gates:
        feeders = {driver[net] for net in gate.inputs if net in driver}
        in_degree[gate] = in_degree.get(gate, 0) + len(feeders)
        for feeder in feeders:
            dependents.setdefault(feeder, []).append(gate)
    ready = [gate for gate in gates if in_degree.get(gate, 0) == 0]
    order: List[Gate] = []
    cursor = 0
    while cursor < len(ready):
        gate = ready[cursor]
        cursor += 1
        order.append(gate)
        for dependent in dependents.get(gate, ()):
            in_degree[dependent] -= 1
            if in_degree[dependent] == 0:
                ready.append(dependent)
    if len(order) != len(gates):
        return None
    return order


def _cycle_witness(gates: Sequence[Gate], driver: Dict[Net, Gate]) -> Optional[Gate]:
    """One gate that sits on (or feeds into) a combinational cycle."""
    dependents: Dict[Gate, List[Gate]] = {}
    in_degree: Dict[Gate, int] = {gate: 0 for gate in gates}
    for gate in gates:
        for net in gate.inputs:
            feeder = driver.get(net)
            if feeder is not None:
                in_degree[gate] += 1
                dependents.setdefault(feeder, []).append(gate)
    ready = [gate for gate in gates if in_degree[gate] == 0]
    cursor = 0
    removed = 0
    while cursor < len(ready):
        gate = ready[cursor]
        cursor += 1
        removed += 1
        for dependent in dependents.get(gate, ()):
            in_degree[dependent] -= 1
            if in_degree[dependent] == 0:
                ready.append(dependent)
    if removed == len(gates):
        return None
    for gate in gates:
        if in_degree[gate] > 0:
            return gate
    return None


def _check_state_machine(
    design: RtlDesign,
    driver: Dict[Net, Gate],
    order: List[Gate],
    primary: Set[Net],
) -> List[Diagnostic]:
    """``NET006``/``NET007``: FSM reachability and load-enable coverage.

    Both run on one lane-packed pass: for every reachable FSM state the
    cloud is evaluated once with two probe lanes per non-FSM element (its
    ``q`` all-zeros in the even lane, all-ones in the odd lane, every other
    element zero in both).  A hold path gives ``d == q`` in both lanes; any
    disagreement means the element loads in that state.  The FSM's own next
    state is read from the same evaluation (autonomy makes it lane-uniform).
    """
    found: List[Diagnostic] = []
    fsm_elements = design.elements_of("fsm")
    if not fsm_elements:
        return found
    fsm_q: List[Net] = []
    fsm_d: List[Net] = []
    for element in fsm_elements:
        if len(element.q_nets) != element.width or len(element.d_nets) != element.width:
            return found  # NET004 already reported; geometry is unusable
        fsm_q.extend(element.q_nets)
        fsm_d.extend(element.d_nets)
    fsm_q_set = set(fsm_q)

    # NET006 (autonomy): the next-state cone may read only the FSM's own q.
    cone: Set[Net] = set()
    stack = list(fsm_d)
    foreign: Set[str] = set()
    while stack:
        net = stack.pop()
        if net in cone:
            continue
        cone.add(net)
        gate = driver.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
        elif net in primary and net not in fsm_q_set:
            foreign.add(net.name)
    if foreign:
        names = ", ".join(sorted(foreign))
        found.append(
            diagnostic(
                "NET006",
                f"FSM next state depends on non-FSM inputs: {names}",
                span=SourceSpan(kind="element", name=fsm_elements[0].name),
            )
        )
        return found

    probed = [e for e in design.state_elements if e.role != "fsm"]
    ok_geometry = [
        e
        for e in probed
        if len(e.q_nets) == e.width and len(e.d_nets) == e.width
    ]
    lanes = max(1, 2 * len(ok_geometry))
    mask = (1 << lanes) - 1

    init_bits: List[int] = []
    for element in fsm_elements:
        for bit in range(element.width):
            init_bits.append((element.init >> bit) & 1)

    state_bits = init_bits
    visited: List[Tuple[int, ...]] = []
    seen_states: Set[Tuple[int, ...]] = set()
    loads: List[bool] = [False] * len(ok_geometry)
    for _step in range(design.latency):
        state_key = tuple(state_bits)
        if state_key in seen_states:
            break
        seen_states.add(state_key)
        visited.append(state_key)
        values: Dict[Net, int] = {}
        for net, bit in zip(fsm_q, state_bits):
            values[net] = mask if bit else 0
        for index, element in enumerate(ok_geometry):
            pattern = 1 << (2 * index + 1)  # q = 0 in the even lane, 1 in the odd
            for net in element.q_nets:
                values[net] = pattern
        _evaluate(order, values, mask)
        # Load probe: d must mirror q in both lanes for a pure hold path.
        for index, element in enumerate(ok_geometry):
            if loads[index]:
                continue
            even = 2 * index
            for d_net in element.d_nets:
                packed = values.get(d_net, 0)
                if (packed >> even) & 1 != 0 or (packed >> (even + 1)) & 1 != 1:
                    loads[index] = True
                    break
        # Next FSM state (lane-uniform by autonomy; read lane 0).
        state_bits = [values.get(net, 0) & 1 for net in fsm_d]

    expected = min(design.latency, 1 << len(fsm_q))
    if len(seen_states) < expected:
        found.append(
            diagnostic(
                "NET006",
                f"FSM reaches only {len(seen_states)} of its {expected} "
                f"states from reset",
                span=SourceSpan(kind="element", name=fsm_elements[0].name),
            )
        )
        return found
    for index, element in enumerate(ok_geometry):
        if not loads[index]:
            found.append(
                diagnostic(
                    "NET007",
                    f"element {element.name} ({element.role}) is never "
                    "load-enabled in any reachable FSM state",
                    span=SourceSpan(kind="element", name=element.name),
                )
            )
    return found


def _evaluate(order: List[Gate], values: Dict[Net, int], mask: int) -> None:
    """Evaluate the cloud lane-parallel over ``mask``-wide packed words."""
    get = values.get
    for gate in order:
        kind = gate.kind
        if kind is GateKind.AND:
            a, b = gate.inputs
            result = get(a, 0) & get(b, 0)
        elif kind is GateKind.OR:
            a, b = gate.inputs
            result = get(a, 0) | get(b, 0)
        elif kind is GateKind.XOR:
            a, b = gate.inputs
            result = get(a, 0) ^ get(b, 0)
        elif kind is GateKind.NOT:
            result = mask ^ get(gate.inputs[0], 0)
        elif kind is GateKind.BUF:
            result = get(gate.inputs[0], 0)
        elif kind is GateKind.CONST1:
            result = mask
        else:  # CONST0
            result = 0
        values[gate.output] = result
