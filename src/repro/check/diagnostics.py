"""Diagnostics engine of the static verification layer.

Every checker of :mod:`repro.check` reports through the same small set of
objects: a :class:`Diagnostic` carries a stable error code (``SPEC001``,
``SCHED003``, ``ALLOC002``, ``NET004`` ...), a :class:`Severity`, a message,
and a :class:`SourceSpan` naming the offending construct -- the bit, cycle,
unit, register, multiplexer, gate or state the invariant broke at.  A
:class:`CheckReport` aggregates the diagnostics of one run and renders them
as text (one line per finding, compiler style) or as a JSON-ready dictionary
(the ``--json`` CLI output and the CI artifact format).

The code registry (:data:`CODE_REGISTRY`) is the single source of truth for
the code namespace: each code belongs to exactly one IR level and has a
default severity.  Checkers build diagnostics through :func:`diagnostic` so a
typo'd code fails loudly instead of silently inventing a new namespace entry.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class CheckError(ValueError):
    """Raised when a checked run contains error-severity diagnostics."""


class Severity(enum.IntEnum):
    """Severity ladder; the integer order supports ``>=`` gating."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: The IR levels of the flow, in pipeline order.  ``check_level`` style
#: arguments name a prefix of this tuple.
LEVELS: Tuple[str, ...] = ("spec", "schedule", "allocation", "netlist")


@dataclass(frozen=True)
class SourceSpan:
    """Location of a finding: the construct that broke the invariant.

    ``kind`` is a short noun (``"bit"``, ``"operation"``, ``"cycle"``,
    ``"register"``, ``"unit"``, ``"mux"``, ``"gate"``, ``"net"``,
    ``"element"``, ``"state"``); ``name`` identifies the construct.  ``bit``
    and ``cycle`` refine the location where the construct alone is too wide
    (which bit of a variable, which cycle of a schedule).
    """

    kind: str
    name: str
    bit: Optional[int] = None
    cycle: Optional[int] = None

    def describe(self) -> str:
        text = f"{self.kind} {self.name}"
        if self.bit is not None:
            text += f"[{self.bit}]"
        if self.cycle is not None:
            text += f" @cycle {self.cycle}"
        return text

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"kind": self.kind, "name": self.name}
        if self.bit is not None:
            payload["bit"] = self.bit
        if self.cycle is not None:
            payload["cycle"] = self.cycle
        return payload


#: code -> (level, default severity, one-line title).
CODE_REGISTRY: Dict[str, Tuple[str, Severity, str]] = {
    # -- specification level ------------------------------------------------
    "SPEC001": ("spec", Severity.ERROR, "variable bit written more than once"),
    "SPEC002": ("spec", Severity.ERROR, "bit read before (or without) a definition"),
    "SPEC003": ("spec", Severity.ERROR, "width or type inconsistency"),
    "SPEC004": ("spec", Severity.ERROR, "undriven output-port bit"),
    "SPEC005": ("spec", Severity.WARNING, "dead definition (result never read)"),
    "SPEC006": ("spec", Severity.ERROR, "combinational self-dependence"),
    # -- schedule level -----------------------------------------------------
    "SCHED001": ("schedule", Severity.ERROR, "operation not scheduled"),
    "SCHED002": ("schedule", Severity.ERROR, "cycle outside the latency range"),
    "SCHED003": ("schedule", Severity.ERROR, "data dependence scheduled backwards"),
    "SCHED004": ("schedule", Severity.ERROR, "chained-bit depth exceeds the budget"),
    "SCHED005": ("schedule", Severity.ERROR, "recorded timing disagrees with recomputation"),
    "SCHED006": ("schedule", Severity.ERROR, "no feasible cycle in an operation's window"),
    # -- allocation level ---------------------------------------------------
    "ALLOC001": ("allocation", Severity.ERROR, "overlapping live intervals in one register"),
    "ALLOC002": ("allocation", Severity.ERROR, "functional-unit conflict within a cycle"),
    "ALLOC003": ("allocation", Severity.ERROR, "mux inputs disagree with the storage sources"),
    "ALLOC004": ("allocation", Severity.WARNING, "orphaned register or functional unit"),
    "ALLOC005": ("allocation", Severity.ERROR, "operation unbound or bound to an unfit unit"),
    "ALLOC006": ("allocation", Severity.ERROR, "stored group disagrees with recomputed lifetime"),
    # -- netlist level ------------------------------------------------------
    "NET001": ("netlist", Severity.ERROR, "combinational cycle"),
    "NET002": ("netlist", Severity.ERROR, "multiply-driven net"),
    "NET003": ("netlist", Severity.ERROR, "undriven net consumed"),
    "NET004": ("netlist", Severity.ERROR, "width mismatch at a module boundary"),
    "NET005": ("netlist", Severity.WARNING, "dead gate (output drives nothing)"),
    "NET006": ("netlist", Severity.ERROR, "FSM state unreachable or not autonomous"),
    "NET007": ("netlist", Severity.ERROR, "state element never load-enabled"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a checker."""

    code: str
    severity: Severity
    level: str
    message: str
    span: Optional[SourceSpan] = None

    def describe(self) -> str:
        where = f" [{self.span.describe()}]" if self.span is not None else ""
        return f"{self.code} {self.severity}: {self.message}{where}"

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "level": self.level,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = self.span.to_dict()
        return payload


def diagnostic(
    code: str,
    message: str,
    span: Optional[SourceSpan] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic` for a registered code.

    The level and (unless overridden) the severity come from the registry, so
    every emitted code is guaranteed to exist in the documented namespace.
    """
    try:
        level, default_severity, _title = CODE_REGISTRY[code]
    except KeyError:
        raise CheckError(f"unregistered diagnostic code {code!r}") from None
    return Diagnostic(
        code=code,
        severity=default_severity if severity is None else severity,
        level=level,
        message=message,
        span=span,
    )


@dataclass
class CheckReport:
    """All diagnostics of one checker run, plus which levels actually ran."""

    subject: str
    levels: Tuple[str, ...] = ()
    diagnostics: List[Diagnostic] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.diagnostics is None:
            self.diagnostics = []

    # ------------------------------------------------------------------
    def extend(self, level: str, found: Sequence[Diagnostic]) -> None:
        if level not in LEVELS:
            raise CheckError(f"unknown check level {level!r}")
        if level not in self.levels:
            self.levels = self.levels + (level,)
        self.diagnostics.extend(found)

    def at_level(self, level: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.level == level]

    def count(self, minimum: Severity = Severity.INFO) -> int:
        return sum(1 for d in self.diagnostics if d.severity >= minimum)

    @property
    def error_count(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    @property
    def clean(self) -> bool:
        """True when nothing at warning severity or above was found."""
        return self.count(Severity.WARNING) == 0

    @property
    def passed(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return self.error_count == 0

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        lines = [
            f"check {self.subject}: levels {', '.join(self.levels) or '(none)'}"
        ]
        for item in self.diagnostics:
            lines.append(f"  {item.describe()}")
        lines.append(
            f"  {self.error_count} error(s), {self.warning_count} warning(s)"
            if self.diagnostics
            else "  clean: no diagnostics"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "levels": list(self.levels),
            "errors": self.error_count,
            "warnings": self.warning_count,
            "clean": self.clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def raise_on_errors(self) -> None:
        """Raise :class:`CheckError` when error-severity diagnostics exist."""
        if self.passed:
            return
        failing = [d.describe() for d in self.diagnostics if d.severity >= Severity.ERROR]
        raise CheckError(
            f"static checks failed for {self.subject}: " + "; ".join(failing)
        )
