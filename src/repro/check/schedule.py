"""Schedule-level checks (``SCHED0xx``).

The checker re-derives the bit-level dependence structure with its own trace
(:mod:`repro.check._trace`) and recomputes the per-cycle chained-bit depths
with its own longest-chain walk, then compares against the latency bounds,
the fragmentation budget and the recorded timing -- it never consults
:class:`~repro.ir.dfg.BitDependencyGraph` or
:func:`~repro.hls.timing.bit_level_cycle_depths`.

Invariants:

* ``SCHED001`` -- every operation has a cycle;
* ``SCHED002`` -- every assigned cycle lies in ``[1, latency]``;
* ``SCHED003`` -- every additive result bit executes no earlier than the
  additive result bits it (transitively through glue) reads;
* ``SCHED004`` -- the recomputed chained-bit depth of every cycle fits the
  fragmentation budget (bit-level flows with a finite budget only);
* ``SCHED005`` -- the recorded per-cycle chained-bit depths of a bit-level
  timing equal the independent recomputation (latency included).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..hls.schedule import Schedule
from ..hls.timing import CycleTiming
from ..ir.operations import Operation, OpKind
from ._trace import AdditiveTracer, BitKey, build_writer_map
from .diagnostics import Diagnostic, SourceSpan, diagnostic


def check_schedule(
    schedule: Schedule,
    budget: Optional[int] = None,
    timing: Optional[CycleTiming] = None,
    bit_level: bool = True,
) -> List[Diagnostic]:
    """Run every schedule-level check; returns the findings.

    ``budget`` is the chained-bits-per-cycle limit of a fragmented flow
    (``None`` disables ``SCHED004``).  ``timing`` is the recorded
    :class:`~repro.hls.timing.CycleTiming` to cross-check (``SCHED005``);
    the depth comparison only applies when ``bit_level`` is true, because a
    conventional timing records rounded nanosecond chains, not bit depths.
    """
    found: List[Diagnostic] = []
    specification = schedule.specification
    latency = schedule.latency
    cycle_of: Dict[Operation, int] = schedule.cycle_of

    usable: Dict[int, int] = {}  # operation uid -> validated cycle
    for operation in specification.operations:
        cycle = cycle_of.get(operation)
        if cycle is None:
            found.append(
                diagnostic(
                    "SCHED001",
                    f"operation {operation.name} has no cycle",
                    span=SourceSpan(kind="operation", name=operation.name or ""),
                )
            )
            continue
        if not (1 <= cycle <= latency):
            found.append(
                diagnostic(
                    "SCHED002",
                    f"operation {operation.name} scheduled in cycle {cycle}, "
                    f"outside [1, {latency}]",
                    span=SourceSpan(
                        kind="operation", name=operation.name or "", cycle=cycle
                    ),
                )
            )
            continue
        usable[operation.uid] = cycle

    writers = build_writer_map(specification)
    tracer = AdditiveTracer(writers)

    # SCHED003: additive-to-additive dependences, traced through glue.
    reported: Set[Tuple[int, int]] = set()
    for consumer in specification.operations:
        if not consumer.is_additive:
            continue
        consumer_cycle = usable.get(consumer.uid)
        if consumer_cycle is None:
            continue
        for uid, bit in _read_bit_keys(consumer):
            for source in tracer.sources(uid, bit):
                producer = writers[source][0]
                producer_cycle = usable.get(producer.uid)
                if producer_cycle is None:
                    continue
                if producer_cycle > consumer_cycle:
                    pair = (producer.uid, consumer.uid)
                    if pair in reported:
                        continue
                    reported.add(pair)
                    found.append(
                        diagnostic(
                            "SCHED003",
                            f"{producer.name} (cycle {producer_cycle}) feeds "
                            f"{consumer.name} (cycle {consumer_cycle})",
                            span=SourceSpan(
                                kind="operation",
                                name=consumer.name or "",
                                cycle=consumer_cycle,
                            ),
                        )
                    )

    # Independent per-cycle longest-chain recomputation.
    depths = _cycle_depths(specification, usable, latency, writers, tracer)
    if depths is None:
        return found  # wiring is cyclic; the spec checker reports SPEC006

    if budget is not None:
        for cycle in range(1, latency + 1):
            depth = depths.get(cycle, 0)
            if depth > budget:
                found.append(
                    diagnostic(
                        "SCHED004",
                        f"cycle {cycle} chains {depth} bits, budget is {budget}",
                        span=SourceSpan(kind="cycle", name=str(cycle), cycle=cycle),
                    )
                )

    if timing is not None:
        if timing.latency != latency:
            found.append(
                diagnostic(
                    "SCHED005",
                    f"recorded timing spans {timing.latency} cycles, "
                    f"schedule has {latency}",
                )
            )
        elif bit_level and len(usable) == len(specification.operations):
            for cycle in range(1, latency + 1):
                recorded = timing.cycle_chained_bits.get(cycle)
                recomputed = depths.get(cycle, 0)
                if recorded != recomputed:
                    found.append(
                        diagnostic(
                            "SCHED005",
                            f"cycle {cycle} records {recorded} chained bits, "
                            f"independent recomputation finds {recomputed}",
                            span=SourceSpan(kind="cycle", name=str(cycle), cycle=cycle),
                        )
                    )
    return found


def _read_bit_keys(operation: Operation) -> List[BitKey]:
    keys: List[BitKey] = []
    for operand in operation.all_read_operands():
        if operand.is_variable:
            uid = operand.variable.uid
            keys.extend((uid, bit) for bit in operand.range)
    return keys


def _cycle_depths(
    specification,
    usable: Dict[int, int],
    latency: int,
    writers,
    tracer: AdditiveTracer,
) -> Optional[Dict[int, int]]:
    """Longest chained-bit path of every cycle, rebuilt from scratch.

    Nodes are the result bits of additive operations; a bit depends on the
    previous bit of the same operation (ripple), on the additive sources of
    its same-position operand bits, and (bit 0) on the carry-in sources.  A
    result bit of an ADD/SUB beyond every operand's width is the pure
    carry-out of the most significant data bit's adder and costs 0 chained
    bits; every other bit costs 1.  Bits arriving from earlier cycles start
    at depth 0.  Returns ``None`` when the dependence relation is cyclic.
    """
    additive = [op for op in specification.operations if op.is_additive]
    index_of: Dict[Tuple[int, int], int] = {}
    nodes: List[Tuple[Operation, int]] = []
    for operation in additive:
        for bit in range(operation.destination.width):
            index_of[(operation.uid, bit)] = len(nodes)
            nodes.append((operation, bit))

    predecessors: List[List[int]] = [[] for _ in nodes]
    costs: List[int] = [0] * len(nodes)
    for node_index, (operation, bit) in enumerate(nodes):
        if operation.kind in (OpKind.ADD, OpKind.SUB) and bit >= operation.max_operand_width():
            costs[node_index] = 0
        else:
            costs[node_index] = 1
        preds = predecessors[node_index]
        if bit > 0:
            preds.append(index_of[(operation.uid, bit - 1)])
        feeding: List[BitKey] = []
        for operand in operation.operands:
            if not operand.is_variable:
                continue
            rng = operand.range
            if bit > rng.hi - rng.lo:
                continue
            feeding.extend(tracer.sources(operand.variable.uid, rng.lo + bit))
        if bit == 0 and operation.carry_in is not None and operation.carry_in.is_variable:
            carry = operation.carry_in
            feeding.extend(tracer.sources(carry.variable.uid, carry.range.lo))
        for source in feeding:
            producer, result_bit = writers[source]
            source_index = index_of.get((producer.uid, result_bit))
            if source_index is not None and source_index != node_index:
                preds.append(source_index)

    # Kahn order over the rebuilt graph (program order is not trusted).
    successors: List[List[int]] = [[] for _ in nodes]
    in_degree = [0] * len(nodes)
    for node_index, preds in enumerate(predecessors):
        unique = set(preds)
        in_degree[node_index] = len(unique)
        for pred in unique:
            successors[pred].append(node_index)
    ready = [i for i, degree in enumerate(in_degree) if degree == 0]
    order: List[int] = []
    cursor = 0
    while cursor < len(ready):
        node_index = ready[cursor]
        cursor += 1
        order.append(node_index)
        for successor in successors[node_index]:
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != len(nodes):
        return None

    arrivals = [0] * len(nodes)
    depths: Dict[int, int] = {cycle: 0 for cycle in range(1, latency + 1)}
    for node_index in order:
        operation, _bit = nodes[node_index]
        cycle = usable.get(operation.uid)
        if cycle is None:
            continue
        start = 0
        for pred in predecessors[node_index]:
            pred_operation, _ = nodes[pred]
            if usable.get(pred_operation.uid) == cycle and arrivals[pred] > start:
                start = arrivals[pred]
        arrival = start + costs[node_index]
        arrivals[node_index] = arrival
        if arrival > depths.get(cycle, 0):
            depths[cycle] = arrival
    return depths
