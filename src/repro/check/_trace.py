"""Independent bit-wiring model used by the checkers.

The checkers must re-derive structural facts from first principles, so this
module re-implements the bit-level semantics of the IR -- which operand bits
a glue result bit is wired from, which additive result bits transitively feed
a variable bit, which physical bit a wiring chain renames -- *without*
calling the production analyses (:class:`~repro.ir.dfg.BitDependencyGraph`,
the allocation alias resolver, the storage-source walk).  The semantics
mirror the IR definition of each operation kind, which is unavoidable (the
kind semantics *are* the contract); the implementation shares no code or
caches with the code under test, so a bug on either side surfaces as a
disagreement instead of being validated against itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.operations import Operation, OpKind
from ..ir.spec import Specification

#: (variable uid, absolute bit index) -- one physical IR bit.
BitKey = Tuple[int, int]

#: Glue kinds that are pure renamings of their (single) driving bit.
WIRING_KINDS = frozenset({OpKind.MOVE, OpKind.CONCAT, OpKind.SHL, OpKind.SHR})


def build_writer_map(
    specification: Specification,
) -> Dict[BitKey, Tuple[Operation, int]]:
    """(variable uid, bit) -> (writing operation, result bit), first writer.

    Built by scanning the operation list directly rather than reading the
    specification's incremental def-use index, so a corrupted index (or a
    hand-built mutant bypassing ``add_operation``) is still seen as the
    operations actually describe it.  When two operations write the same bit
    (an SSA violation the spec checker reports), the first writer wins here,
    matching program-order semantics.
    """
    writers: Dict[BitKey, Tuple[Operation, int]] = {}
    for operation in specification.operations:
        destination = operation.destination
        uid = destination.variable.uid
        for result_bit, bit in enumerate(destination.range):
            key = (uid, bit)
            if key not in writers:
                writers[key] = (operation, result_bit)
    return writers


def glue_wiring(operation: Operation, result_bit: int) -> List[Tuple]:
    """The operand bits one glue result bit is wired from.

    Returns ``(operand, position)`` pairs with ``position`` relative to the
    operand's LSB.  Kind semantics: CONCAT routes the bit into exactly one
    part by cumulative offset; SHL/SHR apply the constant shift (shifted-in
    bits have no source); SELECT depends on the condition bit plus both data
    arms at the same position; every other glue kind (MOVE, NOT, AND, OR,
    XOR) is position-aligned across all read operands including a carry-in.
    """
    kind = operation.kind
    if kind is OpKind.CONCAT:
        offset = 0
        for operand in operation.operands:
            if offset <= result_bit < offset + operand.width:
                return [(operand, result_bit - offset)]
            offset += operand.width
        return []
    if kind is OpKind.SHL or kind is OpKind.SHR:
        shift = int(operation.attributes.get("shift", 0))
        position = result_bit - shift if kind is OpKind.SHL else result_bit + shift
        source = operation.operands[0]
        if 0 <= position < source.width:
            return [(source, position)]
        return []
    if kind is OpKind.SELECT:
        condition = operation.operands[0]
        pairs: List[Tuple] = [(condition, 0)]
        for arm in operation.operands[1:]:
            if result_bit < arm.width:
                pairs.append((arm, result_bit))
        return pairs
    pairs = []
    for operand in operation.all_read_operands():
        if result_bit < operand.width:
            pairs.append((operand, result_bit))
    return pairs


def wiring_canonical(
    writers: Dict[BitKey, Tuple[Operation, int]],
    uid: int,
    bit: int,
) -> Optional[BitKey]:
    """The physical bit a wiring chain renames; ``None`` for constant bits.

    Follows only the pure-renaming kinds (MOVE, CONCAT, constant shifts)
    through their single driving bit.  Terminates at the first non-wiring
    definition (a real gate or an additive result), at an unwritten bit (a
    port), or at a constant operand / shifted-in zero (``None``).  A wiring
    cycle -- impossible in a well-formed specification, reported by the spec
    checker -- terminates at the first revisited bit.
    """
    key = (uid, bit)
    visited = {key}
    while True:
        definition = writers.get(key)
        if definition is None:
            return key
        operation, result_bit = definition
        if operation.kind not in WIRING_KINDS:
            return key
        sources = glue_wiring(operation, result_bit)
        if not sources:
            return None
        operand, position = sources[0]
        if not operand.is_variable:
            return None
        key = (operand.variable.uid, operand.range.lo + position)
        if key in visited:
            return key
        visited.add(key)


class AdditiveTracer:
    """Memoized trace of variable bits down to additive result bits.

    ``sources(uid, bit)`` returns every additive result bit (as a
    :data:`BitKey` of the *destination* variable) that transitively feeds the
    given bit through glue logic of any kind.  Port bits and constant wiring
    resolve to nothing.  Cycles in the wiring (reported separately by the
    spec checker) are cut at the revisit point so the trace always
    terminates.
    """

    def __init__(self, writers: Dict[BitKey, Tuple[Operation, int]]) -> None:
        self._writers = writers
        self._memo: Dict[BitKey, Tuple[BitKey, ...]] = {}

    def sources(self, uid: int, bit: int) -> Tuple[BitKey, ...]:
        return self._sources((uid, bit), set())

    def _sources(self, key: BitKey, active: set) -> Tuple[BitKey, ...]:
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in active:
            return ()
        definition = self._writers.get(key)
        if definition is None:
            self._memo[key] = ()
            return ()
        operation, result_bit = definition
        if operation.is_additive:
            result = (key,)
            self._memo[key] = result
            return result
        active.add(key)
        found: List[BitKey] = []
        seen = set()
        for operand, position in glue_wiring(operation, result_bit):
            if not operand.is_variable:
                continue
            source_key = (operand.variable.uid, operand.range.lo + position)
            for traced in self._sources(source_key, active):
                if traced not in seen:
                    seen.add(traced)
                    found.append(traced)
        active.discard(key)
        result = tuple(found)
        self._memo[key] = result
        return result


def operand_bit_keys(operation: Operation) -> List[BitKey]:
    """Absolute (uid, bit) keys of every variable bit the operation reads."""
    keys: List[BitKey] = []
    for operand in operation.all_read_operands():
        if not operand.is_variable:
            continue
        uid = operand.variable.uid
        for bit in operand.range:
            keys.append((uid, bit))
    return keys
