"""Small cross-layer helpers with no dependencies on other repro modules."""

from __future__ import annotations

import contextlib
import gc
from typing import Iterator


@contextlib.contextmanager
def paused_gc() -> Iterator[None]:
    """Pause the cyclic garbage collector around a batch of work.

    The synthesis flow allocates heavily (IR nodes, schedules, plane lists)
    but creates almost no reference cycles, so the generational collector's
    threshold-triggered scans find nothing and still pay a full-heap walk --
    over a third of a latency sweep's wall clock goes to collections that
    free a handful of objects.  Batched executions (``Pipeline.run_batch``,
    the sweep engine's chunked serial loop) disable collection for the
    duration of the batch and re-enable it afterwards; the deferred scan
    then runs once on the next threshold crossing instead of hundreds of
    times mid-batch.

    Nested or pre-disabled uses are no-ops: whoever disabled the collector
    first owns re-enabling it.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


def coerce_enum(enum_cls, value, what: str):
    """Coerce a string (case-insensitive, stripped) or member into *enum_cls*.

    Raises :class:`ValueError` listing the valid values, so user-facing
    surfaces (CLI, configs) get an actionable message.
    """
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            return enum_cls(value.strip().lower())
        except ValueError:
            pass
    valid = ", ".join(repr(member.value) for member in enum_cls)
    raise ValueError(f"invalid {what} {value!r}: expected one of {valid}")
