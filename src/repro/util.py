"""Small cross-layer helpers with no dependencies on other repro modules."""

from __future__ import annotations


def coerce_enum(enum_cls, value, what: str):
    """Coerce a string (case-insensitive, stripped) or member into *enum_cls*.

    Raises :class:`ValueError` listing the valid values, so user-facing
    surfaces (CLI, configs) get an actionable message.
    """
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            return enum_cls(value.strip().lower())
        except ValueError:
            pass
    valid = ", ".join(repr(member.value) for member in enum_cls)
    raise ValueError(f"invalid {what} {value!r}: expected one of {valid}")
