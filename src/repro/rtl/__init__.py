"""Gate-level substrate: netlists, adder structures, simulation, elaboration."""

from .adders import AdderNets, build_adder_chain, build_full_adder, build_ripple_adder
from .elaborate import ElaboratedDesign, ElaborationError, Elaborator, elaborate
from .netlist import Gate, GateKind, Net, Netlist, NetlistError
from .simulator import (
    BatchNetlistResult,
    DelayModel,
    NetlistSimulationResult,
    NetlistSimulator,
    levelised_order,
    nanosecond_delay_model,
    unit_full_adder_delay_model,
)

__all__ = [
    "AdderNets",
    "BatchNetlistResult",
    "DelayModel",
    "ElaboratedDesign",
    "ElaborationError",
    "Elaborator",
    "Gate",
    "GateKind",
    "Net",
    "Netlist",
    "NetlistError",
    "NetlistSimulationResult",
    "NetlistSimulator",
    "build_adder_chain",
    "build_full_adder",
    "build_ripple_adder",
    "elaborate",
    "levelised_order",
    "nanosecond_delay_model",
    "unit_full_adder_delay_model",
]
