"""Gate-level substrate: netlists, adders, simulation, elaboration, emission.

Two entry points produce gate-level structure from behavioural IR:

* :func:`~repro.rtl.elaborate.elaborate` -- a flat *combinational* netlist of
  one specification, used to validate the chained-1-bit-additions delay
  metric against real adder structures;
* :func:`~repro.rtl.emit.emit_design` -- the synthesis backend: lowers an
  allocated datapath + schedule into a *sequential*
  :class:`~repro.rtl.design.RtlDesign` (shared functional units, the
  allocated register file, FSM-decoded mux trees) that renders as Verilog
  (:func:`~repro.rtl.verilog.render_verilog`) and simulates cycle-accurately
  against the behavioural oracle (:func:`~repro.rtl.emit.verify_emission`).
"""

from .adders import AdderNets, build_adder_chain, build_full_adder, build_ripple_adder
from .design import RtlDesign, RtlDesignError, StateElement
from .elaborate import ElaboratedDesign, ElaborationError, Elaborator, elaborate
from .emit import (
    EmissionCheck,
    EmissionError,
    EmissionStats,
    RtlEmission,
    emit_design,
    verify_emission,
)
from .netlist import Gate, GateKind, Net, Netlist, NetlistError
from .simulator import (
    BatchNetlistResult,
    DelayModel,
    NetlistSimulationResult,
    NetlistSimulator,
    levelised_order,
    nanosecond_delay_model,
    unit_full_adder_delay_model,
)
from .verilog import render_verilog

__all__ = [
    "AdderNets",
    "BatchNetlistResult",
    "DelayModel",
    "ElaboratedDesign",
    "ElaborationError",
    "Elaborator",
    "EmissionCheck",
    "EmissionError",
    "EmissionStats",
    "Gate",
    "GateKind",
    "Net",
    "Netlist",
    "NetlistError",
    "NetlistSimulationResult",
    "NetlistSimulator",
    "RtlDesign",
    "RtlDesignError",
    "RtlEmission",
    "StateElement",
    "build_adder_chain",
    "build_full_adder",
    "build_ripple_adder",
    "elaborate",
    "emit_design",
    "levelised_order",
    "nanosecond_delay_model",
    "render_verilog",
    "unit_full_adder_delay_model",
    "verify_emission",
]
