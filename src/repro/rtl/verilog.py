"""Rendering an emitted :class:`~repro.rtl.design.RtlDesign` as Verilog.

The rendering is structural and exactly mirrors the simulated netlist: one
``assign`` per gate of the combinational core, one clocked ``always`` block
latching every state element (FSM, datapath registers, output captures), and
continuous assigns wiring the output ports.  Everything is synthesizable
Verilog-2001; the module has a synchronous active-high reset and computes one
result every ``latency`` clock cycles (the FSM wraps, so the design streams).

The output is deterministic for a given design: net names are netlist-local
(``n17``), state elements and ports keep their emission names, and no
process-global identifiers (operation uids, timestamps) leak into the text --
which is what makes golden-file tests of the rendering stable.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .design import RtlDesign, StateElement
from .netlist import Gate, GateKind, Net

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_VERILOG_KEYWORDS = frozenset(
    {
        "always", "assign", "begin", "case", "else", "end", "endcase",
        "endmodule", "for", "if", "initial", "input", "module", "negedge",
        "output", "posedge", "reg", "wire",
    }
)


def _sanitize(name: str, used: Dict[str, str], key: str) -> str:
    """A unique, legal Verilog identifier for *name* (stable per design)."""
    candidate = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not candidate or not _IDENTIFIER.match(candidate):
        candidate = f"id_{candidate}" if candidate else "id"
    if candidate in _VERILOG_KEYWORDS:
        candidate = f"{candidate}_"
    if re.match(r"^n\d+$", candidate):
        # The n<i> namespace is reserved for the per-gate wires.
        candidate = f"{candidate}_"
    base = candidate
    suffix = 1
    while candidate in used.values() and used.get(key) != candidate:
        candidate = f"{base}_{suffix}"
        suffix += 1
    used[key] = candidate
    return candidate


class _Namer:
    """Maps nets to Verilog expressions (port slices, register bits, wires)."""

    def __init__(self, design: RtlDesign) -> None:
        self.design = design
        self.expr: Dict[Net, str] = {}
        used: Dict[str, str] = {"clk": "clk", "rst": "rst"}
        self.port_name: Dict[str, str] = {}
        for name, nets in design.input_ports.items():
            identifier = _sanitize(name, used, f"in:{name}")
            self.port_name[name] = identifier
            for bit, net in enumerate(nets):
                self.expr[net] = (
                    identifier if len(nets) == 1 else f"{identifier}[{bit}]"
                )
        for name in design.output_ports:
            self.port_name[name] = _sanitize(name, used, f"out:{name}")
        self.element_name: Dict[str, str] = {}
        for element in design.state_elements:
            identifier = _sanitize(element.name, used, f"elem:{element.name}")
            self.element_name[element.name] = identifier
            for bit, net in enumerate(element.q_nets):
                self.expr[net] = (
                    identifier
                    if element.width == 1
                    else f"{identifier}[{bit}]"
                )
        self.wires: List[str] = []
        for index, gate in enumerate(design.netlist.gates):
            wire = f"n{index}"
            self.expr[gate.output] = wire
            self.wires.append(wire)

    def of(self, net: Net) -> str:
        return self.expr[net]


def _gate_rhs(gate: Gate, namer: _Namer) -> str:
    kind = gate.kind
    if kind is GateKind.CONST0:
        return "1'b0"
    if kind is GateKind.CONST1:
        return "1'b1"
    if kind is GateKind.NOT:
        return f"~{namer.of(gate.inputs[0])}"
    if kind is GateKind.BUF:
        return namer.of(gate.inputs[0])
    symbol = {GateKind.AND: "&", GateKind.OR: "|", GateKind.XOR: "^"}[kind]
    return f"{namer.of(gate.inputs[0])} {symbol} {namer.of(gate.inputs[1])}"


def _bus_expr(nets: List[Net], namer: _Namer) -> str:
    if len(nets) == 1:
        return namer.of(nets[0])
    return "{" + ", ".join(namer.of(net) for net in reversed(nets)) + "}"


def _reset_literal(element: StateElement) -> str:
    return f"{element.width}'d{element.init}"


def render_verilog(design: RtlDesign, module_name: str = "") -> str:
    """Render a design as a synthesizable Verilog-2001 module."""
    namer = _Namer(design)
    used: Dict[str, str] = {}
    module = _sanitize(module_name or design.name, used, "module")

    lines: List[str] = []
    lines.append(f"// {design.name}: emitted by repro.rtl.emit")
    lines.append(
        f"// {design.netlist.gate_count()} gates, "
        f"{len(design.state_elements)} state elements "
        f"({design.state_bits()} bits), {design.latency}-cycle schedule"
    )
    lines.append(
        "// outputs are valid once the FSM has completed one pass "
        f"({design.latency} cycles after reset release); the FSM wraps, so a"
    )
    lines.append("// new computation starts every pass (streaming operation).")
    lines.append(f"module {module} (")
    declarations = ["  input  wire clk", "  input  wire rst"]
    for name, nets in design.input_ports.items():
        width = len(nets)
        range_text = f"[{width - 1}:0] " if width > 1 else ""
        declarations.append(f"  input  wire {range_text}{namer.port_name[name]}")
    for name, nets in design.output_ports.items():
        width = len(nets)
        range_text = f"[{width - 1}:0] " if width > 1 else ""
        declarations.append(f"  output wire {range_text}{namer.port_name[name]}")
    lines.append(",\n".join(declarations))
    lines.append(");")
    lines.append("")

    for element in design.state_elements:
        identifier = namer.element_name[element.name]
        range_text = f"[{element.width - 1}:0] " if element.width > 1 else ""
        lines.append(f"  reg  {range_text}{identifier};  // {element.role}")
    lines.append("")

    if namer.wires:
        for start in range(0, len(namer.wires), 10):
            chunk = namer.wires[start : start + 10]
            lines.append(f"  wire {', '.join(chunk)};")
        lines.append("")

    for gate in design.netlist.gates:
        lines.append(f"  assign {namer.of(gate.output)} = {_gate_rhs(gate, namer)};")
    lines.append("")

    for name, nets in design.output_ports.items():
        lines.append(
            f"  assign {namer.port_name[name]} = {_bus_expr(nets, namer)};"
        )
    lines.append("")

    lines.append("  always @(posedge clk) begin")
    lines.append("    if (rst) begin")
    for element in design.state_elements:
        identifier = namer.element_name[element.name]
        lines.append(f"      {identifier} <= {_reset_literal(element)};")
    lines.append("    end else begin")
    for element in design.state_elements:
        identifier = namer.element_name[element.name]
        lines.append(f"      {identifier} <= {_bus_expr(element.d_nets, namer)};")
    lines.append("    end")
    lines.append("  end")
    lines.append("")
    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)
