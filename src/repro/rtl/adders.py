"""Gate-level adder construction.

Builds the ripple-carry structures whose behaviour the paper's chained-1-bit
additions metric abstracts: full adders, ripple-carry adders and chains of
data-dependent ripple-carry adders (the structure of Fig. 1 e).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .netlist import Net, Netlist


@dataclass(frozen=True)
class AdderNets:
    """The nets of one instantiated adder."""

    sum_bits: Tuple[Net, ...]
    carry_out: Net

    @property
    def width(self) -> int:
        return len(self.sum_bits)


def build_full_adder(
    netlist: Netlist, a: Net, b: Net, carry_in: Net
) -> Tuple[Net, Net]:
    """One full adder (two XORs, two ANDs, one OR); returns (sum, carry_out)."""
    partial = netlist.xor_gate(a, b)
    sum_bit = netlist.xor_gate(partial, carry_in)
    generate = netlist.and_gate(a, b)
    propagate = netlist.and_gate(partial, carry_in)
    carry_out = netlist.or_gate(generate, propagate)
    return sum_bit, carry_out


def build_ripple_adder(
    netlist: Netlist,
    a_bits: Sequence[Net],
    b_bits: Sequence[Net],
    carry_in: Optional[Net] = None,
) -> AdderNets:
    """A ripple-carry adder over two equally long input buses."""
    if len(a_bits) != len(b_bits):
        raise ValueError(
            f"operand widths differ: {len(a_bits)} vs {len(b_bits)}"
        )
    if not a_bits:
        raise ValueError("adder width must be at least one bit")
    carry = carry_in if carry_in is not None else netlist.constant(0)
    sums: List[Net] = []
    for a_bit, b_bit in zip(a_bits, b_bits):
        sum_bit, carry = build_full_adder(netlist, a_bit, b_bit, carry)
        sums.append(sum_bit)
    return AdderNets(sum_bits=tuple(sums), carry_out=carry)


def build_adder_chain(width: int, length: int, name: str = "adder_chain") -> Netlist:
    """A chain of *length* data-dependent ripple-carry additions of *width* bits.

    ``build_adder_chain(16, 3)`` is the gate-level equivalent of the paper's
    motivational example (Fig. 1 a / Fig. 1 e): ``G = ((A + B) + D) + F``.
    The netlist exposes the chain inputs as ``IN0 .. INlength`` and the final
    sum as its outputs.
    """
    if width <= 0 or length <= 0:
        raise ValueError("width and length must be positive")
    netlist = Netlist(f"{name}_{length}x{width}")
    accumulator = netlist.add_input_bus("IN0", width)
    for stage in range(length):
        operand = netlist.add_input_bus(f"IN{stage + 1}", width)
        adder = build_ripple_adder(netlist, accumulator, operand)
        accumulator = list(adder.sum_bits)
    netlist.mark_output_bus(accumulator)
    return netlist
