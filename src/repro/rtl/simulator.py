"""Levelised simulation of combinational netlists with per-gate delays.

The simulator computes, for every net, its logic value and its arrival time.
Two delay models are provided:

* ``unit_full_adder`` -- every XOR/AND/OR/NOT costs a fraction of a full-adder
  delay such that one full-adder stage (two XOR levels on the sum path, an
  AND-OR pair on the carry path) costs exactly one unit.  Measured critical
  paths in this model are directly comparable to the chained-1-bit-additions
  metric of the paper and to :meth:`repro.ir.dfg.BitDependencyGraph.critical_depth`.
* ``nanoseconds`` -- per-gate delays from :class:`repro.techlib.GateCosts`,
  comparable to the technology library's adder delay model.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..techlib.gates import DEFAULT_GATES, GateCosts
from .netlist import Gate, GateKind, Net, Netlist, NetlistError


@dataclass(frozen=True)
class DelayModel:
    """Per-gate-kind delay assignment."""

    name: str
    delays: Mapping[GateKind, float]

    def delay_of(self, kind: GateKind) -> float:
        return self.delays.get(kind, 0.0)


def unit_full_adder_delay_model() -> DelayModel:
    """Delays normalised so one full-adder stage costs exactly 1.0 units.

    The carry path of a full adder goes through one AND and one OR per stage
    and the sum path through two XORs; assigning half a unit to each of XOR,
    AND and OR makes both the per-stage carry propagation (AND + OR = 1.0) and
    the sum computation (XOR + XOR = 1.0) cost exactly one unit per chained
    bit, matching the abstraction of the paper.
    """
    return DelayModel(
        name="unit_full_adder",
        delays={
            GateKind.XOR: 0.5,
            GateKind.AND: 0.5,
            GateKind.OR: 0.5,
            GateKind.NOT: 0.0,
            GateKind.BUF: 0.0,
            GateKind.CONST0: 0.0,
            GateKind.CONST1: 0.0,
        },
    )


def nanosecond_delay_model(gates: GateCosts = DEFAULT_GATES) -> DelayModel:
    """Per-gate delays in nanoseconds from the technology library."""
    return DelayModel(
        name="nanoseconds",
        delays={
            GateKind.XOR: gates.xor_gate_delay_ns,
            GateKind.AND: gates.and_gate_delay_ns,
            GateKind.OR: gates.or_gate_delay_ns,
            GateKind.NOT: gates.inverter_delay_ns,
            GateKind.BUF: 0.0,
            GateKind.CONST0: 0.0,
            GateKind.CONST1: 0.0,
        },
    )


@dataclass
class NetlistSimulationResult:
    """Values and arrival times of every net after one evaluation."""

    netlist_name: str
    values: Dict[Net, int] = field(default_factory=dict)
    arrivals: Dict[Net, float] = field(default_factory=dict)

    def value_of_bus(self, nets: Sequence[Net]) -> int:
        """Assemble an unsigned integer from a LSB-first net bus."""
        value = 0
        for index, net in enumerate(nets):
            value |= (self.values[net] & 1) << index
        return value

    def critical_arrival(self, nets: Optional[Sequence[Net]] = None) -> float:
        """Latest arrival time over the given nets (default: every net)."""
        pool = nets if nets is not None else list(self.arrivals)
        if not pool:
            return 0.0
        return max(self.arrivals[net] for net in pool)


@dataclass
class BatchNetlistResult:
    """Lane-packed values of every net after one batch evaluation.

    Bit ``j`` of each packed value is the net's logic value for input lane
    (stimulus vector) ``j``.  Arrival times are input-independent, so they
    are the same for every lane and shared with the scalar result shape.
    """

    netlist_name: str
    lanes: int
    values: Dict[Net, int] = field(default_factory=dict)
    arrivals: Dict[Net, float] = field(default_factory=dict)

    def lane_values(self, net: Net) -> List[int]:
        """Single-bit value of one net, per lane."""
        packed = self.values[net]
        return [(packed >> lane) & 1 for lane in range(self.lanes)]

    def value_of_bus(self, nets: Sequence[Net]) -> List[int]:
        """Assemble an unsigned integer per lane from a LSB-first net bus."""
        values = [0] * self.lanes
        for index, net in enumerate(nets):
            packed = self.values[net]
            if not packed:
                continue
            weight = 1 << index
            lane = 0
            while packed:
                if packed & 1:
                    values[lane] += weight
                packed >>= 1
                lane += 1
        return values


#: Levelisation results shared per netlist: ``netlist -> (gate count,
#: topological gate order, net -> consuming gates)``.  Netlists are
#: append-only (gates are never removed), so the gate count doubles as the
#: structure version; weak keys keep discarded netlists collectable.  Every
#: simulator over one netlist -- including simulators with different delay
#: models, which the RTL ablation benchmarks construct per run -- shares one
#: levelisation instead of re-sorting the gates.
_LEVELISATION_CACHE: "weakref.WeakKeyDictionary[Netlist, Tuple[int, List[Gate], Dict[Net, List[Gate]]]]" = (
    weakref.WeakKeyDictionary()
)


def levelised_order(netlist: Netlist) -> Tuple[List[Gate], Dict[Net, List[Gate]]]:
    """Topological gate order and consumer index of a netlist, memoized.

    Raises :class:`NetlistError` on combinational cycles or undriven nets.
    """
    cached = _LEVELISATION_CACHE.get(netlist)
    if cached is not None and cached[0] == len(netlist.gates):
        return cached[1], cached[2]
    remaining: Dict[Gate, int] = {}
    consumers: Dict[Net, List[Gate]] = {}
    ready: List[Gate] = []
    available = set(netlist.inputs)
    for gate in netlist.gates:
        unresolved = 0
        for net in gate.inputs:
            if net in available:
                continue
            unresolved += 1
            consumers.setdefault(net, []).append(gate)
        remaining[gate] = unresolved
        if unresolved == 0:
            ready.append(gate)
    order: List[Gate] = []
    while ready:
        gate = ready.pop()
        order.append(gate)
        for successor in consumers.get(gate.output, []):
            remaining[successor] -= 1
            if remaining[successor] == 0:
                ready.append(successor)
    if len(order) != len(netlist.gates):
        raise NetlistError(
            f"netlist {netlist.name} contains a combinational cycle "
            "or reads an undriven net"
        )
    _LEVELISATION_CACHE[netlist] = (len(netlist.gates), order, consumers)
    return order, consumers


class NetlistSimulator:
    """Levelised evaluation of a combinational netlist.

    ``engine`` selects the batch evaluation core (scalar :meth:`run` always
    uses the per-gate loop): ``None``/``"auto"`` compile the netlist once
    through :mod:`repro.engine` into a dense-slot gate program and pick
    the plane backend by lane count; ``"bigint"``/``"numpy"`` force a
    backend; ``"legacy"`` keeps the original per-gate big-int loop.  All
    choices are bit-identical.
    """

    def __init__(
        self,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        engine: Optional[str] = None,
    ) -> None:
        from ..engine import resolve_backend

        self.netlist = netlist
        self.delay_model = delay_model or unit_full_adder_delay_model()
        self.engine = resolve_backend(engine)
        self._order, self._consumers = levelised_order(netlist)
        # Arrival times depend only on topology and the delay model, not on
        # input values; computed once per simulator and copied into results.
        self._arrivals: Optional[Dict[Net, float]] = None

    def _levelise(self) -> List[Gate]:
        """Backward-compatible accessor for the memoized gate order."""
        return self._order

    def _arrival_times(self) -> Dict[Net, float]:
        if self._arrivals is None:
            arrivals: Dict[Net, float] = {net: 0.0 for net in self.netlist.inputs}
            delay_of = self.delay_model.delay_of
            for gate in self._order:
                arrival = 0.0
                for net in gate.inputs:
                    net_arrival = arrivals[net]
                    if net_arrival > arrival:
                        arrival = net_arrival
                arrivals[gate.output] = arrival + delay_of(gate.kind)
            self._arrivals = arrivals
        return self._arrivals

    def run(self, inputs: Mapping[Net, int]) -> NetlistSimulationResult:
        """Evaluate the netlist for one input assignment."""
        result = NetlistSimulationResult(self.netlist.name)
        values = result.values
        for net in self.netlist.inputs:
            if net not in inputs:
                raise NetlistError(f"missing value for input net {net.name}")
            values[net] = inputs[net] & 1
        for gate in self._order:
            input_values = [values[net] for net in gate.inputs]
            values[gate.output] = _evaluate_gate(gate.kind, input_values)
        result.arrivals = dict(self._arrival_times())
        return result

    def run_batch(self, inputs: Mapping[Net, int], lanes: int) -> BatchNetlistResult:
        """Evaluate all *lanes* input assignments in one pass over the gates.

        *inputs* maps every input net to a lane-packed integer (bit ``j`` =
        the net's value in lane ``j``); all big-int gate evaluations operate
        on every lane simultaneously, so the cost is one bitwise operation
        per gate regardless of the lane count.
        """
        if lanes < 1:
            raise NetlistError(f"lane count must be >= 1, got {lanes}")
        if self.engine != "legacy":
            return self._run_batch_plan(inputs, lanes)
        lane_mask = (1 << lanes) - 1
        result = BatchNetlistResult(self.netlist.name, lanes)
        values = result.values
        for net in self.netlist.inputs:
            if net not in inputs:
                raise NetlistError(f"missing value for input net {net.name}")
            values[net] = inputs[net] & lane_mask
        for gate in self._order:
            kind = gate.kind
            pins = gate.inputs
            if kind is GateKind.AND:
                value = values[pins[0]] & values[pins[1]]
            elif kind is GateKind.OR:
                value = values[pins[0]] | values[pins[1]]
            elif kind is GateKind.XOR:
                value = values[pins[0]] ^ values[pins[1]]
            elif kind is GateKind.NOT:
                value = values[pins[0]] ^ lane_mask
            elif kind is GateKind.BUF:
                value = values[pins[0]]
            elif kind is GateKind.CONST0:
                value = 0
            elif kind is GateKind.CONST1:
                value = lane_mask
            else:
                raise NetlistError(f"unknown gate kind {kind}")
            values[gate.output] = value
        result.arrivals = dict(self._arrival_times())
        return result

    def _run_batch_plan(
        self, inputs: Mapping[Net, int], lanes: int
    ) -> BatchNetlistResult:
        """Batch evaluation through the compiled dense-slot gate program."""
        from ..engine import context_for, netlist_plan, run_netlist_plan

        plan = netlist_plan(self.netlist, self._order)
        ctx = context_for(lanes, self.engine)
        input_planes = []
        for net in self.netlist.inputs:
            if net not in inputs:
                raise NetlistError(f"missing value for input net {net.name}")
            input_planes.append(ctx.plane_from_mask(inputs[net]))
        slots = run_netlist_plan(plan, ctx, input_planes)
        result = BatchNetlistResult(self.netlist.name, lanes)
        to_mask = ctx.plane_to_mask
        result.values = {net: to_mask(slots[slot]) for net, slot in plan.net_index.items()}
        result.arrivals = dict(self._arrival_times())
        return result

    def _parsed_input_nets(self) -> List[Tuple[Net, str, int]]:
        """Input nets decomposed as ``(net, bus name, bit index)``.

        Scalar nets (no ``[bit]`` suffix) report bit 0; both bus entry
        points share this parsing so the naming convention lives once.
        """
        parsed: List[Tuple[Net, str, int]] = []
        for net in self.netlist.inputs:
            name, _, bit_text = net.name.partition("[")
            bit = int(bit_text.rstrip("]")) if bit_text else 0
            parsed.append((net, name, bit))
        return parsed

    def run_bus(self, bus_values: Mapping[str, int]) -> NetlistSimulationResult:
        """Evaluate with values given per input bus name (``name[bit]`` nets)."""
        assignment: Dict[Net, int] = {}
        for net, name, bit in self._parsed_input_nets():
            if name in bus_values:
                assignment[net] = (bus_values[name] >> bit) & 1
        return self.run(assignment)

    def run_bus_batch(
        self, bus_values: Mapping[str, Sequence[int]]
    ) -> BatchNetlistResult:
        """Batch evaluation with one value list per input bus name.

        Every bus must carry the same number of lane values; bit ``bit`` of
        ``bus_values[name][j]`` drives net ``name[bit]`` in lane ``j``.
        """
        lane_counts = {len(values) for values in bus_values.values()}
        if len(lane_counts) > 1:
            raise NetlistError(
                f"bus lane counts differ: {sorted(lane_counts)}"
            )
        lanes = lane_counts.pop() if lane_counts else 1
        assignment: Dict[Net, int] = {}
        for net, name, bit in self._parsed_input_nets():
            if name in bus_values:
                packed = 0
                for lane, value in enumerate(bus_values[name]):
                    packed |= ((value >> bit) & 1) << lane
                assignment[net] = packed
        return self.run_batch(assignment, lanes)


def _evaluate_gate(kind: GateKind, values: List[int]) -> int:
    if kind is GateKind.AND:
        return values[0] & values[1]
    if kind is GateKind.OR:
        return values[0] | values[1]
    if kind is GateKind.XOR:
        return values[0] ^ values[1]
    if kind is GateKind.NOT:
        return 1 - (values[0] & 1)
    if kind is GateKind.BUF:
        return values[0] & 1
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    raise NetlistError(f"unknown gate kind {kind}")
