"""Levelised simulation of combinational netlists with per-gate delays.

The simulator computes, for every net, its logic value and its arrival time.
Two delay models are provided:

* ``unit_full_adder`` -- every XOR/AND/OR/NOT costs a fraction of a full-adder
  delay such that one full-adder stage (two XOR levels on the sum path, an
  AND-OR pair on the carry path) costs exactly one unit.  Measured critical
  paths in this model are directly comparable to the chained-1-bit-additions
  metric of the paper and to :meth:`repro.ir.dfg.BitDependencyGraph.critical_depth`.
* ``nanoseconds`` -- per-gate delays from :class:`repro.techlib.GateCosts`,
  comparable to the technology library's adder delay model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..techlib.gates import DEFAULT_GATES, GateCosts
from .netlist import Gate, GateKind, Net, Netlist, NetlistError


@dataclass(frozen=True)
class DelayModel:
    """Per-gate-kind delay assignment."""

    name: str
    delays: Mapping[GateKind, float]

    def delay_of(self, kind: GateKind) -> float:
        return self.delays.get(kind, 0.0)


def unit_full_adder_delay_model() -> DelayModel:
    """Delays normalised so one full-adder stage costs exactly 1.0 units.

    The carry path of a full adder goes through one AND and one OR per stage
    and the sum path through two XORs; assigning half a unit to each of XOR,
    AND and OR makes both the per-stage carry propagation (AND + OR = 1.0) and
    the sum computation (XOR + XOR = 1.0) cost exactly one unit per chained
    bit, matching the abstraction of the paper.
    """
    return DelayModel(
        name="unit_full_adder",
        delays={
            GateKind.XOR: 0.5,
            GateKind.AND: 0.5,
            GateKind.OR: 0.5,
            GateKind.NOT: 0.0,
            GateKind.BUF: 0.0,
            GateKind.CONST0: 0.0,
            GateKind.CONST1: 0.0,
        },
    )


def nanosecond_delay_model(gates: GateCosts = DEFAULT_GATES) -> DelayModel:
    """Per-gate delays in nanoseconds from the technology library."""
    return DelayModel(
        name="nanoseconds",
        delays={
            GateKind.XOR: gates.xor_gate_delay_ns,
            GateKind.AND: gates.and_gate_delay_ns,
            GateKind.OR: gates.or_gate_delay_ns,
            GateKind.NOT: gates.inverter_delay_ns,
            GateKind.BUF: 0.0,
            GateKind.CONST0: 0.0,
            GateKind.CONST1: 0.0,
        },
    )


@dataclass
class NetlistSimulationResult:
    """Values and arrival times of every net after one evaluation."""

    netlist_name: str
    values: Dict[Net, int] = field(default_factory=dict)
    arrivals: Dict[Net, float] = field(default_factory=dict)

    def value_of_bus(self, nets: Sequence[Net]) -> int:
        """Assemble an unsigned integer from a LSB-first net bus."""
        value = 0
        for index, net in enumerate(nets):
            value |= (self.values[net] & 1) << index
        return value

    def critical_arrival(self, nets: Optional[Sequence[Net]] = None) -> float:
        """Latest arrival time over the given nets (default: every net)."""
        pool = nets if nets is not None else list(self.arrivals)
        if not pool:
            return 0.0
        return max(self.arrivals[net] for net in pool)


class NetlistSimulator:
    """Levelised evaluation of a combinational netlist."""

    def __init__(self, netlist: Netlist, delay_model: Optional[DelayModel] = None) -> None:
        self.netlist = netlist
        self.delay_model = delay_model or unit_full_adder_delay_model()
        self._order = self._levelise()

    def _levelise(self) -> List[Gate]:
        """Topologically order gates; raise on combinational cycles."""
        remaining: Dict[Gate, int] = {}
        consumers: Dict[Net, List[Gate]] = {}
        ready: List[Gate] = []
        available = set(self.netlist.inputs)
        for gate in self.netlist.gates:
            unresolved = 0
            for net in gate.inputs:
                if net in available:
                    continue
                unresolved += 1
                consumers.setdefault(net, []).append(gate)
            remaining[gate] = unresolved
            if unresolved == 0:
                ready.append(gate)
        order: List[Gate] = []
        while ready:
            gate = ready.pop()
            order.append(gate)
            for successor in consumers.get(gate.output, []):
                remaining[successor] -= 1
                if remaining[successor] == 0:
                    ready.append(successor)
        if len(order) != len(self.netlist.gates):
            raise NetlistError(
                f"netlist {self.netlist.name} contains a combinational cycle "
                "or reads an undriven net"
            )
        return order

    def run(self, inputs: Mapping[Net, int]) -> NetlistSimulationResult:
        """Evaluate the netlist for one input assignment."""
        result = NetlistSimulationResult(self.netlist.name)
        for net in self.netlist.inputs:
            if net not in inputs:
                raise NetlistError(f"missing value for input net {net.name}")
            result.values[net] = inputs[net] & 1
            result.arrivals[net] = 0.0
        for gate in self._order:
            input_values = [result.values[net] for net in gate.inputs]
            value = _evaluate_gate(gate.kind, input_values)
            arrival = 0.0
            for net in gate.inputs:
                arrival = max(arrival, result.arrivals[net])
            arrival += self.delay_model.delay_of(gate.kind)
            result.values[gate.output] = value
            result.arrivals[gate.output] = arrival
        return result

    def run_bus(self, bus_values: Mapping[str, int]) -> NetlistSimulationResult:
        """Evaluate with values given per input bus name (``name[bit]`` nets)."""
        assignment: Dict[Net, int] = {}
        for net in self.netlist.inputs:
            name, _, bit_text = net.name.partition("[")
            if not bit_text:
                if name in bus_values:
                    assignment[net] = bus_values[name] & 1
                continue
            bit = int(bit_text.rstrip("]"))
            if name in bus_values:
                assignment[net] = (bus_values[name] >> bit) & 1
        return self.run(assignment)


def _evaluate_gate(kind: GateKind, values: List[int]) -> int:
    if kind is GateKind.AND:
        return values[0] & values[1]
    if kind is GateKind.OR:
        return values[0] | values[1]
    if kind is GateKind.XOR:
        return values[0] ^ values[1]
    if kind is GateKind.NOT:
        return 1 - (values[0] & 1)
    if kind is GateKind.BUF:
        return values[0] & 1
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    raise NetlistError(f"unknown gate kind {kind}")
