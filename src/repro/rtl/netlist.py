"""Gate-level netlists.

The paper's central delay metric -- chained 1-bit additions -- abstracts a
ripple-carry structure built from full adders.  This package provides a small
gate-level substrate (nets, gates, netlists) so that the abstraction can be
validated: :mod:`repro.rtl.adders` builds real full-adder netlists,
:mod:`repro.rtl.simulator` evaluates them with per-gate delays, and the tests
check that the measured critical paths agree with the
:class:`~repro.ir.dfg.BitDependencyGraph` depths the transformation relies on
(e.g. 18 full-adder stages for the three chained 16-bit additions of
Fig. 1 e).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class GateKind(enum.Enum):
    """Primitive gate types of the netlist."""

    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    BUF = "buf"
    CONST0 = "const0"
    CONST1 = "const1"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_net_counter = itertools.count()


@dataclass(eq=False)
class Net:
    """A single-bit wire."""

    name: str
    uid: int = field(default_factory=lambda: next(_net_counter))

    def __hash__(self) -> int:
        return hash(self.uid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Net({self.name})"


@dataclass(eq=False)
class Gate:
    """A primitive gate driving exactly one net."""

    kind: GateKind
    inputs: Tuple[Net, ...]
    output: Net
    name: str

    def __hash__(self) -> int:
        return id(self)


class NetlistError(ValueError):
    """Raised for malformed netlists (multiple drivers, missing nets, cycles)."""


class Netlist:
    """A combinational gate-level netlist."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nets: List[Net] = []
        self._gates: List[Gate] = []
        self._driver: Dict[Net, Gate] = {}
        self._inputs: List[Net] = []
        self._outputs: List[Net] = []
        self._gate_counter = itertools.count()

    # ------------------------------------------------------------------
    @property
    def nets(self) -> Sequence[Net]:
        return tuple(self._nets)

    @property
    def gates(self) -> Sequence[Gate]:
        return tuple(self._gates)

    @property
    def inputs(self) -> Sequence[Net]:
        return tuple(self._inputs)

    @property
    def outputs(self) -> Sequence[Net]:
        return tuple(self._outputs)

    def gate_count(self, kind: Optional[GateKind] = None) -> int:
        if kind is None:
            return len(self._gates)
        return sum(1 for gate in self._gates if gate.kind is kind)

    # ------------------------------------------------------------------
    def new_net(self, name: Optional[str] = None) -> Net:
        net = Net(name or f"n{len(self._nets)}")
        self._nets.append(net)
        return net

    def add_input(self, name: str) -> Net:
        net = self.new_net(name)
        self._inputs.append(net)
        return net

    def add_input_bus(self, name: str, width: int) -> List[Net]:
        return [self.add_input(f"{name}[{bit}]") for bit in range(width)]

    def mark_output(self, net: Net) -> Net:
        if net not in self._outputs:
            self._outputs.append(net)
        return net

    def mark_output_bus(self, nets: Iterable[Net]) -> List[Net]:
        return [self.mark_output(net) for net in nets]

    def driver_of(self, net: Net) -> Optional[Gate]:
        return self._driver.get(net)

    # ------------------------------------------------------------------
    def add_gate(
        self, kind: GateKind, inputs: Sequence[Net], output: Optional[Net] = None
    ) -> Net:
        """Instantiate a gate; returns (and possibly creates) its output net."""
        expected_arity = {
            GateKind.NOT: 1,
            GateKind.BUF: 1,
            GateKind.CONST0: 0,
            GateKind.CONST1: 0,
        }.get(kind, 2)
        if len(inputs) != expected_arity:
            raise NetlistError(
                f"gate {kind} expects {expected_arity} input(s), got {len(inputs)}"
            )
        for net in inputs:
            if net not in self._driver and net not in self._inputs:
                # Allow nets created earlier but not yet driven -- they must be
                # driven eventually; the simulator validates completeness.
                pass
        if output is None:
            output = self.new_net()
        if output in self._driver:
            raise NetlistError(f"net {output.name} already has a driver")
        gate = Gate(
            kind=kind,
            inputs=tuple(inputs),
            output=output,
            name=f"{kind.value}{next(self._gate_counter)}",
        )
        self._gates.append(gate)
        self._driver[output] = gate
        return output

    # Convenience wrappers -------------------------------------------------
    def and_gate(self, a: Net, b: Net) -> Net:
        return self.add_gate(GateKind.AND, (a, b))

    def or_gate(self, a: Net, b: Net) -> Net:
        return self.add_gate(GateKind.OR, (a, b))

    def xor_gate(self, a: Net, b: Net) -> Net:
        return self.add_gate(GateKind.XOR, (a, b))

    def not_gate(self, a: Net) -> Net:
        return self.add_gate(GateKind.NOT, (a,))

    def buf_gate(self, a: Net) -> Net:
        return self.add_gate(GateKind.BUF, (a,))

    def constant(self, value: int) -> Net:
        kind = GateKind.CONST1 if value else GateKind.CONST0
        return self.add_gate(kind, ())

    def constant_bus(self, value: int, width: int) -> List[Net]:
        return [self.constant((value >> bit) & 1) for bit in range(width)]

    # ------------------------------------------------------------------
    def prune_dead_gates(self) -> int:
        """Remove gates whose output reaches no marked output net.

        Walks the fan-in cone of every marked output and drops the gates
        outside it -- speculatively built helpers (folded-away constants,
        unused decode inverters) that would otherwise be emitted as real
        hardware.  Dead gates are unreachable by construction, so removing
        them cannot change any observable value.  Returns the number of
        gates removed.
        """
        reached: set = set()
        stack = list(self._outputs)
        while stack:
            net = stack.pop()
            if net in reached:
                continue
            reached.add(net)
            gate = self._driver.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        dead = [gate for gate in self._gates if gate.output not in reached]
        if not dead:
            return 0
        self._gates = [gate for gate in self._gates if gate.output in reached]
        kept_nets = {gate.output for gate in self._gates}
        for gate in self._gates:
            kept_nets.update(gate.inputs)
        kept_nets.update(self._inputs)
        kept_nets.update(self._outputs)
        for gate in dead:
            del self._driver[gate.output]
        self._nets = [net for net in self._nets if net in kept_nets]
        return len(dead)

    # ------------------------------------------------------------------
    def undriven_nets(self) -> List[Net]:
        """Nets that are neither primary inputs nor driven by a gate."""
        driven = set(self._driver)
        primary = set(self._inputs)
        used: List[Net] = []
        for gate in self._gates:
            for net in gate.inputs:
                if net not in driven and net not in primary and net not in used:
                    used.append(net)
        for net in self._outputs:
            if net not in driven and net not in primary and net not in used:
                used.append(net)
        return used

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, {len(self._gates)} gates, "
            f"{len(self._inputs)} inputs, {len(self._outputs)} outputs)"
        )
