"""Elaboration of behavioural specifications into gate-level netlists.

The elaborator turns a (kernel-extracted or transformed) specification whose
additive operations are plain additions into a flat combinational netlist of
full adders and glue gates.  It closes the loop between the three delay views
of the library:

* the behavioural interpreter (:mod:`repro.simulation`),
* the chained-1-bit-additions metric (:class:`~repro.ir.dfg.BitDependencyGraph`),
* and real gate-level structures simulated by :mod:`repro.rtl.simulator`.

Tests use it to check that (a) the netlist computes the same values as the
interpreter and (b) the measured full-adder-unit critical path of a fully
chained implementation equals the bit-level critical depth (18 for the
motivational example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.operations import Operation, OpKind
from ..ir.spec import Specification
from ..ir.values import Constant, Operand, Variable
from .adders import build_ripple_adder
from .netlist import Net, Netlist, NetlistError


class ElaborationError(NetlistError):
    """Raised when a specification contains operations the elaborator cannot map."""


@dataclass
class ElaboratedDesign:
    """The produced netlist plus the mapping from IR bits to nets."""

    specification: Specification
    netlist: Netlist
    #: net holding each (variable uid, bit) of the specification
    bit_nets: Dict[Tuple[int, int], Net] = field(default_factory=dict)

    def output_nets(self, variable: Variable) -> List[Net]:
        return [self.bit_nets[(variable.uid, bit)] for bit in range(variable.width)]


class Elaborator:
    """Maps a specification's operations onto gates."""

    #: operation kinds the elaborator supports
    SUPPORTED = {
        OpKind.ADD,
        OpKind.MOVE,
        OpKind.CONCAT,
        OpKind.SHL,
        OpKind.SHR,
        OpKind.NOT,
        OpKind.AND,
        OpKind.OR,
        OpKind.XOR,
        OpKind.SELECT,
    }

    def __init__(self, specification: Specification) -> None:
        self.specification = specification
        self.netlist = Netlist(f"{specification.name}_rtl")
        self.design = ElaboratedDesign(specification, self.netlist)
        self._zero: Optional[Net] = None

    # ------------------------------------------------------------------
    def elaborate(self) -> ElaboratedDesign:
        for port in self.specification.inputs():
            nets = self.netlist.add_input_bus(port.name, port.width)
            for bit, net in enumerate(nets):
                self.design.bit_nets[(port.uid, bit)] = net
        for operation in self.specification.operations:
            self._elaborate_operation(operation)
        for port in self.specification.outputs():
            for bit in range(port.width):
                net = self.design.bit_nets.get((port.uid, bit))
                if net is None:
                    raise ElaborationError(
                        f"output bit {port.name}[{bit}] was never driven"
                    )
                self.netlist.mark_output(net)
        return self.design

    # ------------------------------------------------------------------
    def _zero_net(self) -> Net:
        if self._zero is None:
            self._zero = self.netlist.constant(0)
        return self._zero

    def _operand_nets(self, operand: Operand, width: int) -> List[Net]:
        """Nets of an operand slice, zero-padded to *width*."""
        nets: List[Net] = []
        if operand.is_constant:
            constant: Constant = operand.constant
            for position in range(min(width, operand.width)):
                bit = (constant.bits >> (operand.range.lo + position)) & 1
                nets.append(self.netlist.constant(bit))
        else:
            variable = operand.variable
            for position in range(min(width, operand.width)):
                key = (variable.uid, operand.range.lo + position)
                net = self.design.bit_nets.get(key)
                if net is None:
                    raise ElaborationError(
                        f"operation reads undriven bit {variable.name}"
                        f"[{operand.range.lo + position}]"
                    )
                nets.append(net)
        while len(nets) < width:
            nets.append(self._zero_net())
        return nets

    def _store_result(self, operation: Operation, nets: List[Net]) -> None:
        destination = operation.destination
        for position, bit in enumerate(destination.range):
            if position < len(nets):
                net = nets[position]
            else:
                net = self._zero_net()
            self.design.bit_nets[(destination.variable.uid, bit)] = net

    # ------------------------------------------------------------------
    def _elaborate_operation(self, operation: Operation) -> None:
        kind = operation.kind
        if kind not in self.SUPPORTED:
            raise ElaborationError(
                f"elaborator does not support {kind} (operation {operation.name}); "
                "run the operative kernel extraction first"
            )
        width = operation.width
        if kind is OpKind.ADD:
            carry = None
            if operation.carry_in is not None:
                carry = self._operand_nets(operation.carry_in, 1)[0]
            a_nets = self._operand_nets(operation.operands[0], width)
            b_nets = self._operand_nets(operation.operands[1], width)
            adder = build_ripple_adder(self.netlist, a_nets, b_nets, carry)
            self._store_result(operation, list(adder.sum_bits))
            return
        if kind is OpKind.MOVE:
            self._store_result(operation, self._operand_nets(operation.operands[0], width))
            return
        if kind is OpKind.CONCAT:
            nets: List[Net] = []
            for operand in operation.operands:
                nets.extend(self._operand_nets(operand, operand.width))
            self._store_result(operation, nets[:width])
            return
        if kind is OpKind.SHL:
            amount = int(operation.attributes.get("shift", 0))
            source = self._operand_nets(operation.operands[0], operation.operands[0].width)
            nets = [self._zero_net()] * amount + source
            self._store_result(operation, nets[:width])
            return
        if kind is OpKind.SHR:
            amount = int(operation.attributes.get("shift", 0))
            source = self._operand_nets(operation.operands[0], operation.operands[0].width)
            nets = source[amount:]
            self._store_result(operation, nets[:width])
            return
        if kind is OpKind.NOT:
            source = self._operand_nets(operation.operands[0], width)
            self._store_result(operation, [self.netlist.not_gate(net) for net in source])
            return
        if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
            a_nets = self._operand_nets(operation.operands[0], width)
            b_nets = self._operand_nets(operation.operands[1], width)
            builder = {
                OpKind.AND: self.netlist.and_gate,
                OpKind.OR: self.netlist.or_gate,
                OpKind.XOR: self.netlist.xor_gate,
            }[kind]
            self._store_result(
                operation, [builder(a, b) for a, b in zip(a_nets, b_nets)]
            )
            return
        if kind is OpKind.SELECT:
            condition = self._operand_nets(operation.operands[0], 1)[0]
            true_nets = self._operand_nets(operation.operands[1], width)
            false_nets = self._operand_nets(operation.operands[2], width)
            inverted = self.netlist.not_gate(condition)
            nets = []
            for true_net, false_net in zip(true_nets, false_nets):
                chosen_true = self.netlist.and_gate(true_net, condition)
                chosen_false = self.netlist.and_gate(false_net, inverted)
                nets.append(self.netlist.or_gate(chosen_true, chosen_false))
            self._store_result(operation, nets)
            return
        raise ElaborationError(f"unhandled operation kind {kind}")  # pragma: no cover


def elaborate(specification: Specification) -> ElaboratedDesign:
    """Elaborate a specification into a gate-level netlist."""
    return Elaborator(specification).elaborate()
